"""Labeled directed graph storage.

A :class:`LabeledDiGraph` stores one binary relation per edge label, which
is exactly the paper's data model (§2): an edge-labeled graph is the set
of relations ``R_A(src, dst), R_B(src, dst), ...``.  Each relation is kept
as a pair of numpy arrays sorted by source (with a twin copy sorted by
destination), giving O(log m) adjacency lookups and vectorised degree
statistics without any per-vertex Python objects.

Vertices are dense integers ``0..num_vertices-1``.  Relations are sets:
duplicate ``(src, dst)`` pairs within one label are removed on
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np
from scipy import sparse

from repro.errors import DatasetError

__all__ = ["LabelRelation", "LabeledDiGraph"]


@dataclass
class LabelRelation:
    """One label's edge set with src-sorted and dst-sorted views."""

    label: str
    src_by_src: np.ndarray
    dst_by_src: np.ndarray
    src_by_dst: np.ndarray
    dst_by_dst: np.ndarray
    _pair_keys: np.ndarray | None = field(repr=False, default=None)
    _pair_keys_modulus: int = field(repr=False, default=-1)

    @classmethod
    def build(cls, label: str, src: np.ndarray, dst: np.ndarray) -> "LabelRelation":
        """Construct (dedup + sort) a relation from raw edge arrays."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise DatasetError(f"label {label!r}: src/dst length mismatch")
        # Deduplicate (relations are sets) and sort by (src, dst).
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if len(src) > 1:
            keep = np.concatenate(
                ([True], (src[1:] != src[:-1]) | (dst[1:] != dst[:-1]))
            )
            src, dst = src[keep], dst[keep]
        order_by_dst = np.lexsort((src, dst))
        return cls(
            label=label,
            src_by_src=src,
            dst_by_src=dst,
            src_by_dst=src[order_by_dst],
            dst_by_dst=dst[order_by_dst],
        )

    @classmethod
    def from_sorted(
        cls,
        label: str,
        src_by_src: np.ndarray,
        dst_by_src: np.ndarray,
        src_by_dst: np.ndarray,
        dst_by_dst: np.ndarray,
    ) -> "LabelRelation":
        """Adopt pre-sorted, pre-deduplicated views without copying.

        The arrays are used as-is (e.g. read-only memory maps of an
        ``.npz`` artifact), so the caller guarantees they came from a
        :meth:`build`-constructed relation.  Cheap shape checks only —
        no O(m) re-sort or dedup pass.
        """
        if not (
            src_by_src.shape
            == dst_by_src.shape
            == src_by_dst.shape
            == dst_by_dst.shape
        ) or src_by_src.ndim != 1:
            raise DatasetError(
                f"label {label!r}: sorted views must be 1-d and equal length"
            )
        return cls(
            label=label,
            src_by_src=src_by_src,
            dst_by_src=dst_by_src,
            src_by_dst=src_by_dst,
            dst_by_dst=dst_by_dst,
        )

    @property
    def size(self) -> int:
        """Number of edges (tuples) in the relation."""
        return int(self.src_by_src.shape[0])

    def out_neighbors(self, vertex: int) -> np.ndarray:
        """Destinations of edges leaving ``vertex``."""
        lo = np.searchsorted(self.src_by_src, vertex, side="left")
        hi = np.searchsorted(self.src_by_src, vertex, side="right")
        return self.dst_by_src[lo:hi]

    def in_neighbors(self, vertex: int) -> np.ndarray:
        """Sources of edges entering ``vertex``."""
        lo = np.searchsorted(self.dst_by_dst, vertex, side="left")
        hi = np.searchsorted(self.dst_by_dst, vertex, side="right")
        return self.src_by_dst[lo:hi]

    def out_degree(self, vertex: int) -> int:
        """Number of edges leaving ``vertex``."""
        lo = np.searchsorted(self.src_by_src, vertex, side="left")
        hi = np.searchsorted(self.src_by_src, vertex, side="right")
        return int(hi - lo)

    def in_degree(self, vertex: int) -> int:
        """Number of edges entering ``vertex``."""
        lo = np.searchsorted(self.dst_by_dst, vertex, side="left")
        hi = np.searchsorted(self.dst_by_dst, vertex, side="right")
        return int(hi - lo)

    def pair_keys(self, num_vertices: int) -> np.ndarray:
        """Sorted scalar keys ``src * n + dst`` of the relation (cached).

        Sortedness follows from the (src, dst) lexsort at build time;
        both point membership tests and vectorized frame semijoins
        binary-search this array.
        """
        if self._pair_keys is None or self._pair_keys_modulus != num_vertices:
            self._pair_keys = (
                self.src_by_src * np.int64(num_vertices) + self.dst_by_src
            )
            self._pair_keys_modulus = int(num_vertices)
        return self._pair_keys

    def has_edge(self, u: int, v: int, num_vertices: int) -> bool:
        """Membership test for the pair ``(u, v)``."""
        keys = self.pair_keys(num_vertices)
        key = np.int64(u) * np.int64(num_vertices) + np.int64(v)
        index = np.searchsorted(keys, key)
        return bool(index < len(keys) and keys[index] == key)


class LabeledDiGraph:
    """An edge-labeled directed graph / a database of binary relations."""

    def __init__(
        self,
        num_vertices: int,
        edges_by_label: Mapping[str, tuple[np.ndarray, np.ndarray]],
    ):
        if num_vertices <= 0:
            raise DatasetError("graph needs at least one vertex")
        self._num_vertices = int(num_vertices)
        self._relations: dict[str, LabelRelation] = {}
        for label, (src, dst) in edges_by_label.items():
            relation = LabelRelation.build(str(label), src, dst)
            if relation.size == 0:
                continue
            upper = max(
                int(relation.src_by_src.max(initial=-1)),
                int(relation.dst_by_src.max(initial=-1)),
            )
            if upper >= self._num_vertices:
                raise DatasetError(
                    f"label {label!r} references vertex {upper} "
                    f">= num_vertices={self._num_vertices}"
                )
            self._relations[str(label)] = relation
        self._csr_cache: dict[str, sparse.csr_matrix] = {}
        self._csc_cache: dict[str, sparse.csc_matrix] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_relations(
        cls,
        num_vertices: int,
        relations: Mapping[str, LabelRelation],
    ) -> "LabeledDiGraph":
        """Adopt already-built relations (e.g. memory-mapped) zero-copy.

        Bound checks are O(1) per relation — the arrays are sorted, so
        only the last element of each view needs inspecting.
        """
        if num_vertices <= 0:
            raise DatasetError("graph needs at least one vertex")
        graph = cls.__new__(cls)
        graph._num_vertices = int(num_vertices)
        graph._relations = {}
        for label, relation in relations.items():
            if relation.size == 0:
                continue
            upper = max(
                int(relation.src_by_src[-1]), int(relation.dst_by_dst[-1])
            )
            if upper >= graph._num_vertices:
                raise DatasetError(
                    f"label {label!r} references vertex {upper} "
                    f">= num_vertices={graph._num_vertices}"
                )
            graph._relations[str(label)] = relation
        graph._csr_cache = {}
        graph._csc_cache = {}
        return graph

    @classmethod
    def from_triples(
        cls, triples: Iterable[tuple[int, int, str]], num_vertices: int | None = None
    ) -> "LabeledDiGraph":
        """Build a graph from ``(src, dst, label)`` triples."""
        by_label: dict[str, tuple[list[int], list[int]]] = {}
        top = -1
        for src, dst, label in triples:
            bucket = by_label.setdefault(str(label), ([], []))
            bucket[0].append(int(src))
            bucket[1].append(int(dst))
            top = max(top, int(src), int(dst))
        if num_vertices is None:
            num_vertices = top + 1
        arrays = {
            label: (np.asarray(s, dtype=np.int64), np.asarray(d, dtype=np.int64))
            for label, (s, d) in by_label.items()
        }
        return cls(num_vertices, arrays)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (ids are dense 0..n-1)."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Total edges across all labels."""
        return sum(rel.size for rel in self._relations.values())

    @property
    def labels(self) -> tuple[str, ...]:
        """All edge labels present, sorted."""
        return tuple(sorted(self._relations))

    def __contains__(self, label: str) -> bool:
        return label in self._relations

    def relation(self, label: str) -> LabelRelation:
        """The :class:`LabelRelation` for ``label``.

        Raises :class:`DatasetError` for unknown labels — estimators treat
        a missing label as an empty relation at a higher level.
        """
        try:
            return self._relations[label]
        except KeyError:
            raise DatasetError(f"unknown edge label {label!r}") from None

    def cardinality(self, label: str) -> int:
        """``|R_label|``; 0 for labels absent from the graph."""
        relation = self._relations.get(label)
        return 0 if relation is None else relation.size

    def triples(self) -> Iterable[tuple[int, int, str]]:
        """Iterate all edges as ``(src, dst, label)``."""
        for label in self.labels:
            relation = self._relations[label]
            for u, v in zip(relation.src_by_src, relation.dst_by_src):
                yield int(u), int(v), label

    # ------------------------------------------------------------------
    # Vectorised statistics
    # ------------------------------------------------------------------
    def out_degrees(self, label: str) -> np.ndarray:
        """Out-degree per vertex for ``label`` (length ``num_vertices``)."""
        relation = self._relations.get(label)
        if relation is None:
            return np.zeros(self._num_vertices, dtype=np.int64)
        return np.bincount(relation.src_by_src, minlength=self._num_vertices)

    def in_degrees(self, label: str) -> np.ndarray:
        """In-degree per vertex for ``label``."""
        relation = self._relations.get(label)
        if relation is None:
            return np.zeros(self._num_vertices, dtype=np.int64)
        return np.bincount(relation.dst_by_src, minlength=self._num_vertices)

    def distinct_sources(self, label: str) -> int:
        """Number of distinct source vertices of ``label``."""
        relation = self._relations.get(label)
        if relation is None:
            return 0
        return int(len(np.unique(relation.src_by_src)))

    def distinct_destinations(self, label: str) -> int:
        """Number of distinct destination vertices of ``label``."""
        relation = self._relations.get(label)
        if relation is None:
            return 0
        return int(len(np.unique(relation.dst_by_src)))

    def adjacency_csr(self, label: str) -> sparse.csr_matrix:
        """0/1 adjacency matrix of ``label`` as CSR (cached)."""
        cached = self._csr_cache.get(label)
        if cached is not None:
            return cached
        relation = self._relations.get(label)
        n = self._num_vertices
        if relation is None:
            matrix = sparse.csr_matrix((n, n), dtype=np.int64)
        else:
            data = np.ones(relation.size, dtype=np.int64)
            matrix = sparse.csr_matrix(
                (data, (relation.src_by_src, relation.dst_by_src)), shape=(n, n)
            )
        self._csr_cache[label] = matrix
        return matrix

    def summary(self) -> dict[str, int]:
        """Dataset description in the style of Table 2."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "num_labels": len(self.labels),
        }

    def __repr__(self) -> str:
        return (
            f"LabeledDiGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"labels={len(self.labels)})"
        )
