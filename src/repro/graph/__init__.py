"""Labeled-digraph storage, generators, and IO."""

from repro.graph.digraph import LabeledDiGraph, LabelRelation
from repro.graph.generators import generate_graph, zipf_weights
from repro.graph.io import (
    load_edge_list,
    load_npz,
    load_ntriples,
    save_edge_list,
    save_npz,
)
from repro.graph.vertex_labels import (
    add_vertex_labels,
    vertex_label_relation,
    vertex_labels_of_pattern,
    with_vertex_label,
)

__all__ = [
    "LabeledDiGraph",
    "LabelRelation",
    "generate_graph",
    "zipf_weights",
    "load_edge_list",
    "load_npz",
    "load_ntriples",
    "save_edge_list",
    "save_npz",
    "add_vertex_labels",
    "with_vertex_label",
    "vertex_label_relation",
    "vertex_labels_of_pattern",
]
