"""Load/save labeled graphs as tab-separated edge lists or ``.npz``."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import DatasetError
from repro.graph.digraph import LabeledDiGraph

__all__ = ["save_edge_list", "load_edge_list", "save_npz", "load_npz"]


def save_edge_list(graph: LabeledDiGraph, path: str | Path) -> None:
    """Write ``src<TAB>dst<TAB>label`` lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# vertices={graph.num_vertices}\n")
        for src, dst, label in graph.triples():
            handle.write(f"{src}\t{dst}\t{label}\n")


def load_edge_list(path: str | Path) -> LabeledDiGraph:
    """Read the format written by :func:`save_edge_list`."""
    path = Path(path)
    num_vertices: int | None = None
    triples: list[tuple[int, int, str]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "vertices=" in line:
                    num_vertices = int(line.split("vertices=", 1)[1])
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise DatasetError(f"{path}:{line_number}: expected 3 columns")
            triples.append((int(parts[0]), int(parts[1]), parts[2]))
    if not triples:
        raise DatasetError(f"{path}: no edges")
    return LabeledDiGraph.from_triples(triples, num_vertices=num_vertices)


def save_npz(graph: LabeledDiGraph, path: str | Path) -> None:
    """Save in compressed numpy format (one src/dst pair per label)."""
    payload: dict[str, np.ndarray] = {
        "__num_vertices__": np.asarray([graph.num_vertices], dtype=np.int64)
    }
    for label in graph.labels:
        relation = graph.relation(label)
        payload[f"src::{label}"] = relation.src_by_src
        payload[f"dst::{label}"] = relation.dst_by_src
    np.savez_compressed(Path(path), **payload)


def load_npz(path: str | Path) -> LabeledDiGraph:
    """Load the format written by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        num_vertices = int(data["__num_vertices__"][0])
        by_label: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for key in data.files:
            if key.startswith("src::"):
                label = key[len("src::"):]
                by_label[label] = (data[key], data[f"dst::{label}"])
    return LabeledDiGraph(num_vertices, by_label)
