"""Load/save labeled graphs: edge lists, N-Triples, and ``.npz``.

Every text reader here is *streaming*: lines are parsed into bounded
per-label numpy chunks (:class:`_EdgeChunks`) that are concatenated once
at the end, so a multi-million-edge file never materialises a Python
list of triples.  ``.gz`` paths are decompressed (and compressed on
save) transparently.

The ``.npz`` side has two layouts:

* **compressed** (the default) — small on disk, arrays are decompressed
  into fresh memory on load; and
* **stored** (``compressed=False``) — the serving/build-plane layout:
  members are ZIP-stored verbatim, *both* sorted views of every
  relation are included, and :func:`load_npz` with ``mmap=True`` maps
  each array straight out of the file (zero-copy: workers forked for a
  parallel statistics build share the pages instead of one heap copy
  each).
"""

from __future__ import annotations

import gzip
import zipfile
from pathlib import Path
from typing import IO, Iterable

import numpy as np
from numpy.lib import format as _npy_format

from repro.errors import DatasetError
from repro.graph.digraph import LabeledDiGraph, LabelRelation

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "load_ntriples",
    "save_npz",
    "load_npz",
]

#: Edges buffered as Python ints before being flushed to numpy chunks.
CHUNK_EDGES = 262_144

#: Edges formatted per write() call by :func:`save_edge_list`.
_WRITE_CHUNK = 65_536


def _open_text(path: Path, mode: str) -> IO[str]:
    """Open a text file, decompressing/compressing ``.gz`` transparently."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


class _EdgeChunks:
    """Bounded-memory accumulator of ``(src, dst)`` pairs per label.

    ``add`` appends to small Python buffers; every :data:`CHUNK_EDGES`
    edges the buffers are flushed to int64 numpy chunks (tracking the
    running max vertex id per chunk, vectorised).  ``arrays`` performs
    the single final concatenation per label.
    """

    def __init__(self, chunk_edges: int = CHUNK_EDGES):
        self._chunk_edges = chunk_edges
        self._pending: dict[str, tuple[list[int], list[int]]] = {}
        self._pending_edges = 0
        self._chunks: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}
        self.max_vertex = -1
        self.num_edges = 0

    def add(self, src: int, dst: int, label: str) -> None:
        bucket = self._pending.setdefault(label, ([], []))
        bucket[0].append(src)
        bucket[1].append(dst)
        self._pending_edges += 1
        self.num_edges += 1
        if self._pending_edges >= self._chunk_edges:
            self.flush()

    def flush(self) -> None:
        for label, (src, dst) in self._pending.items():
            src_arr = np.asarray(src, dtype=np.int64)
            dst_arr = np.asarray(dst, dtype=np.int64)
            self.max_vertex = max(
                self.max_vertex, int(src_arr.max()), int(dst_arr.max())
            )
            self._chunks.setdefault(label, []).append((src_arr, dst_arr))
        self._pending.clear()
        self._pending_edges = 0

    def arrays(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        self.flush()
        return {
            label: (
                np.concatenate([chunk[0] for chunk in chunks]),
                np.concatenate([chunk[1] for chunk in chunks]),
            )
            for label, chunks in self._chunks.items()
        }


def save_edge_list(graph: LabeledDiGraph, path: str | Path) -> None:
    """Write ``src<TAB>dst<TAB>label`` lines (gzipped for ``.gz`` paths).

    Lines are batch-formatted label by label straight from the relation
    arrays — :data:`_WRITE_CHUNK` edges joined into one string per
    ``write`` call — instead of one ``write`` per edge.
    """
    path = Path(path)
    with _open_text(path, "w") as handle:
        handle.write(f"# vertices={graph.num_vertices}\n")
        for label in graph.labels:
            relation = graph.relation(label)
            src, dst = relation.src_by_src, relation.dst_by_src
            for lo in range(0, relation.size, _WRITE_CHUNK):
                block = zip(
                    src[lo:lo + _WRITE_CHUNK].tolist(),
                    dst[lo:lo + _WRITE_CHUNK].tolist(),
                )
                handle.write(
                    "".join(f"{u}\t{v}\t{label}\n" for u, v in block)
                )


def load_edge_list(path: str | Path) -> LabeledDiGraph:
    """Stream the format written by :func:`save_edge_list`.

    Malformed lines (wrong column count, non-integer src/dst) raise
    :class:`DatasetError` naming ``path:line``.  ``.gz`` files are
    decompressed transparently.
    """
    path = Path(path)
    num_vertices: int | None = None
    chunks = _EdgeChunks()
    try:
        handle = _open_text(path, "r")
    except OSError as error:
        raise DatasetError(f"{path}: {error}")
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "vertices=" in line:
                    try:
                        num_vertices = int(line.split("vertices=", 1)[1])
                    except ValueError as error:
                        raise DatasetError(
                            f"{path}:{line_number}: invalid vertex count "
                            f"({error})"
                        )
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise DatasetError(f"{path}:{line_number}: expected 3 columns")
            try:
                src, dst = int(parts[0]), int(parts[1])
            except ValueError:
                raise DatasetError(
                    f"{path}:{line_number}: src/dst must be integers, got "
                    f"{parts[0]!r}/{parts[1]!r}"
                )
            chunks.add(src, dst, parts[2])
    if chunks.num_edges == 0:
        raise DatasetError(f"{path}: no edges")
    arrays = chunks.arrays()
    if num_vertices is None:
        num_vertices = chunks.max_vertex + 1
    return LabeledDiGraph(num_vertices, arrays)


def _parse_nt_term(
    body: str, path: Path, line_number: int
) -> tuple[str, str]:
    """Split one leading N-Triples term off ``body``; returns (term, rest)."""
    if body.startswith("<"):
        end = body.find(">")
        if end < 0:
            raise DatasetError(f"{path}:{line_number}: unterminated IRI")
        return body[: end + 1], body[end + 1:].lstrip()
    if body.startswith("_:"):
        term = body.split(None, 1)
        return term[0], (term[1] if len(term) > 1 else "").lstrip()
    raise DatasetError(
        f"{path}:{line_number}: expected an IRI or blank node, got "
        f"{body[:30]!r}"
    )


def load_ntriples(
    path: str | Path, return_terms: bool = False
) -> LabeledDiGraph | tuple[LabeledDiGraph, list[str]]:
    """Stream an N-Triples file into a labeled graph.

    Subjects and objects (IRIs, blank nodes, or literals) are interned
    to dense vertex ids in first-appearance order; predicates become
    edge labels (IRI angle brackets stripped).  With ``return_terms``
    the vertex-id → term list is returned alongside the graph.  ``.gz``
    files are decompressed transparently; malformed lines raise
    :class:`DatasetError` naming ``path:line``.
    """
    path = Path(path)
    term_ids: dict[str, int] = {}
    chunks = _EdgeChunks()

    def intern(term: str) -> int:
        vertex = term_ids.get(term)
        if vertex is None:
            vertex = len(term_ids)
            term_ids[term] = vertex
        return vertex

    try:
        handle = _open_text(path, "r")
    except OSError as error:
        raise DatasetError(f"{path}: {error}")
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if not line.endswith("."):
                raise DatasetError(
                    f"{path}:{line_number}: statement does not end with '.'"
                )
            body = line[:-1].rstrip()
            subject, body = _parse_nt_term(body, path, line_number)
            predicate, body = _parse_nt_term(body, path, line_number)
            if not body:
                raise DatasetError(f"{path}:{line_number}: missing object")
            obj = body  # IRI, blank node, or literal — interned verbatim
            label = (
                predicate[1:-1] if predicate.startswith("<") else predicate
            )
            chunks.add(intern(subject), intern(obj), label)
    if chunks.num_edges == 0:
        raise DatasetError(f"{path}: no triples")
    graph = LabeledDiGraph(len(term_ids), chunks.arrays())
    if return_terms:
        return graph, list(term_ids)
    return graph


def save_npz(
    graph: LabeledDiGraph, path: str | Path, compressed: bool = True
) -> None:
    """Save in numpy format (one src/dst pair per label).

    ``compressed=False`` writes the mmap-servable layout: ZIP-stored
    members plus the dst-sorted views (``srcd::``/``dstd::``) so
    :func:`load_npz` with ``mmap=True`` rebuilds every relation
    zero-copy.
    """
    payload: dict[str, np.ndarray] = {
        "__num_vertices__": np.asarray([graph.num_vertices], dtype=np.int64)
    }
    for label in graph.labels:
        relation = graph.relation(label)
        payload[f"src::{label}"] = relation.src_by_src
        payload[f"dst::{label}"] = relation.dst_by_src
        if not compressed:
            payload[f"srcd::{label}"] = relation.src_by_dst
            payload[f"dstd::{label}"] = relation.dst_by_dst
    if compressed:
        np.savez_compressed(Path(path), **payload)
    else:
        np.savez(Path(path), **payload)


def _mmap_npz_member(
    path: Path, info: zipfile.ZipInfo, raw: IO[bytes]
) -> np.ndarray:
    """Memory-map one ``.npy`` member of a ZIP-stored ``.npz`` archive.

    Uncompressed zip members are byte-verbatim ``.npy`` files at a known
    offset, so the array data can be mapped directly from the archive.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        raise DatasetError(
            f"{path}: member {info.filename!r} is compressed and cannot be "
            "memory-mapped (save with save_npz(..., compressed=False))"
        )
    raw.seek(info.header_offset)
    local = raw.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise DatasetError(f"{path}: corrupt zip local header")
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    data_offset = info.header_offset + 30 + name_len + extra_len
    raw.seek(data_offset)
    try:
        version = _npy_format.read_magic(raw)
        if version == (1, 0):
            shape, fortran, dtype = _npy_format.read_array_header_1_0(raw)
        elif version == (2, 0):
            shape, fortran, dtype = _npy_format.read_array_header_2_0(raw)
        else:
            raise DatasetError(
                f"{path}: unsupported .npy format version {version} in "
                f"{info.filename!r}"
            )
    except ValueError as error:
        raise DatasetError(f"{path}: corrupt member {info.filename!r}: {error}")
    if fortran:
        raise DatasetError(
            f"{path}: Fortran-ordered member {info.filename!r} cannot be "
            "memory-mapped"
        )
    if int(np.prod(shape)) == 0:
        return np.empty(shape, dtype=dtype)
    return np.memmap(
        path, dtype=dtype, mode="r", offset=raw.tell(), shape=shape, order="C"
    )


def _mmap_npz_arrays(path: Path) -> dict[str, np.ndarray]:
    """Every array of a ZIP-stored ``.npz``, memory-mapped read-only."""
    arrays: dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path) as archive, path.open("rb") as raw:
            for info in archive.infolist():
                name = info.filename
                if not name.endswith(".npy"):
                    continue
                arrays[name[: -len(".npy")]] = _mmap_npz_member(
                    path, info, raw
                )
    except (OSError, zipfile.BadZipFile) as error:
        raise DatasetError(f"{path}: not a readable .npz archive: {error}")
    return arrays


def _labels_of(keys: Iterable[str]) -> list[str]:
    return sorted(
        key[len("src::"):] for key in keys if key.startswith("src::")
    )


def load_npz(path: str | Path, mmap: bool = False) -> LabeledDiGraph:
    """Load the format written by :func:`save_npz`.

    With ``mmap=True`` (ZIP-stored archives written with
    ``compressed=False`` only) every relation array is a read-only
    memory map of the file — the graph costs no heap copy, and arrays
    are shared page-cache-backed across forked build workers.  Without
    it, archives that carry the dst-sorted views still skip the
    re-sort/dedup pass on load.
    """
    path = Path(path)
    if mmap:
        data: dict[str, np.ndarray] = _mmap_npz_arrays(path)
        if "__num_vertices__" not in data:
            raise DatasetError(f"{path}: missing __num_vertices__")
        return _graph_from_npz_payload(path, data, require_views=True)
    try:
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
    except (OSError, ValueError) as error:
        raise DatasetError(f"{path}: not a readable .npz archive: {error}")
    if "__num_vertices__" not in data:
        raise DatasetError(f"{path}: missing __num_vertices__")
    return _graph_from_npz_payload(path, data, require_views=False)


def _graph_from_npz_payload(
    path: Path, data: dict[str, np.ndarray], require_views: bool
) -> LabeledDiGraph:
    num_vertices = int(data["__num_vertices__"][0])
    labels = _labels_of(data)
    has_views = all(f"srcd::{label}" in data for label in labels)
    if require_views and not has_views:
        raise DatasetError(
            f"{path}: archive lacks the dst-sorted views required for "
            "zero-copy loading (save with save_npz(..., compressed=False))"
        )
    if not has_views:
        return LabeledDiGraph(
            num_vertices,
            {
                label: (data[f"src::{label}"], data[f"dst::{label}"])
                for label in labels
            },
        )
    relations = {
        label: LabelRelation.from_sorted(
            label,
            src_by_src=data[f"src::{label}"],
            dst_by_src=data[f"dst::{label}"],
            src_by_dst=data[f"srcd::{label}"],
            dst_by_dst=data[f"dstd::{label}"],
        )
        for label in labels
    }
    return LabeledDiGraph.from_relations(num_vertices, relations)
