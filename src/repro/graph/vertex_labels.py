"""Vertex-label support via unary-relation self-loops.

§6.1: "Estimating queries with vertex labels can be done in a
straightforward manner both for optimistic and pessimistic estimators,
e.g., by extending Markov table entries to have vertex labels as was
done in reference [20]."

This module realises that extension without touching any estimator: a
vertex label ``L`` on vertex ``v`` is stored as the self-loop
``(v, v, "@L")`` — a unary relation in binary-relation clothing.  Every
component of the library (exact counting, Markov tables, CEG_O, MOLP
degree statistics) already handles self-loop atoms, so a vertex-labeled
query is just a pattern with extra ``@``-atoms and the Markov table
transparently stores vertex-labeled join entries.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryEdge, QueryPattern

__all__ = [
    "VERTEX_LABEL_PREFIX",
    "vertex_label_relation",
    "add_vertex_labels",
    "with_vertex_label",
    "vertex_labels_of_pattern",
]

VERTEX_LABEL_PREFIX = "@"


def vertex_label_relation(label: str) -> str:
    """The edge-label name encoding a vertex label."""
    return f"{VERTEX_LABEL_PREFIX}{label}"


def add_vertex_labels(
    graph: LabeledDiGraph,
    assignment: Mapping[int, str | Iterable[str]],
) -> LabeledDiGraph:
    """A copy of ``graph`` with vertex labels attached.

    ``assignment`` maps vertex ids to one label or an iterable of
    labels.  Returns a new graph whose extra ``@label`` relations hold
    one self-loop per labeled vertex.
    """
    by_label: dict[str, list[int]] = {}
    for vertex, labels in assignment.items():
        if isinstance(labels, str):
            labels = [labels]
        for label in labels:
            by_label.setdefault(vertex_label_relation(label), []).append(
                int(vertex)
            )
    arrays: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for label in graph.labels:
        relation = graph.relation(label)
        arrays[label] = (relation.src_by_src, relation.dst_by_src)
    for name, vertices in by_label.items():
        loops = np.asarray(sorted(set(vertices)), dtype=np.int64)
        arrays[name] = (loops, loops)
    return LabeledDiGraph(graph.num_vertices, arrays)


def with_vertex_label(
    pattern: QueryPattern, var: str, label: str
) -> QueryPattern:
    """The pattern extended with a vertex-label predicate on ``var``."""
    return QueryPattern(
        list(pattern.edges)
        + [QueryEdge(var, var, vertex_label_relation(label))]
    )


def vertex_labels_of_pattern(pattern: QueryPattern) -> dict[str, list[str]]:
    """Vertex-label predicates present in a pattern, keyed by variable."""
    result: dict[str, list[str]] = {}
    for edge in pattern.edges:
        is_loop = edge.src == edge.dst
        if is_loop and edge.label.startswith(VERTEX_LABEL_PREFIX):
            result.setdefault(edge.src, []).append(
                edge.label[len(VERTEX_LABEL_PREFIX):]
            )
    return result
