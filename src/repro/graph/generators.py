"""Synthetic labeled-graph generators.

The paper evaluates on six real datasets; this module provides seeded
generators whose knobs reproduce the *properties that drive estimator
behaviour*:

* ``degree_skew`` — Zipf exponent of vertex popularity.  Real graphs are
  heavy-tailed, which is what makes the uniformity assumption of
  optimistic estimators underestimate and max-degree bounds loose.
* ``label_skew`` — Zipf exponent of the label distribution.
* ``label_correlation`` — probability that an edge's label is drawn from
  its source vertex's "community" distribution instead of the global
  one.  Correlated labels along paths break the conditional-independence
  assumption (the paper's Epinions dataset is the 0-correlation control).
* ``closure`` — fraction of edges created by closing a length-2 walk,
  which plants triangles and longer cycles so cyclic workloads are
  non-empty.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random

import numpy as np

from repro.errors import DatasetError
from repro.graph.digraph import LabeledDiGraph

__all__ = ["generate_graph", "zipf_weights"]


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf weights ``(1/rank^exponent)`` for ``n`` items."""
    if n <= 0:
        raise DatasetError("need n >= 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-float(exponent))
    return weights / weights.sum()


def generate_graph(
    num_vertices: int,
    num_edges: int,
    num_labels: int,
    seed: int,
    degree_skew: float = 0.8,
    label_skew: float = 0.7,
    label_correlation: float = 0.5,
    closure: float = 0.15,
    num_communities: int = 8,
) -> LabeledDiGraph:
    """Generate a labeled digraph with the knobs described above.

    Edge endpoints are drawn from a Zipf popularity distribution over a
    random vertex permutation (so "popular" vertices are spread across
    the id space).  A ``closure`` fraction of edges close random length-2
    walks, planting cycles.  Labels come from a per-community Zipf
    distribution with probability ``label_correlation`` and the global
    one otherwise.
    """
    if num_labels <= 0 or num_edges <= 0:
        raise DatasetError("need at least one label and one edge")
    rng = np.random.default_rng(seed)
    py_rng = random.Random(seed ^ 0x5EED)

    popularity = zipf_weights(num_vertices, degree_skew)
    identity = rng.permutation(num_vertices)

    def draw_vertices(count: int) -> np.ndarray:
        drawn = rng.choice(num_vertices, size=count, p=popularity)
        return identity[drawn]

    global_label_weights = zipf_weights(num_labels, label_skew)
    # Each community prefers a rotated label ranking.
    community_weights = np.stack(
        [np.roll(global_label_weights, shift) for shift in
         py_rng.sample(range(num_labels), k=min(num_communities, num_labels))]
    )
    community_of = rng.integers(0, community_weights.shape[0], size=num_vertices)

    src = draw_vertices(num_edges)
    dst = draw_vertices(num_edges)

    # Closure edges: rewrite a fraction of edges to close a 2-walk
    # (u -> w -> x becomes the new edge u -> x with u sampled among
    # existing sources), planting triangles and longer cycles.
    num_closure = int(num_edges * closure)
    if num_closure > 0 and num_edges >= 3:
        base_count = num_edges - num_closure
        out_map: dict[int, list[int]] = {}
        for u, v in zip(src[:base_count], dst[:base_count]):
            out_map.setdefault(int(u), []).append(int(v))
        sources = list(out_map)
        for i in range(base_count, num_edges):
            u = py_rng.choice(sources)
            w = py_rng.choice(out_map[u])
            hops = out_map.get(w)
            x = py_rng.choice(hops) if hops else w
            src[i], dst[i] = u, x

    correlated = rng.random(num_edges) < label_correlation
    labels = np.empty(num_edges, dtype=np.int64)
    global_draws = rng.choice(num_labels, size=num_edges, p=global_label_weights)
    labels[:] = global_draws
    if correlated.any():
        communities = community_of[src[correlated]]
        local = np.empty(int(correlated.sum()), dtype=np.int64)
        for community in np.unique(communities):
            mask = communities == community
            local[mask] = rng.choice(
                num_labels, size=int(mask.sum()), p=community_weights[community]
            )
        labels[correlated] = local

    # Group edges by label with one argsort instead of a per-edge Python
    # loop; within-label edge order is irrelevant (relations re-sort).
    order = np.argsort(labels, kind="stable")
    src, dst, labels = src[order], dst[order], labels[order]
    present, starts = np.unique(labels, return_index=True)
    bounds = np.append(starts, len(labels))
    arrays = {
        f"L{int(label)}": (src[lo:hi], dst[lo:hi])
        for label, lo, hi in zip(present, bounds[:-1], bounds[1:])
    }
    return LabeledDiGraph(num_vertices, arrays)
