"""Query-template library.

These are the unlabeled shapes used by the paper's workloads (§6.1 and
Figure 8): paths, stars, trees of every depth, the JOB join templates,
and the cyclic shapes from reference [20] and the G-CARE benchmark
(cycles, cliques, bowties, flowers, petals).  Templates carry placeholder
labels ``?0, ?1, ...``; workload generators instantiate them with real
labels via :meth:`QueryPattern.with_labels`.

Edge directions are fixed per template (the paper omits directions in
Figure 8); workload generators may re-randomize directions with
:func:`randomize_directions`.
"""

from __future__ import annotations

import random

from repro.errors import PatternError
from repro.query.pattern import QueryEdge, QueryPattern

__all__ = [
    "path",
    "star",
    "fork",
    "triangle",
    "cycle",
    "clique",
    "diamond_with_chord",
    "bowtie",
    "square_with_triangle",
    "square_with_two_triangles",
    "petal",
    "flower",
    "tree_of_depth",
    "random_tree",
    "randomize_directions",
    "job_templates",
    "acyclic_templates",
    "cyclic_templates",
    "gcare_acyclic_templates",
    "gcare_cyclic_templates",
]


def _labels(k: int) -> list[str]:
    return [f"?{i}" for i in range(k)]


def path(k: int) -> QueryPattern:
    """A directed path of ``k`` edges: v0 -> v1 -> ... -> vk."""
    if k < 1:
        raise PatternError("path length must be >= 1")
    return QueryPattern(
        QueryEdge(f"v{i}", f"v{i + 1}", f"?{i}") for i in range(k)
    )


def star(k: int) -> QueryPattern:
    """A ``k``-star: all edges leave the center v0."""
    if k < 1:
        raise PatternError("star size must be >= 1")
    return QueryPattern(
        QueryEdge("v0", f"v{i + 1}", f"?{i}") for i in range(k)
    )


def fork(path_len: int, branches: int) -> QueryPattern:
    """A path of ``path_len`` edges ending in a ``branches``-star.

    ``fork(2, 3)`` is the paper's running-example query ``Q5f``
    (Figure 1): a1 -> a2 -> a3 with three edges leaving a3.
    """
    edges = [QueryEdge(f"v{i}", f"v{i + 1}", f"?{i}") for i in range(path_len)]
    hub = f"v{path_len}"
    for b in range(branches):
        edges.append(QueryEdge(hub, f"w{b}", f"?{path_len + b}"))
    return QueryPattern(edges)


def triangle() -> QueryPattern:
    """A directed 3-cycle."""
    return cycle(3)


def cycle(k: int) -> QueryPattern:
    """A directed ``k``-cycle v0 -> v1 -> ... -> v0."""
    if k < 1:
        raise PatternError("cycle length must be >= 1")
    return QueryPattern(
        QueryEdge(f"v{i}", f"v{(i + 1) % k}", f"?{i}") for i in range(k)
    )


def clique(n: int) -> QueryPattern:
    """K_n with edges oriented from lower to higher vertex index."""
    if n < 3:
        raise PatternError("clique needs at least 3 vertices")
    edges = []
    counter = 0
    for i in range(n):
        for j in range(i + 1, n):
            edges.append(QueryEdge(f"v{i}", f"v{j}", f"?{counter}"))
            counter += 1
    return QueryPattern(edges)


def diamond_with_chord() -> QueryPattern:
    """A 4-cycle with one crossing edge (5 atoms) — §6.1's diamond."""
    edges = [
        QueryEdge("v0", "v1", "?0"),
        QueryEdge("v1", "v2", "?1"),
        QueryEdge("v2", "v3", "?2"),
        QueryEdge("v3", "v0", "?3"),
        QueryEdge("v0", "v2", "?4"),
    ]
    return QueryPattern(edges)


def bowtie() -> QueryPattern:
    """Two triangles sharing one vertex (6 atoms)."""
    edges = [
        QueryEdge("c", "a1", "?0"),
        QueryEdge("a1", "a2", "?1"),
        QueryEdge("a2", "c", "?2"),
        QueryEdge("c", "b1", "?3"),
        QueryEdge("b1", "b2", "?4"),
        QueryEdge("b2", "c", "?5"),
    ]
    return QueryPattern(edges)


def square_with_triangle() -> QueryPattern:
    """A 4-cycle with a triangle hung on one side (7 atoms)."""
    edges = [
        QueryEdge("v0", "v1", "?0"),
        QueryEdge("v1", "v2", "?1"),
        QueryEdge("v2", "v3", "?2"),
        QueryEdge("v3", "v0", "?3"),
        QueryEdge("v0", "t", "?4"),
        QueryEdge("t", "v1", "?5"),
        QueryEdge("v1", "v0", "?6"),
    ]
    return QueryPattern(edges)


def square_with_two_triangles() -> QueryPattern:
    """A 4-cycle with triangles on two adjacent sides (8 atoms)."""
    edges = [
        QueryEdge("v0", "v1", "?0"),
        QueryEdge("v1", "v2", "?1"),
        QueryEdge("v2", "v3", "?2"),
        QueryEdge("v3", "v0", "?3"),
        QueryEdge("v0", "s", "?4"),
        QueryEdge("s", "v1", "?5"),
        QueryEdge("v1", "t", "?6"),
        QueryEdge("t", "v2", "?7"),
    ]
    return QueryPattern(edges)


def petal(paths: int, path_len: int) -> QueryPattern:
    """Two endpoints joined by ``paths`` vertex-disjoint directed paths.

    ``petal(2, 3)`` is the 6-edge petal of the G-CARE cyclic workload.
    """
    if paths < 2 or path_len < 1:
        raise PatternError("petal needs >= 2 paths of length >= 1")
    edges: list[QueryEdge] = []
    counter = 0
    for p in range(paths):
        previous = "src"
        for step in range(path_len):
            nxt = "dst" if step == path_len - 1 else f"p{p}_{step}"
            edges.append(QueryEdge(previous, nxt, f"?{counter}"))
            counter += 1
            previous = nxt
    return QueryPattern(edges)


def flower(stamens: int, petal_len: int = 3) -> QueryPattern:
    """A center vertex with ``stamens`` leaf edges plus one cycle (petal).

    ``flower(3)`` has 6 atoms (3 leaves + a triangle through the center),
    the G-CARE 6-edge flower; ``flower(3, 6)`` has 9 atoms.
    """
    edges: list[QueryEdge] = []
    counter = 0
    for s in range(stamens):
        edges.append(QueryEdge("c", f"leaf{s}", f"?{counter}"))
        counter += 1
    previous = "c"
    for step in range(petal_len):
        nxt = "c" if step == petal_len - 1 else f"q{step}"
        edges.append(QueryEdge(previous, nxt, f"?{counter}"))
        counter += 1
        previous = nxt
    return QueryPattern(edges)


def tree_of_depth(k: int, d: int) -> QueryPattern:
    """A tree with ``k`` edges and diameter exactly ``d`` (2 ≤ d ≤ k).

    Built as a ``d``-path with the remaining ``k - d`` edges attached as
    leaves near one end (which keeps the diameter at ``d``).  This is the
    family used by the Acyclic workload of §6.1 / Figure 8.
    """
    if d < 2 or d > k:
        raise PatternError("need 2 <= depth <= k")
    edges = [QueryEdge(f"v{i}", f"v{i + 1}", f"?{i}") for i in range(d)]
    extra = k - d
    # Attach extra leaves round-robin to interior path vertices v1..v(d-1)
    # so eccentricities never exceed d.
    anchors = [f"v{i}" for i in range(1, d)]
    for e in range(extra):
        anchor = anchors[e % len(anchors)]
        edges.append(QueryEdge(anchor, f"x{e}", f"?{d + e}"))
    return QueryPattern(edges)


def random_tree(k: int, rng: random.Random) -> QueryPattern:
    """A uniformly grown random tree with ``k`` edges."""
    if k < 1:
        raise PatternError("tree needs >= 1 edge")
    edges: list[QueryEdge] = []
    for i in range(k):
        parent = 0 if i == 0 else rng.randrange(i + 1)
        if rng.random() < 0.5:
            edges.append(QueryEdge(f"v{parent}", f"v{i + 1}", f"?{i}"))
        else:
            edges.append(QueryEdge(f"v{i + 1}", f"v{parent}", f"?{i}"))
    return QueryPattern(edges)


def randomize_directions(pattern: QueryPattern, rng: random.Random) -> QueryPattern:
    """Flip each edge's direction with probability 1/2."""
    flipped = []
    for edge in pattern.edges:
        if rng.random() < 0.5:
            flipped.append(QueryEdge(edge.dst, edge.src, edge.label))
        else:
            flipped.append(edge)
    return QueryPattern(flipped)


# ----------------------------------------------------------------------
# Workload template inventories (§6.1)
# ----------------------------------------------------------------------

def job_templates() -> dict[str, QueryPattern]:
    """The 7 JOB-derived acyclic join templates.

    Four 4-edge, two 5-edge and one 6-edge template, mirroring the
    paper's conversion of the JOB workload (all acyclic).
    """
    return {
        "job_4path": path(4),
        "job_4star": star(4),
        "job_4fork": fork(2, 2),
        "job_4tree": tree_of_depth(4, 3),
        "job_5fork": fork(2, 3),
        "job_5tree": tree_of_depth(5, 3),
        "job_6tree": tree_of_depth(6, 4),
    }


def acyclic_templates(sizes: tuple[int, ...] = (6, 7, 8)) -> dict[str, QueryPattern]:
    """Figure 8's Acyclic workload: every depth from 2 (star) to k (path)."""
    result: dict[str, QueryPattern] = {}
    for k in sizes:
        for d in range(2, k + 1):
            result[f"acyclic_{k}e_d{d}"] = tree_of_depth(k, d)
    return result


def cyclic_templates() -> dict[str, QueryPattern]:
    """The Cyclic workload templates from reference [20] (§6.1)."""
    return {
        "cyc_4cycle": cycle(4),
        "cyc_diamond": diamond_with_chord(),
        "cyc_6cycle": cycle(6),
        "cyc_k4": clique(4),
        "cyc_bowtie": bowtie(),
        "cyc_sq2tri": square_with_two_triangles(),
        "cyc_sqtri": square_with_triangle(),
    }


def gcare_acyclic_templates(
    rng: random.Random | None = None,
    sizes: tuple[int, ...] = (3, 6, 9, 12),
) -> dict[str, QueryPattern]:
    """G-CARE-Acyclic: stars, paths and random trees of several sizes."""
    rng = rng or random.Random(0)
    result: dict[str, QueryPattern] = {}
    for k in sizes:
        result[f"gcare_{k}path"] = path(k)
        result[f"gcare_{k}star"] = star(k)
        result[f"gcare_{k}tree"] = random_tree(k, rng)
    return result


def gcare_cyclic_templates() -> dict[str, QueryPattern]:
    """G-CARE-Cyclic: 6-/9-cycles, 6-clique, flower and petals."""
    return {
        "gcare_6cycle": cycle(6),
        "gcare_9cycle": cycle(9),
        "gcare_6clique": clique(4),
        "gcare_6flower": flower(3, 3),
        "gcare_6petal": petal(2, 3),
        "gcare_9petal": petal(3, 3),
    }
