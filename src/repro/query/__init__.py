"""Query patterns, shape analysis, templates and parsing."""

from repro.query.pattern import QueryEdge, QueryPattern
from repro.query.parser import format_pattern, parse_pattern
from repro.query.canonical import canonical_key, canonical_pattern
from repro.query import shape, templates

__all__ = [
    "QueryEdge",
    "QueryPattern",
    "parse_pattern",
    "format_pattern",
    "canonical_key",
    "canonical_pattern",
    "shape",
    "templates",
]
