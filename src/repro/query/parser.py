"""A tiny textual syntax for query patterns.

The syntax mirrors the paper's arrow notation::

    a1 -[A]-> a2 -[B]-> a3, a2 <-[C]- a4

Comma (or semicolon/newline) separates chains; within a chain each hop is
``<var> -[<label>]-> <var>`` or ``<var> <-[<label>]- <var>`` (the latter
reverses the edge).  :func:`format_pattern` is the inverse.
"""

from __future__ import annotations

import re

from repro.errors import PatternError
from repro.query.pattern import QueryEdge, QueryPattern

__all__ = ["parse_pattern", "format_pattern"]

_HOP = re.compile(
    r"\s*(?P<arrow><-\[(?P<rlabel>[^\]]+)\]-|-\[(?P<flabel>[^\]]+)\]->)\s*"
    r"(?P<var>[A-Za-z_][A-Za-z0-9_]*)"
)
_VAR = re.compile(r"\s*(?P<var>[A-Za-z_][A-Za-z0-9_]*)")


def parse_pattern(text: str) -> QueryPattern:
    """Parse the arrow syntax into a :class:`QueryPattern`."""
    edges: list[QueryEdge] = []
    chains = [chunk for chunk in re.split(r"[,;\n]", text) if chunk.strip()]
    if not chains:
        raise PatternError(f"empty pattern text: {text!r}")
    for chain in chains:
        position = 0
        head = _VAR.match(chain, position)
        if head is None:
            raise PatternError(f"expected a variable at start of {chain!r}")
        current = head.group("var")
        position = head.end()
        hops = 0
        while position < len(chain):
            hop = _HOP.match(chain, position)
            if hop is None:
                remainder = chain[position:].strip()
                if remainder:
                    raise PatternError(
                        f"could not parse {remainder!r} in chain {chain!r}"
                    )
                break
            nxt = hop.group("var")
            if hop.group("flabel") is not None:
                edges.append(QueryEdge(current, nxt, hop.group("flabel")))
            else:
                edges.append(QueryEdge(nxt, current, hop.group("rlabel")))
            current = nxt
            position = hop.end()
            hops += 1
        if hops == 0:
            raise PatternError(f"chain {chain!r} has no edges")
    return QueryPattern(edges)


def format_pattern(pattern: QueryPattern) -> str:
    """Render a pattern in the arrow syntax (one chain per edge)."""
    return ", ".join(
        f"{e.src} -[{e.label}]-> {e.dst}" for e in pattern.edges
    )
