"""Structural analysis of query patterns.

The paper's estimator choice depends on query *shape*: acyclic vs cyclic,
and for cyclic queries on the length of the cycles (triangles vs larger).
This module provides the shape predicates used throughout the library:

* :func:`is_acyclic` / :func:`cycles` — cycle detection on the underlying
  undirected multigraph of the pattern (edge directions are irrelevant for
  join-graph cyclicity of binary relations);
* :func:`largest_cycle_length` and :func:`has_only_triangles` — the
  classification used to pick between Figures 9/10/11 regimes;
* :func:`depth` — the template "depth" used by the Acyclic workload of
  §6.1 (eccentricity of the pattern's center, i.e. stars have depth 2 and
  paths of k edges have depth k, matching Figure 8's convention);
* :func:`spanning_tree_and_closures` — splits a cyclic pattern's edges
  into a spanning tree plus cycle-closing edges (used by WanderJoin and
  the backtracking counter).
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.query.pattern import QueryPattern

__all__ = [
    "to_multigraph",
    "is_acyclic",
    "cycles",
    "largest_cycle_length",
    "has_only_triangles",
    "is_cyclic_with_large_cycles",
    "depth",
    "spanning_tree_and_closures",
    "cycle_completions",
]


def to_multigraph(pattern: QueryPattern) -> nx.MultiGraph:
    """The undirected multigraph underlying a pattern.

    Nodes are query variables; each atom becomes one edge keyed by its
    index in ``pattern.edges``.
    """
    graph = nx.MultiGraph()
    graph.add_nodes_from(pattern.variables)
    for index, edge in enumerate(pattern.edges):
        graph.add_edge(edge.src, edge.dst, key=index, label=edge.label)
    return graph


def is_acyclic(pattern: QueryPattern) -> bool:
    """True if the pattern's join graph is a forest.

    For binary relations this coincides with query acyclicity: a connected
    pattern is acyclic iff it has exactly ``|vars| - 1`` edges and no
    self-loops or parallel atoms between the same variable pair.
    """
    graph = to_multigraph(pattern)
    try:
        nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return True
    return False


def cycles(pattern: QueryPattern) -> list[frozenset[int]]:
    """Edge-index sets of the simple cycles of the pattern.

    Uses the cycle basis of the multigraph plus explicit handling of
    self-loops (length-1) and parallel-edge cycles (length-2), then
    expands to all simple cycles via networkx for small patterns.
    """
    result: set[frozenset[int]] = set()
    # Self-loops.
    for index, edge in enumerate(pattern.edges):
        if edge.src == edge.dst:
            result.add(frozenset([index]))
    # Parallel atoms between the same unordered variable pair.
    by_pair: dict[frozenset[str], list[int]] = {}
    for index, edge in enumerate(pattern.edges):
        if edge.src != edge.dst:
            by_pair.setdefault(frozenset((edge.src, edge.dst)), []).append(index)
    for indexes in by_pair.values():
        if len(indexes) >= 2:
            for i in range(len(indexes)):
                for j in range(i + 1, len(indexes)):
                    result.add(frozenset([indexes[i], indexes[j]]))
    # Simple cycles of length >= 3 on the simple graph, mapped back to
    # every combination of parallel atoms along the cycle.
    simple = nx.Graph()
    simple.add_nodes_from(pattern.variables)
    for pair in by_pair:
        u, v = tuple(pair)
        simple.add_edge(u, v)
    for cycle_nodes in nx.simple_cycles(simple):
        if len(cycle_nodes) < 3:
            continue
        choices: list[list[int]] = []
        ok = True
        for position, node in enumerate(cycle_nodes):
            nxt = cycle_nodes[(position + 1) % len(cycle_nodes)]
            indexes = by_pair.get(frozenset((node, nxt)))
            if not indexes:
                ok = False
                break
            choices.append(indexes)
        if not ok:
            continue
        result.update(_combinations(choices))
    return sorted(result, key=lambda s: (len(s), sorted(s)))


def _combinations(choices: list[list[int]]) -> Iterable[frozenset[int]]:
    if not choices:
        return
    stack: list[tuple[int, list[int]]] = [(0, [])]
    while stack:
        position, chosen = stack.pop()
        if position == len(choices):
            yield frozenset(chosen)
            continue
        for index in choices[position]:
            stack.append((position + 1, chosen + [index]))


def largest_cycle_length(pattern: QueryPattern) -> int:
    """Length (number of atoms) of the longest simple cycle; 0 if acyclic."""
    found = cycles(pattern)
    if not found:
        return 0
    return max(len(c) for c in found)


def has_only_triangles(pattern: QueryPattern) -> bool:
    """True if the pattern is cyclic and every cycle has at most 3 atoms."""
    found = cycles(pattern)
    return bool(found) and all(len(c) <= 3 for c in found)


def is_cyclic_with_large_cycles(pattern: QueryPattern, h: int = 3) -> bool:
    """True if some cycle is longer than ``h`` (the Markov-table size)."""
    return largest_cycle_length(pattern) > h


def depth(pattern: QueryPattern) -> int:
    """Template depth as used by the Acyclic workload (Figure 8).

    Defined as the diameter of the underlying graph in edges; a k-star has
    depth 2 and a k-path has depth k, matching §6.1's description that
    "the minimum depth of any query is 2 (stars) and the maximum is k
    (paths)".  Patterns with a single atom have depth 1.
    """
    graph = nx.Graph(to_multigraph(pattern))
    if graph.number_of_nodes() <= 1:
        return 0
    if len(pattern) == 1:
        return 1
    return max(
        nx.eccentricity(graph, v) for v in graph.nodes
    )


def spanning_tree_and_closures(pattern: QueryPattern) -> tuple[list[int], list[int]]:
    """Split edges into (spanning-forest edges, cycle-closing edges).

    The forest is grown in BFS order from the first variable, so the tree
    edge list is a valid "walk order": each tree edge after the first has
    at least one endpoint already visited.
    """
    visited: set[str] = set()
    tree: list[int] = []
    closures: list[int] = []
    used: set[int] = set()
    order = list(pattern.variables)
    for start in order:
        if start in visited:
            continue
        visited.add(start)
        frontier = [start]
        while frontier:
            var = frontier.pop(0)
            for index in pattern.edges_at(var):
                if index in used:
                    continue
                other = pattern.edges[index].other_end(var)
                if other in visited:
                    # Both endpoints known: this edge closes a cycle,
                    # unless it is the discovery edge (handled below).
                    used.add(index)
                    closures.append(index)
                else:
                    used.add(index)
                    tree.append(index)
                    visited.add(other)
                    frontier.append(other)
    return tree, closures


def cycle_completions(
    pattern: QueryPattern, subset: frozenset[int], h: int
) -> dict[int, frozenset[int]]:
    """Map each edge index that would complete a large cycle to that cycle.

    Given a CEG vertex ``subset`` (edge indexes already covered), returns
    ``{edge_index: cycle}`` for every edge outside the subset that is the
    single missing atom of some cycle longer than ``h``.  This is the
    condition under which ``CEG_OCR`` swaps in a cycle-closing-rate weight
    (§4.3: the sub-query contains ``k-1`` edges of a ``k``-cycle).
    """
    result: dict[int, frozenset[int]] = {}
    for cycle in cycles(pattern):
        if len(cycle) <= h:
            continue
        missing = cycle - subset
        if len(missing) == 1:
            (index,) = tuple(missing)
            previous = result.get(index)
            if previous is None or len(cycle) < len(previous):
                result[index] = cycle
    return result
