"""Canonical keys for query patterns.

Statistic caches (Markov tables, degree catalogs) must recognise that
``a1 -A-> a2 -B-> a3`` and ``x -A-> y -B-> z`` are the same join, so
patterns are keyed by a canonical form that is invariant under variable
renaming.  Patterns stored in catalogs are tiny (at most ``h + 1``
variables for ``h ≤ 3``), so an exact canonical form by brute force over
variable orderings is cheap and avoids graph-isomorphism heuristics.
"""

from __future__ import annotations

from itertools import permutations

from repro.query.pattern import QueryPattern

__all__ = ["canonical_key", "canonical_pattern"]

_MAX_BRUTE_FORCE_VARS = 8


def _encode(pattern: QueryPattern, order: tuple[str, ...]) -> tuple:
    position = {var: i for i, var in enumerate(order)}
    return tuple(
        sorted((position[e.src], position[e.dst], e.label) for e in pattern.edges)
    )


def canonical_key(pattern: QueryPattern) -> tuple:
    """A hashable key equal for all variable-renamings of the pattern.

    For patterns with at most :data:`_MAX_BRUTE_FORCE_VARS` variables the
    key is exact (minimum encoding over all variable orderings, pruned by
    a degree/label refinement).  Larger patterns fall back to a sorted
    neighbourhood-signature encoding: still renaming-invariant and never
    conflating non-isomorphic patterns (the encoding reconstructs the
    pattern exactly), though two renamings of a symmetric large pattern
    may receive different keys (a missed cache share, never a false one).

    The key is memoized on the (immutable) pattern, since the caching
    layers recompute it for every lookup.
    """
    cached = pattern._canonical_key
    if cached is not None:
        return cached
    variables = pattern.variables
    if len(variables) <= _MAX_BRUTE_FORCE_VARS:
        groups = _refinement_groups(pattern)
        best: tuple | None = None
        for order in _orders_respecting_groups(groups):
            encoded = _encode(pattern, order)
            if best is None or encoded < best:
                best = encoded
        assert best is not None
        key = best
    else:
        signature = {var: _var_signature(pattern, var) for var in variables}
        order = tuple(sorted(variables, key=lambda v: (signature[v], v)))
        key = _encode(pattern, order)
    pattern._canonical_key = key
    return key


def canonical_pattern(pattern: QueryPattern) -> QueryPattern:
    """The pattern rebuilt with canonical variable names ``v0, v1, ...``."""
    key = canonical_key(pattern)
    return QueryPattern((f"v{s}", f"v{d}", label) for s, d, label in key)


def _var_signature(pattern: QueryPattern, var: str) -> tuple:
    outgoing = sorted(e.label for e in pattern.edges if e.src == var)
    incoming = sorted(e.label for e in pattern.edges if e.dst == var)
    return (tuple(outgoing), tuple(incoming))


def _refinement_groups(pattern: QueryPattern) -> list[list[str]]:
    """Variables grouped by local signature; only same-group orders swap."""
    by_signature: dict[tuple, list[str]] = {}
    for var in pattern.variables:
        by_signature.setdefault(_var_signature(pattern, var), []).append(var)
    return [by_signature[s] for s in sorted(by_signature)]


def _orders_respecting_groups(groups: list[list[str]]):
    """All variable orders obtained by permuting within signature groups.

    Variables with different local signatures can never be exchanged by an
    isomorphism, so a canonical minimum over within-group permutations is
    exact while keeping the search far below ``n!``.
    """
    per_group = [list(permutations(group)) for group in groups]

    def rec(index: int, prefix: tuple[str, ...]):
        if index == len(per_group):
            yield prefix
            return
        for perm in per_group[index]:
            yield from rec(index + 1, prefix + perm)

    yield from rec(0, ())
