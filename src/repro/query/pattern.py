"""Query patterns: edge-labeled directed subgraph queries.

A :class:`QueryPattern` is the library's representation of a conjunctive
query over binary relations.  Each :class:`QueryEdge` ``(src, dst, label)``
denotes one atom ``R_label(src, dst)`` where ``src`` and ``dst`` are query
variables (the paper's attributes ``a1, a2, ...``).  A subgraph query in
the paper's graph notation, e.g. ``a1 -A-> a2 -B-> a3``, is the pattern
``QueryPattern([QueryEdge("a1", "a2", "A"), QueryEdge("a2", "a3", "B")])``.

Patterns are immutable and hashable so they can key statistic caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import PatternError

__all__ = ["QueryEdge", "QueryPattern"]


@dataclass(frozen=True, order=True)
class QueryEdge:
    """One directed, labeled edge (one binary-relation atom) of a query."""

    src: str
    dst: str
    label: str

    def variables(self) -> tuple[str, str]:
        """Return the (src, dst) variable pair of this atom."""
        return (self.src, self.dst)

    def touches(self, var: str) -> bool:
        """Return True if this edge is incident to variable ``var``."""
        return var == self.src or var == self.dst

    def other_end(self, var: str) -> str:
        """Return the endpoint opposite to ``var``.

        Raises :class:`PatternError` if ``var`` is not an endpoint.  For a
        self-loop both ends are ``var`` and ``var`` is returned.
        """
        if var == self.src:
            return self.dst
        if var == self.dst:
            return self.src
        raise PatternError(f"variable {var!r} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"{self.src}-[{self.label}]->{self.dst}"


class QueryPattern:
    """An immutable multiset of :class:`QueryEdge` atoms forming a query.

    Edge order is preserved (edges are addressed by index throughout the
    library, e.g. CEG vertices are frozensets of edge indices), but
    equality and hashing are order-insensitive so that two patterns with
    the same atoms compare equal.
    """

    __slots__ = ("_edges", "_vars", "_adjacency", "_hash", "_canonical_key")

    def __init__(self, edges: Iterable[QueryEdge | tuple[str, str, str]]):
        normalized: list[QueryEdge] = []
        for edge in edges:
            if isinstance(edge, QueryEdge):
                normalized.append(edge)
            else:
                src, dst, label = edge
                normalized.append(QueryEdge(str(src), str(dst), str(label)))
        if not normalized:
            raise PatternError("a query pattern must contain at least one edge")
        if len(set(normalized)) != len(normalized):
            raise PatternError("duplicate atoms in query pattern")
        self._edges: tuple[QueryEdge, ...] = tuple(normalized)
        variables: list[str] = []
        seen: set[str] = set()
        for edge in self._edges:
            for var in edge.variables():
                if var not in seen:
                    seen.add(var)
                    variables.append(var)
        self._vars: tuple[str, ...] = tuple(variables)
        adjacency: dict[str, tuple[int, ...]] = {}
        scratch: dict[str, list[int]] = {var: [] for var in self._vars}
        for index, edge in enumerate(self._edges):
            scratch[edge.src].append(index)
            if edge.dst != edge.src:
                scratch[edge.dst].append(index)
        for var, indexes in scratch.items():
            adjacency[var] = tuple(indexes)
        self._adjacency = adjacency
        self._hash = hash(frozenset(self._edges))
        # Memo slot for repro.query.canonical.canonical_key: the exact
        # canonical form is a brute-force minimum over variable orderings
        # (worst case 8! for fully symmetric patterns), and the caching
        # service keys every lookup by it — pay it once per pattern.
        self._canonical_key: tuple | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def edges(self) -> tuple[QueryEdge, ...]:
        """The atoms of the query, in declaration order."""
        return self._edges

    @property
    def variables(self) -> tuple[str, ...]:
        """All query variables, in first-appearance order."""
        return self._vars

    @property
    def labels(self) -> tuple[str, ...]:
        """The edge labels, aligned with :attr:`edges`."""
        return tuple(edge.label for edge in self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[QueryEdge]:
        return iter(self._edges)

    def __getitem__(self, index: int) -> QueryEdge:
        return self._edges[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryPattern):
            return NotImplemented
        return frozenset(self._edges) == frozenset(other._edges)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(str(edge) for edge in self._edges)
        return f"QueryPattern({body})"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def edges_at(self, var: str) -> tuple[int, ...]:
        """Indexes of edges incident to variable ``var``."""
        return self._adjacency.get(var, ())

    def degree(self, var: str) -> int:
        """Number of atoms incident to ``var`` (self-loops count once)."""
        return len(self.edges_at(var))

    def variables_of(self, edge_indexes: Iterable[int]) -> frozenset[str]:
        """The set of variables covered by the given edge indexes."""
        result: set[str] = set()
        for index in edge_indexes:
            edge = self._edges[index]
            result.add(edge.src)
            result.add(edge.dst)
        return frozenset(result)

    def subpattern(self, edge_indexes: Iterable[int]) -> "QueryPattern":
        """The pattern induced by a subset of edge indexes."""
        indexes = sorted(set(edge_indexes))
        if not indexes:
            raise PatternError("cannot build an empty subpattern")
        return QueryPattern(self._edges[index] for index in indexes)

    def is_connected_subset(self, edge_indexes: Iterable[int]) -> bool:
        """Return True if the given edges form a connected subpattern.

        Connectivity is via shared variables; the empty set is vacuously
        connected.
        """
        indexes = set(edge_indexes)
        if len(indexes) <= 1:
            return True
        start = next(iter(indexes))
        frontier = [start]
        visited = {start}
        while frontier:
            current = frontier.pop()
            for var in self._edges[current].variables():
                for neighbor in self.edges_at(var):
                    if neighbor in indexes and neighbor not in visited:
                        visited.add(neighbor)
                        frontier.append(neighbor)
        return visited == indexes

    def is_connected(self) -> bool:
        """Return True if the whole pattern is connected."""
        return self.is_connected_subset(range(len(self._edges)))

    def neighbors_of_subset(self, edge_indexes: Iterable[int]) -> frozenset[int]:
        """Edge indexes outside the subset that share a variable with it."""
        inside = set(edge_indexes)
        touched = self.variables_of(inside)
        result: set[int] = set()
        for var in touched:
            for index in self.edges_at(var):
                if index not in inside:
                    result.add(index)
        return frozenset(result)

    def connected_edge_subsets(self, max_size: int | None = None) -> list[frozenset[int]]:
        """All non-empty connected subsets of edge indexes, smallest first.

        ``max_size`` caps the subset size.  The enumeration grows subsets
        one adjacent edge at a time, so every returned subset is connected.
        """
        limit = len(self._edges) if max_size is None else min(max_size, len(self._edges))
        if limit <= 0:
            return []
        found: set[frozenset[int]] = set()
        frontier: list[frozenset[int]] = [
            frozenset([index]) for index in range(len(self._edges))
        ]
        found.update(frontier)
        current = frontier
        size = 1
        while size < limit and current:
            nxt: list[frozenset[int]] = []
            for subset in current:
                for candidate in self.neighbors_of_subset(subset):
                    grown = subset | {candidate}
                    if grown not in found:
                        found.add(grown)
                        nxt.append(grown)
            current = nxt
            size += 1
        return sorted(found, key=lambda s: (len(s), sorted(s)))

    def rename(self, mapping: dict[str, str]) -> "QueryPattern":
        """Return a copy with variables renamed through ``mapping``."""
        return QueryPattern(
            QueryEdge(mapping.get(e.src, e.src), mapping.get(e.dst, e.dst), e.label)
            for e in self._edges
        )

    def with_labels(self, labels: Sequence[str]) -> "QueryPattern":
        """Return a copy with edge labels replaced positionally."""
        if len(labels) != len(self._edges):
            raise PatternError(
                f"expected {len(self._edges)} labels, got {len(labels)}"
            )
        return QueryPattern(
            QueryEdge(e.src, e.dst, str(label))
            for e, label in zip(self._edges, labels)
        )
