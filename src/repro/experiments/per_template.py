"""Per-template accuracy breakdown (§6.2: "we also performed a query
template-specific analysis and verified that our conclusions generally
hold for each acyclic and cyclic query template").

Groups a workload's q-errors by template and reports each estimator's
summary per template, so the template-level version of the Figure-9/11
claims can be checked (the paper publishes these charts in its repo).

Estimation goes through an :class:`~repro.service.EstimationSession`:
all requested heuristics for one query read a single cached CEG
skeleton, and any queries that coincide on canonical shape (same
structure *and* labels, e.g. renamed duplicates) are served straight
from the estimate cache.  Template instances with independently
sampled labels are distinct shapes and still build their own CEGs.
"""

from __future__ import annotations

from collections import defaultdict

from repro.catalog.cycle_rates import CycleClosingRates
from repro.datasets.workloads import WorkloadQuery
from repro.errors import ReproError
from repro.experiments.metrics import summarize
from repro.experiments.report import format_table
from repro.graph.digraph import LabeledDiGraph
from repro.service.session import OPTIMISTIC_NAMES, EstimationSession

__all__ = ["per_template_breakdown"]


def per_template_breakdown(
    graph: LabeledDiGraph,
    workload: list[WorkloadQuery],
    h: int = 3,
    cycle_rates: CycleClosingRates | None = None,
    estimators: tuple[str, ...] = ("max-hop-max", "min-hop-min", "all-hops-avg"),
    session: EstimationSession | None = None,
) -> tuple[list[dict[str, object]], str]:
    """Rows of per-(template, estimator) q-error summaries.

    ``session`` reuses an existing service session (its graph must match);
    by default a fresh one is created for the call.  When the session
    carries cycle rates the estimates use ``CEG_OCR``, mirroring the old
    ``cycle_rates`` argument.
    """
    if session is None:
        session = EstimationSession(graph, h=h, cycle_rates=cycle_rates)
    wanted = [name for name in OPTIMISTIC_NAMES if name in estimators]
    use_ocr = session.cycle_rates is not None
    specs = [name + "+ocr" if use_ocr else name for name in wanted]
    pairs: dict[tuple[str, str], list[tuple[float, float]]] = defaultdict(list)
    for query in workload:
        for name, spec in zip(wanted, specs):
            try:
                value = session.estimate(query.pattern, spec)
            except ReproError:
                continue
            pairs[(query.template, name)].append(
                (value, query.true_cardinality)
            )
    rows: list[dict[str, object]] = []
    for (template, name), data in sorted(pairs.items()):
        row: dict[str, object] = {"template": template, "estimator": name}
        row.update(summarize(data).row())
        rows.append(row)
    return rows, format_table(rows, title="Per-template q-error breakdown")
