"""Per-template accuracy breakdown (§6.2: "we also performed a query
template-specific analysis and verified that our conclusions generally
hold for each acyclic and cyclic query template").

Groups a workload's q-errors by template and reports each estimator's
summary per template, so the template-level version of the Figure-9/11
claims can be checked (the paper publishes these charts in its repo).
"""

from __future__ import annotations

from collections import defaultdict

from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.markov import MarkovTable
from repro.core import build_ceg_o, estimate_from_ceg
from repro.datasets.workloads import WorkloadQuery
from repro.errors import ReproError
from repro.experiments.metrics import summarize
from repro.experiments.report import format_table
from repro.graph.digraph import LabeledDiGraph

__all__ = ["per_template_breakdown"]

_HOPS = ("max", "min", "all")
_AGGS = ("max", "min", "avg")


def per_template_breakdown(
    graph: LabeledDiGraph,
    workload: list[WorkloadQuery],
    h: int = 3,
    cycle_rates: CycleClosingRates | None = None,
    estimators: tuple[str, ...] = ("max-hop-max", "min-hop-min", "all-hops-avg"),
) -> tuple[list[dict[str, object]], str]:
    """Rows of per-(template, estimator) q-error summaries."""
    markov = MarkovTable(graph, h=h)
    wanted: list[tuple[str, str, str]] = []
    for hop in _HOPS:
        for agg in _AGGS:
            name = f"{'all-hops' if hop == 'all' else hop + '-hop'}-{agg}"
            if name in estimators:
                wanted.append((name, hop, agg))
    pairs: dict[tuple[str, str], list[tuple[float, float]]] = defaultdict(list)
    for query in workload:
        try:
            ceg = build_ceg_o(query.pattern, markov, cycle_rates=cycle_rates)
        except ReproError:
            continue
        for name, hop, agg in wanted:
            try:
                value = estimate_from_ceg(ceg, hop, agg)
            except ReproError:
                continue
            pairs[(query.template, name)].append(
                (value, query.true_cardinality)
            )
    rows: list[dict[str, object]] = []
    for (template, name), data in sorted(pairs.items()):
        row: dict[str, object] = {"template": template, "estimator": name}
        row.update(summarize(data).row())
        rows.append(row)
    return rows, format_table(rows, title="Per-template q-error breakdown")
