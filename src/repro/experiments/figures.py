"""Experiment drivers: one function per table/figure of the paper's §6.

Every driver takes an :class:`ExperimentConfig` controlling dataset
scale and workload size (the default is sized for a laptop bench run;
the paper-shape conclusions are scale-invariant) and returns
``(rows, rendered)`` — machine-readable rows plus the printed table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import Rdf3xDefaultEstimator, WanderJoinEstimator
from repro.catalog import CycleClosingRates, MarkovTable
from repro.core import (
    all_nine_estimators,
    molp_sketch_bound,
    optimistic_sketch_estimate,
)
from repro.datasets import (
    acyclic_workload,
    cyclic_workload,
    dataset_table,
    gcare_acyclic_workload,
    gcare_cyclic_workload,
    job_like_workload,
    load_dataset,
    split_cyclic_by_cycle_size,
)
from repro.datasets.workloads import WorkloadQuery
from repro.errors import ReproError
from repro.experiments.harness import run_harness
from repro.experiments.metrics import summarize
from repro.experiments.report import format_table
from repro.graph.digraph import LabeledDiGraph
from repro.planner import execute_plan, optimize_left_deep
from repro.service.session import EstimationSession
from repro.stats import (
    StatisticsStore,
    StatsBuildConfig,
    build_statistics,
    ensure_baselines,
    extend_statistics,
)

__all__ = [
    "ExperimentConfig",
    "table1_markov_example",
    "table2_datasets",
    "figure9_acyclic_space",
    "figure10_cyclic_triangles",
    "figure11_large_cycles",
    "figure12_bound_sketch",
    "figure13_summary_comparison",
    "figure14_wanderjoin",
    "figure15_plan_quality",
]


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment drivers."""

    scale: float = 0.12
    per_template: int = 3
    seed: int = 7
    h: int = 3
    count_budget: int = 2_000_000
    datasets: tuple[str, ...] = (
        "imdb", "yago", "dblp", "watdiv", "hetionet", "epinions",
    )
    acyclic_sizes: tuple[int, ...] = (6, 7, 8)
    gcare_sizes: tuple[int, ...] = (3, 6, 9)
    sketch_budgets: tuple[int, ...] = (1, 4, 16, 64)
    wj_ratios: tuple[float, ...] = (0.0001, 0.001, 0.0025, 0.005, 0.0075)

    def workload_for(
        self, name: str, graph: LabeledDiGraph, kind: str
    ) -> list[WorkloadQuery]:
        """The paper's dataset-to-workload pairing (§6.1)."""
        if kind == "acyclic":
            if name == "imdb":
                return job_like_workload(
                    graph, self.per_template, self.seed, self.count_budget
                )
            if name == "yago":
                return gcare_acyclic_workload(
                    graph,
                    self.per_template,
                    self.seed,
                    sizes=self.gcare_sizes,
                    count_budget=self.count_budget,
                )
            return acyclic_workload(
                graph, self.per_template, self.seed,
                sizes=self.acyclic_sizes,
                count_budget=self.count_budget,
            )
        if name == "yago":
            return gcare_cyclic_workload(
                graph, self.per_template, self.seed, self.count_budget
            )
        return cyclic_workload(
            graph, self.per_template, self.seed, self.count_budget
        )


# ----------------------------------------------------------------------
# Shared per-dataset statistics stores
# ----------------------------------------------------------------------

_STORES: dict[tuple, StatisticsStore] = {}


def _dataset_store(
    dataset: str,
    graph: LabeledDiGraph,
    h: int,
    workload: list[WorkloadQuery],
    count_budget: int | None = None,
) -> StatisticsStore:
    """One workload-directed store per (dataset instance, h), grown lazily.

    The first driver touching a dataset bulk-builds the statistics its
    workload needs; later drivers (or later workloads of the same
    driver) extend the same store, so a canonical shape is counted once
    per ``repro all`` run instead of once per figure.  ``count_budget``
    is part of the cache key: a budgeted driver (Figure 12) must see
    CountBudgetExceeded where the old per-figure tables did, not
    another figure's unbudgeted counts.
    """
    key = (dataset, id(graph), h, count_budget)
    patterns = [query.pattern for query in workload]
    store = _STORES.get(key)
    if store is None:
        store = build_statistics(
            graph,
            # Baselines (CS/SumRDF) are whole-graph passes only Figure 13
            # reads; it builds them on demand via ensure_baselines.
            StatsBuildConfig(
                h=h, molp_h=2, count_budget=count_budget, baselines=False
            ),
            workload=patterns,
            dataset_name=dataset,
        )
        _STORES[key] = store
    else:
        extend_statistics(store, graph, patterns)
    return store


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

def table1_markov_example() -> tuple[list[dict[str, object]], str]:
    """Table 1: an example Markov table (h=2) on a small graph."""
    from repro.graph import LabeledDiGraph
    from repro.query import parse_pattern

    triples = [
        (0, 2, "A"), (1, 2, "A"), (0, 3, "A"),
        (2, 4, "B"), (3, 4, "B"),
        (4, 5, "C"), (4, 6, "C"), (2, 6, "C"),
    ]
    graph = LabeledDiGraph.from_triples(triples, num_vertices=7)
    markov = MarkovTable(graph, h=2)
    rows = []
    for text in ("x -[B]-> y", "x -[A]-> y -[B]-> z", "x -[B]-> y -[C]-> z"):
        rows.append(
            {
                "Path": text,
                "|Path|": markov.cardinality(parse_pattern(text)),
            }
        )
    return rows, format_table(rows, title="Table 1: example Markov table (h=2)")


def table2_datasets(config: ExperimentConfig | None = None):
    """Table 2: dataset descriptions at the configured scale."""
    config = config or ExperimentConfig()
    rows = dataset_table(config.scale)
    return rows, format_table(
        rows, title=f"Table 2: datasets (scale={config.scale})"
    )


# ----------------------------------------------------------------------
# Figures 9-11: the optimistic estimator space
# ----------------------------------------------------------------------

def _space_rows(
    workload: list[WorkloadQuery],
    graph: LabeledDiGraph,
    dataset: str,
    h: int,
    cycle_rates: CycleClosingRates | None = None,
    variant: str = "CEG_O",
    store: StatisticsStore | None = None,
) -> list[dict[str, object]]:
    """Evaluate all nine §4.2 estimators plus the P* oracle.

    Runs through an :class:`EstimationSession`: each canonical query
    shape builds its CEG once and every heuristic reads off the cached
    skeleton (the nine estimates and the oracle differ only in how they
    pick paths).  Instances whose sampled labels differ are distinct
    shapes — the cross-query cache only kicks in when a workload
    actually repeats a (structure, labels) shape.  With a prebuilt
    ``store`` the session reads the dataset's bulk-built statistics
    instead of lazily counting per pattern.
    """
    from repro.core import distinct_estimates, estimate_from_ceg
    from repro.experiments.metrics import q_error

    if store is not None:
        session = EstimationSession(graph, store=store, cycle_rates=cycle_rates)
    else:
        session = EstimationSession(graph, h=h, cycle_rates=cycle_rates)
    use_ocr = cycle_rates is not None
    names = [
        f"{hop}-{aggr}"
        for hop in ("max-hop", "min-hop", "all-hops")
        for aggr in ("max", "min", "avg")
    ]
    choices = [
        (hop, aggr)
        for hop in ("max", "min", "all")
        for aggr in ("max", "min", "avg")
    ]
    pairs: dict[str, list[tuple[float, float]]] = {
        name: [] for name in names + ["P*"]
    }
    for query in workload:
        try:
            ceg = session.ceg_for(query.pattern, use_cycle_rates=use_ocr)
            for name, (hop, aggr) in zip(names, choices):
                value = estimate_from_ceg(ceg, hop, aggr)
                pairs[name].append((value, query.true_cardinality))
            estimates = distinct_estimates(ceg)
            best = min(
                estimates, key=lambda e: q_error(e, query.true_cardinality)
            )
            pairs["P*"].append((best, query.true_cardinality))
        except ReproError:
            continue
    rows: list[dict[str, object]] = []
    for name in names + ["P*"]:
        row: dict[str, object] = {
            "dataset": dataset, "ceg": variant, "estimator": name,
        }
        row.update(summarize(pairs[name]).row())
        rows.append(row)
    return rows


def figure9_acyclic_space(config: ExperimentConfig | None = None):
    """Figure 9: the 9 estimators + P* on CEG_O, acyclic workloads."""
    config = config or ExperimentConfig()
    rows: list[dict[str, object]] = []
    for dataset in config.datasets:
        graph = load_dataset(dataset, config.scale)
        workload = config.workload_for(dataset, graph, "acyclic")
        store = _dataset_store(dataset, graph, config.h, workload)
        rows.extend(
            _space_rows(workload, graph, dataset, config.h, store=store)
        )
    return rows, format_table(
        rows, title="Figure 9: optimistic estimator space on acyclic queries"
    )


def figure10_cyclic_triangles(config: ExperimentConfig | None = None):
    """Figure 10: the space on cyclic queries with only triangles."""
    config = config or ExperimentConfig()
    rows: list[dict[str, object]] = []
    for dataset in config.datasets:
        if dataset == "yago":
            continue  # the paper omits YAGO here (no triangle-only queries)
        graph = load_dataset(dataset, config.scale)
        workload = config.workload_for(dataset, graph, "cyclic")
        triangles, _ = split_cyclic_by_cycle_size(workload, h=config.h)
        if not triangles:
            continue
        store = _dataset_store(dataset, graph, config.h, triangles)
        rows.extend(
            _space_rows(triangles, graph, dataset, config.h, store=store)
        )
    return rows, format_table(
        rows, title="Figure 10: cyclic queries with only triangles (CEG_O)"
    )


def figure11_large_cycles(config: ExperimentConfig | None = None):
    """Figure 11: CEG_O vs CEG_OCR on queries with cycles of >= 4 atoms."""
    config = config or ExperimentConfig()
    rows: list[dict[str, object]] = []
    for dataset in config.datasets:
        graph = load_dataset(dataset, config.scale)
        workload = config.workload_for(dataset, graph, "cyclic")
        _, large = split_cyclic_by_cycle_size(workload, h=config.h)
        if not large:
            continue
        store = _dataset_store(dataset, graph, config.h, large)
        rows.extend(
            _space_rows(large, graph, dataset, config.h, store=store)
        )
        rates = CycleClosingRates(graph, seed=config.seed, samples=800)
        rows.extend(
            _space_rows(
                large, graph, dataset, config.h,
                cycle_rates=rates, variant="CEG_OCR", store=store,
            )
        )
    return rows, format_table(
        rows, title="Figure 11: large cycles, CEG_O vs CEG_OCR"
    )


# ----------------------------------------------------------------------
# Figure 12: bound sketch
# ----------------------------------------------------------------------

def figure12_bound_sketch(config: ExperimentConfig | None = None):
    """Figure 12: bound-sketch budgets on max-hop-max and MOLP."""
    config = config or ExperimentConfig()
    pairs = [
        ("imdb", "acyclic"), ("hetionet", "acyclic"), ("epinions", "acyclic"),
    ]
    rows: list[dict[str, object]] = []
    for dataset, kind in pairs:
        if dataset not in config.datasets:
            continue
        graph = load_dataset(dataset, config.scale)
        workload = config.workload_for(dataset, graph, kind)
        # The unpartitioned (budget-1 / direct) paths read the dataset's
        # bulk-built h=2 statistics; only per-partition subgraph tables
        # are computed fresh, as §5.2.1 requires.
        store = _dataset_store(
            dataset, graph, 2, workload, count_budget=config.count_budget
        )
        for budget in config.sketch_budgets:
            optimistic_pairs = []
            molp_pairs = []
            for query in workload:
                try:
                    optimistic = optimistic_sketch_estimate(
                        graph, query.pattern, budget, h=2,
                        count_budget=config.count_budget,
                        markov=store.markov,
                    )
                    pessimistic = molp_sketch_bound(
                        graph, query.pattern, budget, h=2,
                        catalog=store.degrees,
                    )
                except ReproError:
                    continue
                optimistic_pairs.append((optimistic, query.true_cardinality))
                molp_pairs.append((pessimistic, query.true_cardinality))
            for label, data in (
                ("max-hop-max", optimistic_pairs), ("MOLP", molp_pairs),
            ):
                row: dict[str, object] = {
                    "dataset": dataset, "estimator": label, "K": budget,
                }
                row.update(summarize(data).row())
                rows.append(row)
    return rows, format_table(
        rows, title="Figure 12: bound sketch effect (partitions K)"
    )


# ----------------------------------------------------------------------
# Figure 13: summary-based comparison
# ----------------------------------------------------------------------

def figure13_summary_comparison(config: ExperimentConfig | None = None):
    """Figure 13: max-hop-max vs MOLP vs CS vs SumRDF."""
    config = config or ExperimentConfig()
    chosen = [
        d for d in config.datasets
        if d in ("imdb", "hetionet", "watdiv", "epinions", "yago")
    ]
    rows: list[dict[str, object]] = []
    for dataset in chosen:
        graph = load_dataset(dataset, config.scale)
        workload = config.workload_for(dataset, graph, "acyclic")
        # Every summary — Markov table, degree catalog, CS, SumRDF —
        # comes from the dataset's bulk-built store; queries that repeat
        # a canonical shape are additionally served from the session's
        # estimate cache.
        store = ensure_baselines(
            _dataset_store(dataset, graph, 2, workload), graph
        )
        session = EstimationSession(graph, store=store)
        estimators = {
            "max-hop-max": session.estimator("max-hop-max"),
            "MOLP": session.estimator("MOLP"),
            "CS": store.characteristic_sets,
            "SumRDF": store.sumrdf,
        }
        result = run_harness(workload, estimators)
        for name, summary in result.summaries().items():
            row: dict[str, object] = {"dataset": dataset, "estimator": name}
            row.update(summary.row())
            row["ms"] = result.mean_time_ms(name)
            rows.append(row)
    return rows, format_table(
        rows, title="Figure 13: summary-based estimator comparison"
    )


# ----------------------------------------------------------------------
# Figure 14: WanderJoin
# ----------------------------------------------------------------------

def figure14_wanderjoin(config: ExperimentConfig | None = None):
    """Figure 14: max-hop-max vs WJ across sampling ratios (+ times)."""
    config = config or ExperimentConfig()
    chosen = [
        d for d in config.datasets
        if d in ("imdb", "dblp", "hetionet", "epinions", "yago")
    ]
    rows: list[dict[str, object]] = []
    for dataset in chosen:
        graph = load_dataset(dataset, config.scale)
        workload = config.workload_for(dataset, graph, "acyclic")
        # Bulk-build the statistics offline so the timed run measures
        # estimation only, as in the paper (§6.5 times estimators
        # against precomputed summaries).
        store = _dataset_store(dataset, graph, 2, workload)
        estimators = {
            "max-hop-max": all_nine_estimators(store.markov)["max-hop-max"]
        }
        result = run_harness(workload, estimators)
        summary = result.summary("max-hop-max")
        row: dict[str, object] = {
            "dataset": dataset, "estimator": "max-hop-max", "ratio": "-",
        }
        row.update(summary.row())
        row["ms"] = result.mean_time_ms("max-hop-max")
        rows.append(row)
        wj = WanderJoinEstimator(graph, seed=config.seed)
        for ratio in config.wj_ratios:
            pairs = []
            elapsed = []
            for query in workload:
                value, seconds = wj.timed_estimate(query.pattern, ratio)
                pairs.append((value, query.true_cardinality))
                elapsed.append(seconds)
            row = {
                "dataset": dataset,
                "estimator": "WJ",
                "ratio": f"{100 * ratio:g}%",
            }
            row.update(summarize(pairs).row())
            row["ms"] = 1000.0 * sum(elapsed) / max(len(elapsed), 1)
            rows.append(row)
    return rows, format_table(
        rows, title="Figure 14: WanderJoin vs max-hop-max"
    )


# ----------------------------------------------------------------------
# Figure 15: plan quality
# ----------------------------------------------------------------------

class _SharedCegEstimates:
    """Per-subpattern CEG cache shared by all nine heuristics (Fig 15).

    The DP optimizer probes every connected subquery; building each
    subquery's CEG once and reading all heuristics off it makes the
    nine-estimator comparison nine times cheaper.
    """

    def __init__(self, markov: MarkovTable):
        self.markov = markov
        self._cache: dict[object, object] = {}

    def estimate_fn(self, path_length: str, aggregator: str):
        from repro.core import build_ceg_o, estimate_from_ceg

        def estimate(pattern):
            ceg = self._cache.get(pattern)
            if ceg is None:
                ceg = build_ceg_o(pattern, self.markov)
                self._cache[pattern] = ceg
            return estimate_from_ceg(ceg, path_length, aggregator)

        return estimate


def figure15_plan_quality(config: ExperimentConfig | None = None):
    """Figure 15: injected estimates -> DP plans -> real execution cost.

    Reports, per estimator, the distribution of log10 speedup of its
    plan over the RDF-3X-default-estimator plan (positive = faster).
    """
    import math

    config = config or ExperimentConfig()
    chosen = [d for d in config.datasets if d in ("dblp", "watdiv")]
    rows: list[dict[str, object]] = []
    for dataset in chosen:
        graph = load_dataset(dataset, config.scale)
        workload = config.workload_for(dataset, graph, "acyclic")
        # The DP optimizer probes every connected subquery; all of their
        # <= h statistics are subpatterns of the workload queries, so the
        # bulk-built store covers them and the planning loop never counts
        # a pattern from scratch.
        store = _dataset_store(dataset, graph, 2, workload)
        shared = _SharedCegEstimates(store.markov)
        estimators: dict[str, object] = {
            f"{'all-hops' if hop == 'all' else hop + '-hop'}-{aggr}":
                shared.estimate_fn(hop, aggr)
            for hop in ("max", "min", "all")
            for aggr in ("max", "min", "avg")
        }
        baseline = Rdf3xDefaultEstimator(graph)
        per_query_costs: list[dict[str, float]] = []
        for query in workload:
            costs: dict[str, float] = {}
            try:
                base_plan = optimize_left_deep(query.pattern, baseline.estimate)
                base_run = execute_plan(
                    graph, query.pattern, base_plan.order, max_rows=3_000_000
                )
            except ReproError:
                continue
            costs["rdf3x-default"] = max(base_run.cost, 1.0)
            for name, estimate in estimators.items():
                try:
                    plan = optimize_left_deep(query.pattern, estimate)
                    run = execute_plan(
                        graph, query.pattern, plan.order, max_rows=3_000_000
                    )
                except ReproError:
                    continue
                costs[name] = max(run.cost, 1.0)
            if len(costs) > 1:
                per_query_costs.append(costs)
        # The paper's filter: keep only queries on which the estimators
        # actually disagree (>= 10% spread across the 10 plans).
        differentiating = [
            costs
            for costs in per_query_costs
            if max(costs.values()) > 1.1 * min(costs.values())
        ]
        if not differentiating:
            differentiating = per_query_costs
        speedups: dict[str, list[float]] = {name: [] for name in estimators}
        for costs in differentiating:
            base_cost = costs["rdf3x-default"]
            for name in estimators:
                if name in costs:
                    speedups[name].append(math.log10(base_cost / costs[name]))
        for name, values in speedups.items():
            if not values:
                continue
            values.sort()
            rows.append(
                {
                    "dataset": dataset,
                    "estimator": name,
                    "n": len(values),
                    "p25 log10 speedup": values[len(values) // 4],
                    "median log10 speedup": values[len(values) // 2],
                    "p75 log10 speedup": values[(3 * len(values)) // 4],
                    "mean log10 speedup": sum(values) / len(values),
                }
            )
    return rows, format_table(
        rows, title="Figure 15: plan quality vs the RDF-3X default estimator"
    )
