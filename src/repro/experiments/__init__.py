"""Metrics, harness, reporting and per-figure experiment drivers."""

from repro.experiments.figures import (
    ExperimentConfig,
    figure9_acyclic_space,
    figure10_cyclic_triangles,
    figure11_large_cycles,
    figure12_bound_sketch,
    figure13_summary_comparison,
    figure14_wanderjoin,
    figure15_plan_quality,
    table1_markov_example,
    table2_datasets,
)
from repro.experiments.harness import (
    HarnessResult,
    run_harness,
    run_harness_batched,
)
from repro.experiments.per_template import per_template_breakdown
from repro.experiments.metrics import QErrorSummary, q_error, signed_log_q, summarize
from repro.experiments.report import format_summaries, format_table, signed_log_bar

__all__ = [
    "ExperimentConfig",
    "table1_markov_example",
    "table2_datasets",
    "figure9_acyclic_space",
    "figure10_cyclic_triangles",
    "figure11_large_cycles",
    "figure12_bound_sketch",
    "figure13_summary_comparison",
    "figure14_wanderjoin",
    "figure15_plan_quality",
    "HarnessResult",
    "run_harness",
    "run_harness_batched",
    "per_template_breakdown",
    "QErrorSummary",
    "q_error",
    "signed_log_q",
    "summarize",
    "format_table",
    "format_summaries",
    "signed_log_bar",
]
