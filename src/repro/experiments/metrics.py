"""Accuracy metrics: q-error and the paper's distribution summaries.

§6.2 compares estimators by the distribution of *signed log q-errors*:
``log10(q-error)`` with a negative sign for underestimation, so
distributions order from worst underestimate to worst overestimate.
Box summaries report the 25th/50th/75th percentiles plus the mean of
``log10(q-error)`` after dropping the top 10% (the paper's red dashed
line).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["q_error", "signed_log_q", "QErrorSummary", "summarize"]


def q_error(estimate: float, truth: float) -> float:
    """``max(c/e, e/c) >= 1``; infinite when exactly one side is zero."""
    if truth <= 0 and estimate <= 0:
        return 1.0
    if truth <= 0 or estimate <= 0:
        return float("inf")
    return max(estimate / truth, truth / estimate)


def signed_log_q(estimate: float, truth: float) -> float:
    """``log10(q-error)``, negative for underestimation."""
    error = q_error(estimate, truth)
    if error == float("inf"):
        return -math.inf if estimate < truth else math.inf
    magnitude = math.log10(error)
    return -magnitude if estimate < truth else magnitude


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return sorted_values[low]
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


@dataclass
class QErrorSummary:
    """Distribution summary in the paper's box-plot vocabulary."""

    count: int
    p25: float
    median: float
    p75: float
    trimmed_mean_log_q: float
    mean_q_error: float
    underestimated_fraction: float

    def row(self) -> dict[str, float]:
        """The summary as a report-table row."""
        return {
            "n": self.count,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "mean(log q, -top10%)": self.trimmed_mean_log_q,
            "mean q": self.mean_q_error,
            "under%": 100.0 * self.underestimated_fraction,
        }


def summarize(pairs: list[tuple[float, float]]) -> QErrorSummary:
    """Summarise ``(estimate, truth)`` pairs.

    Infinite q-errors (zero estimates for non-empty truths) are clamped
    to 1e12 so summaries stay finite while remaining clearly terrible.
    """
    if not pairs:
        return QErrorSummary(0, *(float("nan"),) * 5, 0.0)
    signed = []
    magnitudes = []
    raw = []
    under = 0
    for estimate, truth in pairs:
        value = signed_log_q(estimate, truth)
        if math.isinf(value):
            value = math.copysign(12.0, value)
        signed.append(value)
        magnitudes.append(abs(value))
        error = q_error(estimate, truth)
        raw.append(min(error, 1e12))
        if estimate < truth:
            under += 1
    signed.sort()
    # Trimmed mean: drop the worst 10% of |log q| (paper's convention of
    # excluding the top decile of the error distribution).
    magnitudes.sort()
    keep = max(1, int(math.ceil(len(magnitudes) * 0.9)))
    trimmed = sum(magnitudes[:keep]) / keep
    return QErrorSummary(
        count=len(pairs),
        p25=_percentile(signed, 0.25),
        median=_percentile(signed, 0.50),
        p75=_percentile(signed, 0.75),
        trimmed_mean_log_q=trimmed,
        mean_q_error=sum(raw) / len(raw),
        underestimated_fraction=under / len(pairs),
    )
