"""ASCII rendering of experiment results (the benches' printed output)."""

from __future__ import annotations

from repro.experiments.metrics import QErrorSummary

__all__ = ["format_table", "format_summaries", "signed_log_bar"]


def format_table(rows: list[dict[str, object]], title: str = "") -> str:
    """Render dict rows as a fixed-width ASCII table."""
    if not rows:
        return f"{title}\n(no rows)\n"
    columns = list(rows[0].keys())
    rendered: list[list[str]] = []
    for row in rows:
        line = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                line.append(f"{value:.3g}")
            else:
                line.append(str(value))
        rendered.append(line)
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    parts = []
    if title:
        parts.append(title)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    parts.append(header)
    parts.append("-+-".join("-" * w for w in widths))
    for line in rendered:
        parts.append(" | ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(parts) + "\n"


def format_summaries(
    summaries: dict[str, QErrorSummary], title: str = ""
) -> str:
    """One row per estimator, in the Figure-9 box-plot vocabulary."""
    rows = []
    for name, summary in summaries.items():
        row: dict[str, object] = {"estimator": name}
        row.update(summary.row())
        rows.append(row)
    return format_table(rows, title=title)


def signed_log_bar(value: float, width: int = 31) -> str:
    """A tiny ASCII gauge of a signed log10 q-error (| is exact)."""
    if value != value:  # NaN
        return " " * width
    half = width // 2
    clamped = max(min(value, 6.0), -6.0)
    offset = int(round(clamped / 6.0 * half))
    cells = [" "] * width
    cells[half] = "|"
    if offset > 0:
        for i in range(1, offset + 1):
            cells[half + i] = "#"
    elif offset < 0:
        for i in range(1, -offset + 1):
            cells[half - i] = "#"
    return "".join(cells)
