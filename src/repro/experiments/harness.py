"""Workload-vs-estimator harness.

Runs a dictionary of estimators over a workload, collecting per-query
estimates, timings and failures (timeouts are recorded and the query is
dropped from every estimator's distribution, the paper's convention when
SumRDF timed out).

:func:`run_harness_batched` is the service-backed variant: instead of
calling estimator objects one query at a time it pushes the whole
workload through an :class:`~repro.service.session.EstimationSession`
batch, so repeated query shapes share CEG skeletons and cached
estimates.  Both functions produce the same :class:`HarnessResult`
shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from repro.datasets.workloads import WorkloadQuery
from repro.errors import ReproError
from repro.experiments.metrics import QErrorSummary, summarize
from repro.query.pattern import QueryPattern
from repro.service.session import EstimationSession, EstimatorSpec
from repro.stats.store import StatisticsStore

__all__ = [
    "EstimatorLike",
    "HarnessResult",
    "run_harness",
    "run_harness_batched",
]


class EstimatorLike(Protocol):
    """Anything with an ``estimate(query) -> float`` method."""

    def estimate(self, query: QueryPattern) -> float:
        """Cardinality estimate for a query pattern."""
        ...


@dataclass
class HarnessResult:
    """All estimates from one harness run."""

    estimates: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    timings: dict[str, list[float]] = field(default_factory=dict)
    failures: dict[str, int] = field(default_factory=dict)
    skipped_queries: list[str] = field(default_factory=list)

    def summary(self, name: str) -> QErrorSummary:
        """Q-error summary for one estimator."""
        return summarize(self.estimates.get(name, []))

    def summaries(self) -> dict[str, QErrorSummary]:
        """Summaries for every estimator that ran."""
        return {name: self.summary(name) for name in self.estimates}

    def mean_time_ms(self, name: str) -> float:
        """Mean estimation latency in milliseconds."""
        values = self.timings.get(name, [])
        if not values:
            return float("nan")
        return 1000.0 * sum(values) / len(values)


def run_harness(
    workload: list[WorkloadQuery],
    estimators: dict[str, Callable[[QueryPattern], float] | EstimatorLike],
    drop_on_failure: bool = True,
) -> HarnessResult:
    """Estimate every workload query with every estimator.

    ``estimators`` maps names to objects with ``.estimate(query)`` or to
    plain callables.  When ``drop_on_failure`` is set, a query on which
    any estimator fails (e.g. a SumRDF timeout) is removed from all
    distributions, as in §6.4.
    """
    result = HarnessResult()
    for name in estimators:
        result.estimates[name] = []
        result.timings[name] = []
        result.failures[name] = 0
    for query in workload:
        row: dict[str, tuple[float, float]] = {}
        durations: dict[str, float] = {}
        failed = False
        for name, estimator in estimators.items():
            call = getattr(estimator, "estimate", estimator)
            started = time.perf_counter()
            try:
                value = float(call(query.pattern))
            except ReproError:
                result.failures[name] += 1
                failed = True
                continue
            durations[name] = time.perf_counter() - started
            row[name] = (value, query.true_cardinality)
        if failed and drop_on_failure:
            result.skipped_queries.append(query.name)
            continue
        for name, pair in row.items():
            result.estimates[name].append(pair)
            result.timings[name].append(durations[name])
    return result


def run_harness_batched(
    workload: list[WorkloadQuery],
    session: EstimationSession | StatisticsStore,
    specs: Sequence[EstimatorSpec | str],
    drop_on_failure: bool = True,
    max_workers: int | None = None,
) -> HarnessResult:
    """Estimate a workload through a session's cached batch path.

    Semantically equivalent to :func:`run_harness` over
    ``session.estimators(specs)`` (same drop-on-failure convention, same
    result shape) but runs as one :meth:`EstimationSession.estimate_batch`
    call, so queries of the same canonical shape are estimated once.

    A prebuilt :class:`~repro.stats.StatisticsStore` may be passed in
    place of a session: a session serving from it (graph-free when the
    store is) is created for the call.
    """
    if isinstance(session, StatisticsStore):
        session = session.session(max_workers=max_workers)
    batch = session.estimate_batch(
        [query.pattern for query in workload],
        specs=specs,
        max_workers=max_workers,
    )
    result = HarnessResult()
    for name in batch.specs:
        result.estimates[name] = []
        result.timings[name] = []
        result.failures[name] = 0
    for index, query in enumerate(workload):
        cells = [batch.item(index, name) for name in batch.specs]
        failed = [cell for cell in cells if not cell.ok]
        for cell in failed:
            result.failures[cell.estimator] += 1
        if failed and drop_on_failure:
            result.skipped_queries.append(query.name)
            continue
        for cell in cells:
            if not cell.ok:
                continue
            result.estimates[cell.estimator].append(
                (cell.estimate, query.true_cardinality)
            )
            result.timings[cell.estimator].append(cell.seconds)
    return result
