"""Plan execution: run a left-deep order for real and measure its cost.

The Figure-15 "runtime" proxy is the total number of intermediate tuples
the plan materialises (C_out on *true* data) plus the wall-clock time of
actually executing it on the vectorised join engine — both reported, so
benches can show either.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine.join import extend_by_edge, start_table
from repro.errors import PlanningError
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = ["ExecutionResult", "execute_plan"]


@dataclass
class ExecutionResult:
    """Outcome of executing one join order."""

    order: list[int]
    intermediate_tuples: float
    final_cardinality: float
    elapsed_seconds: float
    aborted: bool = False

    @property
    def cost(self) -> float:
        """The plan-quality metric: work done, in tuples."""
        return self.intermediate_tuples


def execute_plan(
    graph: LabeledDiGraph,
    query: QueryPattern,
    order: list[int],
    max_rows: int | None = 20_000_000,
) -> ExecutionResult:
    """Run the left-deep order; abort (with the cap as cost) on blow-up."""
    if sorted(order) != list(range(len(query))):
        raise PlanningError(f"order {order} is not a permutation of the atoms")
    started = time.perf_counter()
    table = start_table(graph, query.edges[order[0]])
    produced = float(table.size)
    try:
        for index in order[1:]:
            table = extend_by_edge(
                graph, table, query.edges[index], max_rows=max_rows
            )
            produced += float(table.size)
    except PlanningError:
        elapsed = time.perf_counter() - started
        penalty = float(max_rows) if max_rows is not None else float("inf")
        return ExecutionResult(
            order=list(order),
            intermediate_tuples=produced + penalty,
            final_cardinality=float("nan"),
            elapsed_seconds=elapsed,
            aborted=True,
        )
    elapsed = time.perf_counter() - started
    return ExecutionResult(
        order=list(order),
        intermediate_tuples=produced,
        final_cardinality=float(table.size),
        elapsed_seconds=elapsed,
    )
