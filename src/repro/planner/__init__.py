"""Join-order planning with injected cardinality estimates (Figure 15)."""

from repro.planner.bushy import (
    BushyPlan,
    execute_bushy,
    optimize_bushy,
    tree_atoms,
)
from repro.planner.dp_optimizer import Plan, optimize_left_deep
from repro.planner.executor import ExecutionResult, execute_plan

__all__ = [
    "Plan",
    "optimize_left_deep",
    "ExecutionResult",
    "execute_plan",
    "BushyPlan",
    "optimize_bushy",
    "execute_bushy",
    "tree_atoms",
]
