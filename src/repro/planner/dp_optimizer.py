"""Selinger-style dynamic-programming join-order optimizer.

Reproduces the mechanism of the Figure-15 experiment: cardinality
estimates are *injected* into a DP optimizer that picks the cheapest
left-deep join order under the C_out cost model (the sum of estimated
intermediate-result sizes — the standard proxy that reference [12]
showed makes estimation accuracy decide plan quality).

The estimator is any object/callable mapping a connected subpattern of
the query to a cardinality.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import PlanningError
from repro.query.pattern import QueryPattern

__all__ = ["Plan", "optimize_left_deep"]

EstimateFn = Callable[[QueryPattern], float]


class Plan:
    """A left-deep join order with its estimated C_out cost."""

    def __init__(self, order: list[int], estimated_cost: float):
        self.order = order
        self.estimated_cost = estimated_cost

    def __repr__(self) -> str:
        return f"Plan(order={self.order}, est_cost={self.estimated_cost:.1f})"


def optimize_left_deep(
    query: QueryPattern, estimate: EstimateFn
) -> Plan:
    """The cheapest left-deep order under injected estimates.

    DP over connected atom subsets: ``cost(S) = min over last atoms e
    (with S \\ {e} connected) of cost(S \\ {e}) + card_est(S)``; single
    atoms cost their estimated cardinality.  Estimates are clamped to be
    non-negative; estimator failures on a subquery are treated as
    "unknown = large" so a broken estimator still yields some plan.
    """
    atoms = len(query)
    if atoms == 0:
        raise PlanningError("cannot plan an empty query")
    if atoms > 16:
        raise PlanningError("left-deep DP limited to 16 atoms")

    cardinality_cache: dict[frozenset[int], float] = {}

    def card(subset: frozenset[int]) -> float:
        cached = cardinality_cache.get(subset)
        if cached is None:
            try:
                cached = max(float(estimate(query.subpattern(subset))), 0.0)
            except Exception:
                # Unknown = very large, but finite so a plan still exists
                # even when the estimator fails on every subquery.
                cached = 1e30
            cardinality_cache[subset] = cached
        return cached

    best_cost: dict[frozenset[int], float] = {}
    best_order: dict[frozenset[int], list[int]] = {}
    for index in range(atoms):
        subset = frozenset([index])
        best_cost[subset] = card(subset)
        best_order[subset] = [index]

    subsets = [s for s in query.connected_edge_subsets() if len(s) >= 2]
    subsets.sort(key=len)
    for subset in subsets:
        cheapest = float("inf")
        chosen: list[int] | None = None
        for last in sorted(subset):
            rest = subset - {last}
            if rest not in best_cost:
                continue  # rest disconnected: not a left-deep prefix
            candidate = best_cost[rest] + card(subset)
            if candidate < cheapest:
                cheapest = candidate
                chosen = best_order[rest] + [last]
        if chosen is not None:
            best_cost[subset] = cheapest
            best_order[subset] = chosen

    full = frozenset(range(atoms))
    if full not in best_order:
        raise PlanningError("no connected left-deep order exists")
    return Plan(best_order[full], best_cost[full])
