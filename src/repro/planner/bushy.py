"""Bushy join-order optimization and execution.

The RDF-3X optimizer that Figure 15 injects estimates into is a bushy
DP; this module extends the left-deep planner with full bushy search:
``cost(S) = min over connected splits (S1, S2) of cost(S1) + cost(S2)
+ card_est(S)`` — and an executor that runs the resulting join tree on
:func:`repro.engine.join.join_tables`.

Plan trees are nested tuples: a leaf is an atom index, an inner node is
``(left_tree, right_tree)``.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.engine.join import BindingTable, join_tables, start_table
from repro.errors import PlanningError
from repro.graph.digraph import LabeledDiGraph
from repro.planner.executor import ExecutionResult
from repro.query.pattern import QueryPattern

__all__ = ["BushyPlan", "optimize_bushy", "execute_bushy", "tree_atoms"]

PlanTree = object  # int leaf | tuple[PlanTree, PlanTree]


class BushyPlan:
    """A bushy join tree with its estimated C_out cost."""

    def __init__(self, tree: PlanTree, estimated_cost: float):
        self.tree = tree
        self.estimated_cost = estimated_cost

    def __repr__(self) -> str:
        return f"BushyPlan(tree={self.tree!r}, est_cost={self.estimated_cost:.1f})"


def tree_atoms(tree: PlanTree) -> frozenset[int]:
    """All atom indexes in a plan tree."""
    if isinstance(tree, int):
        return frozenset([tree])
    left, right = tree  # type: ignore[misc]
    return tree_atoms(left) | tree_atoms(right)


def optimize_bushy(
    query: QueryPattern,
    estimate: Callable[[QueryPattern], float],
) -> BushyPlan:
    """The cheapest bushy plan under injected estimates.

    Searches every split of every connected subset into two connected,
    variable-sharing halves.  Exponential in the number of atoms; capped
    at 12 (the workloads top out at 9).
    """
    atoms = len(query)
    if atoms == 0:
        raise PlanningError("cannot plan an empty query")
    if atoms > 12:
        raise PlanningError("bushy DP limited to 12 atoms")

    card_cache: dict[frozenset[int], float] = {}

    def card(subset: frozenset[int]) -> float:
        cached = card_cache.get(subset)
        if cached is None:
            try:
                cached = max(float(estimate(query.subpattern(subset))), 0.0)
            except Exception:
                cached = 1e30
            card_cache[subset] = cached
        return cached

    best_cost: dict[frozenset[int], float] = {}
    best_tree: dict[frozenset[int], PlanTree] = {}
    for index in range(atoms):
        leaf = frozenset([index])
        best_cost[leaf] = card(leaf)
        best_tree[leaf] = index

    subsets = [s for s in query.connected_edge_subsets() if len(s) >= 2]
    subsets.sort(key=len)
    for subset in subsets:
        members = sorted(subset)
        anchor = members[0]
        cheapest = float("inf")
        chosen: PlanTree | None = None
        # Enumerate splits via subsets of the remaining members joined
        # with the anchor (each unordered split counted once).
        rest = [m for m in members if m != anchor]
        for mask in range(1 << len(rest)):
            left = frozenset(
                [anchor] + [rest[i] for i in range(len(rest)) if mask >> i & 1]
            )
            right = subset - left
            if not right:
                continue
            if left not in best_cost or right not in best_cost:
                continue
            # The halves must share a variable for the join to be
            # non-Cartesian (connected subsets of a connected query
            # always do when both halves are connected).
            if not (
                query.variables_of(left) & query.variables_of(right)
            ):
                continue
            candidate = best_cost[left] + best_cost[right] + card(subset)
            if candidate < cheapest:
                cheapest = candidate
                chosen = (best_tree[left], best_tree[right])
        if chosen is not None:
            best_cost[subset] = cheapest
            best_tree[subset] = chosen

    full = frozenset(range(atoms))
    if full not in best_tree:
        raise PlanningError("no connected bushy plan exists")
    return BushyPlan(best_tree[full], best_cost[full])


def execute_bushy(
    graph: LabeledDiGraph,
    query: QueryPattern,
    tree: PlanTree,
    max_rows: int | None = 20_000_000,
) -> ExecutionResult:
    """Run a bushy join tree; cost = total intermediate tuples."""
    if tree_atoms(tree) != frozenset(range(len(query))):
        raise PlanningError("plan tree does not cover every atom")
    produced = 0.0
    started = time.perf_counter()

    def run(node: PlanTree) -> BindingTable:
        nonlocal produced
        if isinstance(node, int):
            table = start_table(graph, query.edges[node])
            produced += float(table.size)
            return table
        left, right = node  # type: ignore[misc]
        table = join_tables(
            run(left), run(right), graph.num_vertices, max_rows=max_rows
        )
        produced += float(table.size)
        return table

    try:
        final = run(tree)
    except PlanningError:
        penalty = float(max_rows) if max_rows is not None else float("inf")
        return ExecutionResult(
            order=sorted(tree_atoms(tree)),
            intermediate_tuples=produced + penalty,
            final_cardinality=float("nan"),
            elapsed_seconds=time.perf_counter() - started,
            aborted=True,
        )
    return ExecutionResult(
        order=sorted(tree_atoms(tree)),
        intermediate_tuples=produced,
        final_cardinality=float(final.size),
        elapsed_seconds=time.perf_counter() - started,
    )
