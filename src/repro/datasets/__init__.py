"""Dataset presets (Table 2) and workload generators (§6.1)."""

from repro.datasets.presets import (
    DATASETS,
    EXAMPLE_DATASET,
    DatasetSpec,
    dataset_table,
    load_dataset,
    running_example_graph,
)
from repro.datasets.workloads import (
    WorkloadQuery,
    acyclic_workload,
    cyclic_workload,
    gcare_acyclic_workload,
    gcare_cyclic_workload,
    job_like_workload,
    split_cyclic_by_cycle_size,
)

__all__ = [
    "DATASETS",
    "EXAMPLE_DATASET",
    "running_example_graph",
    "DatasetSpec",
    "load_dataset",
    "dataset_table",
    "WorkloadQuery",
    "job_like_workload",
    "acyclic_workload",
    "cyclic_workload",
    "gcare_acyclic_workload",
    "gcare_cyclic_workload",
    "split_cyclic_by_cycle_size",
]
