"""The six evaluation datasets (Table 2), as seeded synthetic stand-ins.

The paper evaluates on IMDb, YAGO, DBLP, WatDiv, Hetionet and Epinions
(up to 65M edges).  We cannot ship those graphs, so each preset is a
seeded generator configuration that reproduces the qualitative profile
that drives estimator behaviour — label count, degree skew, label
correlation, and cycle density — at a scale where exact ground truth is
computable (see DESIGN.md §1 for the substitution argument).  Epinions
mirrors the paper's control: labels assigned independently at random
(``label_correlation = 0``), "guaranteed to not have any correlations
between edge labels".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatasetError
from repro.graph.digraph import LabeledDiGraph
from repro.graph.generators import generate_graph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "SYNTHETIC_DATASETS",
    "load_dataset",
    "dataset_table",
    "running_example_graph",
    "EXAMPLE_DATASET",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Generator configuration for one named dataset."""

    name: str
    domain: str
    num_vertices: int
    num_edges: int
    num_labels: int
    degree_skew: float
    label_skew: float
    label_correlation: float
    closure: float
    seed: int

    def build(self, scale: float = 1.0) -> LabeledDiGraph:
        """Materialise the graph (``scale`` shrinks it for quick runs)."""
        return generate_graph(
            num_vertices=max(int(self.num_vertices * scale), 10),
            num_edges=max(int(self.num_edges * scale), 20),
            num_labels=self.num_labels,
            seed=self.seed,
            degree_skew=self.degree_skew,
            label_skew=self.label_skew,
            label_correlation=self.label_correlation,
            closure=self.closure,
        )


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="imdb",
            domain="Movies",
            num_vertices=30_000,
            num_edges=90_000,
            num_labels=127,
            degree_skew=0.9,
            label_skew=0.8,
            label_correlation=0.6,
            closure=0.10,
            seed=101,
        ),
        DatasetSpec(
            name="yago",
            domain="Knowledge Graph",
            num_vertices=26_000,
            num_edges=45_000,
            num_labels=91,
            degree_skew=0.85,
            label_skew=0.9,
            label_correlation=0.5,
            closure=0.15,
            seed=102,
        ),
        # DBLP and WatDiv are the datasets on which the paper reports
        # near-perfect max-hop-max estimates (§6.3): DBLP is regular and
        # WatDiv is itself a synthetic benchmark with near-independent
        # labels, so both get low label correlation here.
        DatasetSpec(
            name="dblp",
            domain="Citations",
            num_vertices=23_000,
            num_edges=80_000,
            num_labels=27,
            degree_skew=0.8,
            label_skew=0.7,
            label_correlation=0.3,
            closure=0.20,
            seed=103,
        ),
        DatasetSpec(
            name="watdiv",
            domain="Products",
            num_vertices=10_000,
            num_edges=60_000,
            num_labels=86,
            degree_skew=0.6,
            label_skew=0.7,
            label_correlation=0.15,
            closure=0.10,
            seed=104,
        ),
        DatasetSpec(
            name="hetionet",
            domain="Biology",
            num_vertices=4_500,
            num_edges=40_000,
            num_labels=24,
            degree_skew=1.0,
            label_skew=0.6,
            label_correlation=0.6,
            closure=0.30,
            seed=105,
        ),
        DatasetSpec(
            name="epinions",
            domain="Consumer Reviews",
            num_vertices=7_600,
            num_edges=35_000,
            num_labels=50,
            degree_skew=0.9,
            label_skew=0.5,
            label_correlation=0.0,  # random labels: the no-correlation control
            closure=0.25,
            seed=106,
        ),
    ]
}

# Scale-exercise presets: not part of Table 2 (dataset_table skips them),
# but loadable through load_dataset for the parallel-build benchmarks.
# synth1m's moderate skews keep two-atom joins well under the default
# 5M-row materialisation cap while the 1.2M edges stress ingest and the
# level-parallel build.
SYNTHETIC_DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="synth1m",
            domain="Synthetic (scale)",
            num_vertices=400_000,
            num_edges=1_200_000,
            num_labels=24,
            degree_skew=0.6,
            label_skew=0.4,
            label_correlation=0.2,
            closure=0.05,
            seed=777,
        ),
    ]
}


def running_example_graph() -> LabeledDiGraph:
    """The paper's Figure-2-shaped running example (13 vertices, 5 labels).

    ``A`` edges chain into a ``B`` layer which forks into ``C``/``D``/``E``
    — the graph behind the fork query ``Q5f`` used throughout §4.  Small
    enough for docs, CI smoke tests and artifact examples.
    """
    triples: list[tuple[int, int, str]] = []
    for u, v in [(0, 3), (1, 3), (2, 4), (0, 4)]:
        triples.append((u, v, "A"))
    for u, v in [(3, 5), (4, 5), (3, 6), (4, 6)]:
        triples.append((u, v, "B"))
    for u, v in [(5, 7), (5, 8), (6, 7)]:
        triples.append((u, v, "C"))
    for u, v in [(5, 9), (6, 9), (6, 10)]:
        triples.append((u, v, "D"))
    for u, v in [(5, 11), (6, 11), (5, 12), (6, 12)]:
        triples.append((u, v, "E"))
    return LabeledDiGraph.from_triples(triples, num_vertices=13)


EXAMPLE_DATASET = "example"

_CACHE: dict[tuple[str, float], LabeledDiGraph] = {}


def load_dataset(name: str, scale: float = 1.0) -> LabeledDiGraph:
    """Build (and cache) a preset dataset.

    ``"example"`` loads the fixed running-example graph (``scale`` is
    ignored); the six Table-2 presets are seeded generators.
    """
    if name == EXAMPLE_DATASET:
        key = (name, 1.0)
        cached = _CACHE.get(key)
        if cached is None:
            cached = running_example_graph()
            _CACHE[key] = cached
        return cached
    spec = DATASETS.get(name) or SYNTHETIC_DATASETS.get(name)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from "
            f"{sorted(DATASETS) + sorted(SYNTHETIC_DATASETS) + [EXAMPLE_DATASET]}"
        )
    key = (name, scale)
    cached = _CACHE.get(key)
    if cached is None:
        cached = spec.build(scale)
        _CACHE[key] = cached
    return cached


def dataset_table(scale: float = 1.0) -> list[dict[str, object]]:
    """Rows in the shape of Table 2 (name, domain, |V|, |E|, labels)."""
    rows = []
    for name, spec in DATASETS.items():
        graph = load_dataset(name, scale)
        rows.append(
            {
                "dataset": name,
                "domain": spec.domain,
                "|V|": graph.num_vertices,
                "|E|": graph.num_edges,
                "|E. Labels|": len(graph.labels),
            }
        )
    return rows
