"""Workload generation (§6.1).

Five workload families, matching the paper's setup:

* ``job_like_workload`` — the 7 JOB-derived acyclic templates (4/5/6
  atoms), instances by random label assignment, non-empty only;
* ``acyclic_workload`` — 6/7/8-atom trees at every depth (Figure 8);
* ``cyclic_workload`` — the reference-[20] cyclic templates, instances
  found by randomly matching the template in the data (as in §6.1);
* ``gcare_acyclic_workload`` / ``gcare_cyclic_workload`` — the G-CARE
  star/path/tree and cycle/clique/flower/petal templates.

Every instance records its template name and exact true cardinality
(computed with the exact engine; queries whose counting exceeds the
budget are skipped, mirroring the paper's timeout removals).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.counter import count_pattern
from repro.engine.sampler import PatternSampler
from repro.errors import CountBudgetExceeded
from repro.graph.digraph import LabeledDiGraph
from repro.query import templates as T
from repro.query.pattern import QueryPattern
from repro.query.shape import has_only_triangles, largest_cycle_length

__all__ = [
    "WorkloadQuery",
    "job_like_workload",
    "acyclic_workload",
    "cyclic_workload",
    "gcare_acyclic_workload",
    "gcare_cyclic_workload",
    "split_cyclic_by_cycle_size",
]


@dataclass(frozen=True)
class WorkloadQuery:
    """One workload instance with its ground truth."""

    name: str
    template: str
    pattern: QueryPattern
    true_cardinality: float


def _instantiate(
    graph: LabeledDiGraph,
    inventory: dict[str, QueryPattern],
    per_template: int,
    seed: int,
    count_budget: int | None,
    randomize_directions: bool = False,
) -> list[WorkloadQuery]:
    """Sample non-empty instances of each template.

    Labels come from matching the template in the data (guaranteeing a
    non-empty output, the paper's acceptance criterion); instances whose
    exact count exceeds the budget are skipped like the paper's
    timeouts.
    """
    sampler = PatternSampler(graph, seed=seed)
    rng = random.Random(seed ^ 0xABCDEF)
    result: list[WorkloadQuery] = []
    for template_name, template in sorted(inventory.items()):
        produced = 0
        attempts = 0
        seen: set[QueryPattern] = set()
        while produced < per_template and attempts < per_template * 30:
            attempts += 1
            shape = template
            if randomize_directions:
                shape = T.randomize_directions(template, rng)
            instance = sampler.sample_instance(shape, max_tries=50)
            if instance is None or instance in seen:
                continue
            try:
                truth = count_pattern(graph, instance, budget=count_budget)
            except CountBudgetExceeded:
                continue
            if truth <= 0:
                continue
            seen.add(instance)
            produced += 1
            result.append(
                WorkloadQuery(
                    name=f"{template_name}#{produced}",
                    template=template_name,
                    pattern=instance,
                    true_cardinality=truth,
                )
            )
    return result


def job_like_workload(
    graph: LabeledDiGraph,
    per_template: int = 10,
    seed: int = 0,
    count_budget: int | None = 3_000_000,
) -> list[WorkloadQuery]:
    """The JOB-derived acyclic workload (7 templates, §6.1)."""
    return _instantiate(
        graph, T.job_templates(), per_template, seed, count_budget
    )


def acyclic_workload(
    graph: LabeledDiGraph,
    per_template: int = 5,
    seed: int = 0,
    sizes: tuple[int, ...] = (6, 7, 8),
    count_budget: int | None = 3_000_000,
) -> list[WorkloadQuery]:
    """Figure 8's Acyclic workload: every depth for each size."""
    return _instantiate(
        graph, T.acyclic_templates(sizes), per_template, seed, count_budget
    )


def cyclic_workload(
    graph: LabeledDiGraph,
    per_template: int = 5,
    seed: int = 0,
    count_budget: int | None = 3_000_000,
) -> list[WorkloadQuery]:
    """The reference-[20] Cyclic workload."""
    return _instantiate(
        graph, T.cyclic_templates(), per_template, seed, count_budget
    )


def gcare_acyclic_workload(
    graph: LabeledDiGraph,
    per_template: int = 5,
    seed: int = 0,
    sizes: tuple[int, ...] = (3, 6, 9, 12),
    count_budget: int | None = 3_000_000,
) -> list[WorkloadQuery]:
    """G-CARE-Acyclic: stars, paths and random trees of several sizes."""
    inventory = T.gcare_acyclic_templates(random.Random(seed), sizes)
    return _instantiate(graph, inventory, per_template, seed, count_budget)


def gcare_cyclic_workload(
    graph: LabeledDiGraph,
    per_template: int = 5,
    seed: int = 0,
    count_budget: int | None = 3_000_000,
) -> list[WorkloadQuery]:
    """G-CARE-Cyclic: cycles, cliques, flowers and petals."""
    return _instantiate(
        graph, T.gcare_cyclic_templates(), per_template, seed, count_budget
    )


def split_cyclic_by_cycle_size(
    workload: list[WorkloadQuery], h: int = 3
) -> tuple[list[WorkloadQuery], list[WorkloadQuery]]:
    """(triangle-only queries, queries with cycles longer than h).

    The §6.2.1/§6.2.2 split: Figure 10 evaluates cyclic queries whose
    cycles are all triangles; Figure 11 those with cycles of ≥ 4 atoms.
    """
    triangles_only: list[WorkloadQuery] = []
    large_cycles: list[WorkloadQuery] = []
    for query in workload:
        if has_only_triangles(query.pattern):
            triangles_only.append(query)
        elif largest_cycle_length(query.pattern) > h:
            large_cycles.append(query)
    return triangles_only, large_cycles
