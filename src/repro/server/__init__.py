"""Multi-tenant async estimation server (the serve plane over the wire).

``repro.server`` turns the in-process estimation service into a
long-lived network daemon: a :class:`~repro.server.registry.StoreRegistry`
of named, hot-reloadable :class:`~repro.stats.StatisticsStore` artifacts,
an asyncio NDJSON/TCP front end with admission control, and per-(tenant,
shape, estimator) single-flight coalescing in front of the session LRUs.
``repro serve`` / ``repro query`` are the CLI entry points;
:class:`~repro.server.client.EstimationClient` is the library client.
"""

from repro.server.client import (
    EstimationClient,
    FleetClient,
    ServerError,
    ServerUnavailable,
    wait_until_ready,
)
from repro.server.coalescer import CoalescerStats, SingleFlight
from repro.server.fleet import (
    FleetContext,
    FleetMember,
    FleetSupervisor,
    assign_tenants,
)
from repro.server.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ErrorCode,
    ProtocolError,
    Request,
    parse_request,
)
from repro.server.registry import StoreRegistry, TenantEntry
from repro.server.server import EstimationServer, ServerConfig, ThreadedServer

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ERROR_CODES",
    "ErrorCode",
    "ProtocolError",
    "Request",
    "parse_request",
    "CoalescerStats",
    "SingleFlight",
    "StoreRegistry",
    "TenantEntry",
    "ServerConfig",
    "EstimationServer",
    "ThreadedServer",
    "EstimationClient",
    "FleetClient",
    "ServerError",
    "ServerUnavailable",
    "wait_until_ready",
    "FleetMember",
    "FleetContext",
    "FleetSupervisor",
    "assign_tenants",
]
