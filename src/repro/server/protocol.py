"""Wire protocol of the estimation server: NDJSON with typed errors.

One request or response per line, each a JSON object.  Requests carry a
``v`` protocol version, a ``verb`` and an optional client-chosen ``id``
that is echoed back verbatim, so a client may pipeline several requests
over one connection and match answers to questions.

Verbs::

    estimate  {"v": 1, "verb": "estimate", "tenant": "example",
               "query": "a -[A]-> b -[B]-> c",
               "estimators": ["max-hop-max", "MOLP"],
               "deadline_ms": 250}
    stats     {"v": 1, "verb": "stats"}
    reload    {"v": 1, "verb": "reload", "tenant": "example",
               "path": "stats/example-v2"}
    apply_deltas  {"v": 1, "verb": "apply_deltas", "tenant": "example"}
    ping      {"v": 1, "verb": "ping"}
    fleet     {"v": 1, "verb": "fleet"}
    shutdown  {"v": 1, "verb": "shutdown"}

``apply_deltas`` refreshes a tenant from the delta chain appended to its
artifact directory by ``repro updates apply`` — the live-refresh path of
the dynamic-graph subsystem (only unseen generations are replayed, onto
a copy-on-write clone).

``fleet`` describes the multi-process worker fleet serving the port
(worker identity, per-worker direct ports, the consistent-hash tenant
assignment); a single-process server answers ``{"fleet": false}``.  In
fleet mode the control verbs ``reload``/``apply_deltas``/``shutdown``
and ``stats`` fan out to every worker; the optional ``"scope":
"local"`` request field suppresses that fan-out and addresses only the
worker that accepted the connection (the fleet uses it internally so a
fan-out can never recurse).

Responses are ``{"v": 1, "id": ..., "ok": true, "result": {...}}`` or
``{"v": 1, "id": ..., "ok": false, "error": {"code": ..., "message":
..., "exit_code": ...}}``.

Error codes extend the ``repro batch`` exit-code taxonomy (0 — success;
1 — estimation failed; 2 — the request itself is invalid) with a third
class for transient serving conditions a retry may fix: 3 — the server
sheds load, a deadline expired, or it is shutting down.  Every
:class:`ErrorCode` carries the exit code ``repro query`` turns it into,
so the CLI contract is one table shared by client and server.

Floats survive the wire bit for bit: ``json.dumps`` emits the shortest
round-tripping ``repr`` of a double and ``json.loads`` parses it back to
the identical bits, so a served estimate equals the in-process
:meth:`~repro.service.session.EstimationSession.estimate` float exactly
(the load benchmark asserts this on every run).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ErrorCode",
    "ERROR_CODES",
    "ProtocolError",
    "Request",
    "parse_request",
    "ok_response",
    "error_response",
    "encode_line",
    "decode_line",
]

PROTOCOL_VERSION = 1

#: Upper bound on one NDJSON line (requests and responses alike); a
#: well-formed estimate request is a few hundred bytes.
MAX_LINE_BYTES = 1_000_000

VERBS = (
    "estimate",
    "stats",
    "metrics",
    "reload",
    "apply_deltas",
    "ping",
    "fleet",
    "shutdown",
)

#: Upper bound on a client-supplied ``trace_id`` (they land verbatim in
#: log lines and metrics labels, so keep them short and single-line).
MAX_TRACE_ID_CHARS = 64

#: Request scopes: None (default — fleet-wide fan-out of control verbs)
#: or "local" (answer from the worker holding the connection only).
SCOPES = (None, "local")


@dataclass(frozen=True)
class ErrorCode:
    """One typed wire error and the process exit code it maps onto."""

    code: str
    exit_code: int

    def as_dict(self, message: str) -> dict[str, Any]:
        """The ``error`` object embedded in a failure response."""
        return {
            "code": self.code,
            "message": message,
            "exit_code": self.exit_code,
        }


# Request-is-invalid family (exit 2, matching `repro batch`).
INVALID_REQUEST = ErrorCode("invalid_request", 2)
UNSUPPORTED_VERSION = ErrorCode("unsupported_version", 2)
UNKNOWN_VERB = ErrorCode("unknown_verb", 2)
UNKNOWN_TENANT = ErrorCode("unknown_tenant", 2)
UNKNOWN_ESTIMATOR = ErrorCode("unknown_estimator", 2)
MALFORMED_QUERY = ErrorCode("malformed_query", 2)
UNSUPPORTED_SPEC = ErrorCode("unsupported_spec", 2)
RELOAD_FAILED = ErrorCode("reload_failed", 2)

# Estimation-failed family (exit 1, matching `repro batch`).  Note that
# per-estimator failures inside an otherwise-served estimate response
# ride in the result's "errors" map instead (mirroring the batch
# report); ESTIMATION_FAILED covers a whole-request failure.
ESTIMATION_FAILED = ErrorCode("estimation_failed", 1)
INTERNAL_ERROR = ErrorCode("internal_error", 1)

# Transient serving conditions (exit 3 — new to the server; a retry
# against a less-loaded server may succeed).
OVERLOADED = ErrorCode("overloaded", 3)
DEADLINE_EXCEEDED = ErrorCode("deadline_exceeded", 3)
SHUTTING_DOWN = ErrorCode("shutting_down", 3)
#: A fleet fan-out could not reach one worker (crashed and awaiting
#: restart); the per-worker slot of the fanned response carries this.
WORKER_UNREACHABLE = ErrorCode("worker_unreachable", 3)

ERROR_CODES: dict[str, ErrorCode] = {
    error.code: error
    for error in [
        INVALID_REQUEST,
        UNSUPPORTED_VERSION,
        UNKNOWN_VERB,
        UNKNOWN_TENANT,
        UNKNOWN_ESTIMATOR,
        MALFORMED_QUERY,
        UNSUPPORTED_SPEC,
        RELOAD_FAILED,
        ESTIMATION_FAILED,
        INTERNAL_ERROR,
        OVERLOADED,
        DEADLINE_EXCEEDED,
        SHUTTING_DOWN,
        WORKER_UNREACHABLE,
    ]
}


class ProtocolError(ReproError):
    """A request the server must answer with a typed error response."""

    def __init__(self, code: ErrorCode, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """One parsed, schema-checked request line."""

    verb: str
    id: Any = None
    tenant: str | None = None
    query: str | None = None
    estimators: tuple[str, ...] = ()
    deadline_ms: float | None = None
    path: str | None = None
    allow_fingerprint_change: bool = False
    scope: str | None = None
    #: Client-supplied trace id, echoed in the response and propagated
    #: across fleet fan-out; the server mints one when absent.
    trace_id: str | None = None

    @property
    def local(self) -> bool:
        """Whether the request is pinned to the accepting worker."""
        return self.scope == "local"


def _parse_trace_id(payload: dict) -> str | None:
    trace_id = payload.get("trace_id")
    if trace_id is None:
        return None
    if (
        not isinstance(trace_id, str)
        or not trace_id
        or len(trace_id) > MAX_TRACE_ID_CHARS
        or any(ch in trace_id for ch in "\n\r\"\\")
    ):
        raise ProtocolError(
            INVALID_REQUEST,
            "'trace_id' must be a non-empty single-line string of at "
            f"most {MAX_TRACE_ID_CHARS} characters",
        )
    return trace_id


def _require_str(payload: dict, key: str, verb: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            INVALID_REQUEST,
            f"{verb!r} request needs a non-empty string {key!r} field",
        )
    return value


def parse_request(line: str | bytes) -> Request:
    """Parse one request line, raising :class:`ProtocolError` on misuse."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(
                INVALID_REQUEST, f"request is not valid UTF-8: {error}"
            )
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise ProtocolError(
            INVALID_REQUEST, f"request is not valid JSON: {error}"
        )
    if not isinstance(payload, dict):
        raise ProtocolError(
            INVALID_REQUEST, "request must be a JSON object"
        )
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            UNSUPPORTED_VERSION,
            f"protocol version {version!r} is not supported "
            f"(this server speaks v{PROTOCOL_VERSION})",
        )
    verb = payload.get("verb")
    if verb not in VERBS:
        raise ProtocolError(
            UNKNOWN_VERB,
            f"unknown verb {verb!r}; expected one of {VERBS}",
        )
    request_id = payload.get("id")
    trace_id = _parse_trace_id(payload)
    scope = payload.get("scope")
    if scope not in SCOPES:
        raise ProtocolError(
            INVALID_REQUEST,
            f"unknown scope {scope!r}; expected 'local' or no scope field",
        )
    if verb == "estimate":
        estimators_raw = payload.get("estimators", ["max-hop-max"])
        if (
            not isinstance(estimators_raw, list)
            or not estimators_raw
            or not all(isinstance(name, str) for name in estimators_raw)
        ):
            raise ProtocolError(
                INVALID_REQUEST,
                "'estimators' must be a non-empty list of estimator names",
            )
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                raise ProtocolError(
                    INVALID_REQUEST, "'deadline_ms' must be a positive number"
                )
            deadline_ms = float(deadline_ms)
        return Request(
            verb=verb,
            id=request_id,
            tenant=_require_str(payload, "tenant", verb),
            query=_require_str(payload, "query", verb),
            estimators=tuple(estimators_raw),
            deadline_ms=deadline_ms,
            scope=scope,
            trace_id=trace_id,
        )
    if verb == "reload":
        path = payload.get("path")
        if path is not None and not isinstance(path, str):
            raise ProtocolError(
                INVALID_REQUEST, "'path' must be a string when given"
            )
        return Request(
            verb=verb,
            id=request_id,
            tenant=_require_str(payload, "tenant", verb),
            path=path,
            allow_fingerprint_change=bool(
                payload.get("allow_fingerprint_change", False)
            ),
            scope=scope,
            trace_id=trace_id,
        )
    if verb == "apply_deltas":
        return Request(
            verb=verb,
            id=request_id,
            tenant=_require_str(payload, "tenant", verb),
            scope=scope,
            trace_id=trace_id,
        )
    # stats / metrics / ping / fleet / shutdown carry no operands
    # beyond scope.
    return Request(verb=verb, id=request_id, scope=scope, trace_id=trace_id)


def ok_response(request_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    """A success response body."""
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "result": result,
    }


def error_response(
    request_id: Any, code: ErrorCode, message: str
) -> dict[str, Any]:
    """A typed failure response body."""
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": code.as_dict(message),
    }


def encode_line(payload: dict[str, Any]) -> bytes:
    """Serialize one request/response object to a newline-framed line."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one response line into a dict (raises ``ProtocolError``)."""
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise ProtocolError(
            INVALID_REQUEST, f"response is not valid JSON: {error}"
        )
    if not isinstance(payload, dict):
        raise ProtocolError(INVALID_REQUEST, "response must be a JSON object")
    return payload
