"""Multi-tenant artifact registry with atomic hot-reload.

A :class:`StoreRegistry` maps tenant names to loaded
:class:`~repro.stats.store.StatisticsStore` artifacts and the
:class:`~repro.service.session.EstimationSession` serving each of them.
Reads are lock-free snapshots (a single dict lookup of an immutable
:class:`TenantEntry`); writes — loading a tenant, hot-reloading a new
artifact version — build the replacement entry entirely off to the side
and publish it with one atomic reference swap under a small mutex.  An
in-flight request keeps serving from the entry it looked up, so swapping
a tenant's artifact mid-traffic can never fail a request that was
already admitted: old and new sessions coexist until the last reader of
the old one finishes.

Hot-reload validates the incoming artifact before the swap: the
manifest must parse (format-version checked by
:meth:`StatisticsStore.load`) and its dataset fingerprint must match the
version currently served — a registry refuses to silently repoint a
tenant at statistics of a *different* dataset unless the caller passes
``allow_fingerprint_change=True`` (the "this tenant's data really was
regenerated" escape hatch).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from repro.errors import DatasetError
from repro.service.session import EstimationSession
from repro.stats.artifact import StoreManifest
from repro.stats.store import StatisticsStore

__all__ = ["TenantEntry", "StoreRegistry"]


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(frozen=True)
class TenantEntry:
    """One immutable (store, session) version a tenant serves from.

    Entries are never mutated after publication; a reload publishes a
    brand-new entry with ``generation + 1``.  The generation therefore
    keys anything version-scoped (e.g. single-flight coalescing keys)
    so work started against an old version never mixes with the new.
    ``loaded_at`` stamps when this entry was published (load, reload or
    live delta refresh) — the ``stats`` verb's staleness signal.
    """

    name: str
    path: Path
    store: StatisticsStore
    session: EstimationSession
    generation: int
    loaded_at: str = field(default_factory=_utc_now)
    #: ``time.monotonic()`` at publication — the clock behind the
    #: ``generation_age_seconds`` staleness signal (wall-clock-safe).
    loaded_monotonic: float = field(default_factory=time.monotonic)
    #: The shared-memory segment this entry's arrays view into (a
    #: :class:`repro.stats.shm.SegmentHandle`), or None for a private
    #: disk parse.  Kept on the entry so the mapping outlives every
    #: in-flight request against this generation.
    shm: Any = None

    @property
    def fingerprint(self) -> str:
        """The dataset fingerprint recorded in the artifact manifest."""
        return self.store.manifest.dataset_fingerprint

    def describe(self) -> dict[str, Any]:
        """JSON-friendly summary used by the ``stats`` verb."""
        manifest = self.store.manifest
        return {
            "path": str(self.path),
            "generation": self.generation,
            "dataset": manifest.dataset_name or None,
            "fingerprint": manifest.dataset_fingerprint,
            "base_fingerprint": manifest.base_fingerprint,
            "artifact_generation": manifest.generation,
            "last_reload_at": self.loaded_at,
            "generation_age_seconds": round(
                time.monotonic() - self.loaded_monotonic, 3
            ),
            "last_delta_at": manifest.last_delta_at,
            "h": manifest.h,
            "molp_h": manifest.molp_h,
            "complete": manifest.complete,
            "catalogs": list(manifest.catalogs),
            "shm_segment": self.shm.name if self.shm is not None else None,
            "cache": self.session.stats().as_dict(),
        }


class StoreRegistry:
    """Named, hot-reloadable statistics stores for a serving process."""

    def __init__(
        self,
        plane: Any = None,
        mmap: bool = False,
        **session_kwargs: Any,
    ):
        #: Keyword arguments forwarded to every ``store.session(...)``
        #: (e.g. LRU capacities); fixed for the registry's lifetime so
        #: a reloaded tenant serves with the same cache configuration.
        self._session_kwargs = dict(session_kwargs)
        #: Optional :class:`repro.stats.shm.SharedArtifactPlane`: loads
        #: and reloads go through one shared per-host image instead of a
        #: private parse per process (see :meth:`_load_store`).
        self._plane = plane
        #: Whether disk parses memory-map flat artifacts zero-copy.
        self._mmap = bool(mmap)
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantEntry] = {}

    # ------------------------------------------------------------------
    # Reads (lock-free snapshots)
    # ------------------------------------------------------------------
    def get(self, name: str) -> TenantEntry | None:
        """The tenant's current entry, or None when unknown."""
        return self._tenants.get(name)

    def names(self) -> list[str]:
        """Registered tenant names, sorted."""
        return sorted(self._tenants)

    def __len__(self) -> int:
        return len(self._tenants)

    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-tenant manifest + session-cache snapshot."""
        snapshot = dict(self._tenants)
        return {name: entry.describe() for name, entry in sorted(snapshot.items())}

    # ------------------------------------------------------------------
    # Writes (atomic publication)
    # ------------------------------------------------------------------
    def _load_store(self, path: Path) -> tuple[StatisticsStore, Any]:
        """A store for ``path``, through the shared plane when present.

        With a plane, the first process on the host parses the artifact
        once and publishes its image; everyone else (this call included,
        when a peer won) attaches the same shared pages and rebuilds the
        store zero-copy.  Any shared-memory trouble falls back to an
        ordinary private parse — the plane is an optimisation, never a
        availability dependency.
        """
        plane = self._plane
        if plane is None:
            return StatisticsStore.load(path, mmap=self._mmap), None
        from repro.stats.flatpack import store_from_image, store_to_image

        key = plane.store_key(path)

        def build() -> tuple[dict, dict]:
            return store_to_image(
                StatisticsStore.load(path, mmap=self._mmap)
            )

        try:
            meta, arrays, handle = plane.acquire(key, build)
            return store_from_image(meta, arrays), handle
        except DatasetError:
            # Either the plane itself failed (fall back to a private
            # parse) or the artifact is invalid (the parse below raises
            # the same validation error the caller expects).
            return StatisticsStore.load(path, mmap=self._mmap), None

    def _build_entry(
        self, name: str, path: str | Path, generation: int
    ) -> TenantEntry:
        path = Path(path)
        store, handle = self._load_store(path)
        session = store.session(**self._session_kwargs)
        return TenantEntry(
            name=name,
            path=path,
            store=store,
            session=session,
            generation=generation,
            shm=handle,
        )

    def load(self, name: str, path: str | Path) -> TenantEntry:
        """Register a tenant from an artifact directory (generation 1).

        Raises :class:`~repro.errors.DatasetError` when the directory or
        its manifest is missing/invalid, and when the tenant name is
        already taken (use :meth:`reload` to replace a live tenant).
        """
        entry = self._build_entry(name, path, generation=1)
        with self._lock:
            if name in self._tenants:
                raise DatasetError(
                    f"tenant {name!r} is already registered; use reload to "
                    "replace its artifact"
                )
            self._publish(name, entry)
        return entry

    def reload(
        self,
        name: str,
        path: str | Path | None = None,
        allow_fingerprint_change: bool = False,
    ) -> TenantEntry:
        """Atomically swap a tenant to a (possibly new) artifact version.

        The replacement is loaded and validated entirely before the
        swap, so a bad artifact leaves the old version serving
        untouched.  ``path=None`` re-reads the tenant's current
        directory (picking up an in-place artifact refresh).
        """
        current = self._tenants.get(name)
        if current is None:
            raise DatasetError(
                f"cannot reload unknown tenant {name!r}; "
                f"registered tenants: {self.names()}"
            )
        target = Path(path) if path is not None else current.path
        entry = self._build_entry(name, target, current.generation + 1)
        if (
            not allow_fingerprint_change
            and entry.fingerprint != current.fingerprint
        ):
            raise DatasetError(
                f"refusing to reload tenant {name!r}: artifact {target} was "
                f"built from a different dataset (fingerprint "
                f"{entry.fingerprint}, currently serving "
                f"{current.fingerprint}); pass allow_fingerprint_change to "
                "override"
            )
        with self._lock:
            live = self._tenants.get(name)
            if live is None:
                raise DatasetError(
                    f"tenant {name!r} was removed during reload"
                )
            if live.generation >= entry.generation:
                # A concurrent reload won the race; republish on top of
                # it rather than rolling the generation backwards (the
                # entry was freshly read from disk, so its content is
                # current either way).
                entry = replace(entry, generation=live.generation + 1)
            self._publish(name, entry)
        return entry

    def apply_deltas(self, name: str) -> tuple[TenantEntry, int]:
        """Refresh a tenant from its artifact's on-disk delta chain.

        The live-refresh path of the dynamic-graph subsystem: instead of
        re-reading the whole artifact, the tenant's current in-memory
        store is cloned copy-on-write and only the delta generations it
        has not seen yet are replayed onto the clone, which is then
        published as a new entry — in-flight requests keep the entry
        they captured, exactly as with :meth:`reload`.  Fingerprint
        continuity is enforced by the delta chain itself (each patch
        names its parent), so no ``allow_fingerprint_change`` escape
        hatch exists on this path.

        Returns ``(entry, applied)`` where ``applied`` counts the
        generations replayed (0 means the tenant was already current
        and no new entry was published).  Falls back to a full
        :meth:`reload` when the artifact was compacted past the served
        generation (the base files superseded the patches).
        """
        from repro.delta.deltafile import clone_store, replay_delta_chain

        current = self._tenants.get(name)
        if current is None:
            raise DatasetError(
                f"cannot apply deltas to unknown tenant {name!r}; "
                f"registered tenants: {self.names()}"
            )
        manifest = StoreManifest.load(current.path)
        served = current.store.manifest.generation
        if manifest.generation <= served:
            return current, 0
        if manifest.compacted_generation > served:
            # The patches the tenant is missing were folded into the
            # base files; replaying is impossible, so load those.  The
            # fingerprint moved, but legitimately — require the served
            # fingerprint to appear in the recorded lineage before
            # waiving reload's continuity check.
            lineage = {manifest.base_fingerprint} | {
                str(entry.get(field, ""))
                for entry in manifest.deltas
                for field in ("parent_fingerprint", "fingerprint")
            }
            if current.fingerprint not in lineage:
                raise DatasetError(
                    f"tenant {name!r} serves fingerprint "
                    f"{current.fingerprint}, which is not in the compacted "
                    f"artifact's delta lineage; use reload with "
                    "allow_fingerprint_change to repoint it"
                )
            entry = self.reload(name, allow_fingerprint_change=True)
            return entry, manifest.generation - served
        store = None
        handle = None
        applied = manifest.generation - served
        if self._plane is not None:
            # A sibling worker may already have replayed this batch and
            # published the refreshed image — attach its shared pages
            # instead of paying a per-process clone-and-replay.
            attached = self._attach_image(
                current.path, min_generation=manifest.generation
            )
            if attached is not None:
                store, handle = attached
        if store is None:
            store = clone_store(current.store)
            applied = replay_delta_chain(
                store,
                manifest,
                current.path,
                from_generation=served,
                expected_fingerprint=store.manifest.dataset_fingerprint,
            )
            store.manifest = manifest
            if self._plane is not None:
                store, handle = self._publish_image(current.path, store)
        session = store.session(**self._session_kwargs)
        replacement = TenantEntry(
            name=name,
            path=current.path,
            store=store,
            session=session,
            generation=current.generation + 1,
            shm=handle,
        )
        with self._lock:
            live = self._tenants.get(name)
            if live is None:
                raise DatasetError(
                    f"tenant {name!r} was removed during delta refresh"
                )
            if live is not current:
                # Unlike reload (whose entry is freshly read from disk),
                # this clone derives from the entry captured *before*
                # the replay — publishing it over a concurrent
                # reload/refresh would silently revert the tenant.
                raise DatasetError(
                    f"tenant {name!r} changed during the delta refresh "
                    "(concurrent reload?); retry apply_deltas"
                )
            self._publish(name, replacement)
        return replacement, applied

    def refresh_if_stale(self, name: str) -> tuple[TenantEntry, int]:
        """Catch a tenant up with its on-disk artifact, if it moved.

        The restart-convergence path of the worker fleet: a worker
        re-forked after a crash inherits the supervisor's registry
        snapshot from fork time, which may predate ``apply_deltas``
        batches its peers already absorbed.  Compares the on-disk
        manifest against the served store and delegates to
        :meth:`apply_deltas` when the artifact advanced; a tenant that
        is already current costs one manifest read and publishes
        nothing.  Returns ``(entry, applied)`` like :meth:`apply_deltas`.
        """
        current = self._tenants.get(name)
        if current is None:
            raise DatasetError(
                f"cannot refresh unknown tenant {name!r}; "
                f"registered tenants: {self.names()}"
            )
        manifest = StoreManifest.load(current.path)
        if manifest.generation <= current.store.manifest.generation:
            return current, 0
        return self.apply_deltas(name)

    def _attach_image(
        self, path: Path, min_generation: int
    ) -> tuple[StatisticsStore, Any] | None:
        """A (store, handle) over a peer's published image, or None."""
        from repro.stats.flatpack import store_from_image

        plane = self._plane
        try:
            handle = plane.try_attach(plane.store_key(path))
            if handle is None:
                return None
            store = store_from_image(handle.meta, handle.arrays())
        except (OSError, DatasetError):
            return None
        if store.manifest.generation < min_generation:
            handle.close()
            return None
        return store, handle

    def _publish_image(
        self, path: Path, store: StatisticsStore
    ) -> tuple[StatisticsStore, Any]:
        """Publish a refreshed in-memory store; serve the shared copy.

        Sibling processes refreshing the same tenant then attach instead
        of replaying; on plane failure the private store serves as-is.
        """
        from repro.stats.flatpack import store_from_image, store_to_image

        plane = self._plane
        try:
            meta, arrays, handle = plane.acquire(
                plane.store_key(path), lambda: store_to_image(store)
            )
            return store_from_image(meta, arrays), handle
        except (OSError, DatasetError):
            return store, None

    # ------------------------------------------------------------------
    # Shared-segment lifecycle (worker fleet hooks)
    # ------------------------------------------------------------------
    def reattach_shared(self) -> None:
        """Register this process on every inherited segment (post-fork).

        A forked worker inherits the supervisor's mappings but not its
        refcount registration; each worker must count as its own user so
        the segment survives the supervisor or any sibling exiting.
        """
        for entry in self._tenants.values():
            if entry.shm is not None:
                entry.shm.reattach()

    def release_shared(self) -> None:
        """Deregister every segment; the last process out unlinks them."""
        for entry in self._tenants.values():
            if entry.shm is not None:
                entry.shm.close()

    def plane_stats(self) -> dict[str, Any] | None:
        """The shared plane's publish/attach counters, or None."""
        return self._plane.stats() if self._plane is not None else None

    def _publish(self, name: str, entry: TenantEntry) -> None:
        old = self._tenants.get(name)
        # Replace the whole dict so readers only ever see a fully
        # consistent mapping (dict reads are atomic under the GIL, but
        # swapping the reference keeps the invariant obvious).
        tenants = dict(self._tenants)
        tenants[name] = entry
        self._tenants = tenants
        if old is not None and old.shm is not None and old.shm is not entry.shm:
            # Deregister this process from the replaced generation's
            # segment.  The mapping itself stays valid for in-flight
            # requests (an unlinked tmpfs file lives until the last map
            # closes); only the /dev/shm name is allowed to disappear.
            old.shm.close()
