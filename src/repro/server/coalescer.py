"""Single-flight coalescing of identical in-flight computations.

When N concurrent requests ask for the same (tenant, canonical shape,
estimator config) — the signature pattern of a popular query template
going cold after a deploy or reload — the session LRUs alone cannot
help: all N miss, and all N rebuild the same CEG.  A
:class:`SingleFlight` collapses them: the first caller of a key becomes
the **leader** and runs the computation; every caller that arrives while
it is still in flight becomes a **follower** and waits for the leader's
result instead of recomputing.  The key is dropped the moment the
computation finishes, so results are never cached here — that is the
session LRU's job; single-flight only deduplicates *concurrent* work.

Failures are shared too: a leader's exception is re-raised in every
follower (the same exception object — estimator errors are immutable
messages, so sharing is safe) and is never remembered, so the next
arrival after a failure retries as a fresh leader.

The implementation is thread-based (a mutex plus one ``Event`` per
in-flight call) so it slots under any executor: the asyncio server runs
leaders and followers on its worker thread pool, and plain
multi-threaded code can use it directly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Hashable, TypeVar

__all__ = ["CoalescerStats", "FlightOutcome", "SingleFlight"]

T = TypeVar("T")


@dataclass(frozen=True)
class CoalescerStats:
    """Point-in-time counters of one :class:`SingleFlight`."""

    leaders: int
    followers: int
    in_flight: int

    @property
    def calls(self) -> int:
        """Total :meth:`SingleFlight.do` invocations."""
        return self.leaders + self.followers

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly representation (used by the ``stats`` verb)."""
        return {
            "leaders": self.leaders,
            "followers": self.followers,
            "calls": self.calls,
            "in_flight": self.in_flight,
        }


@dataclass(frozen=True)
class FlightOutcome:
    """What one :meth:`SingleFlight.run` caller got, and how.

    ``shared_ref`` is whatever reference the leader published while
    computing (the serving stack publishes its CEG-build *span*
    reference, so follower traces point at the leader's work instead of
    fabricating a build span of their own); ``wait_seconds`` is how
    long a follower blocked on the leader (0.0 for the leader itself).
    """

    value: Any
    leader: bool
    wait_seconds: float = 0.0
    shared_ref: str | None = None


class _Call:
    """Shared state of one in-flight computation."""

    __slots__ = ("done", "value", "error", "ref")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None
        #: Leader-published reference followers read after ``done`` —
        #: written before the event is set, so the read is ordered.
        self.ref: str | None = None


class SingleFlight:
    """Per-key deduplication of concurrent identical computations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _Call] = {}
        self._leaders = 0
        self._followers = 0

    def do(self, key: Hashable, fn: Callable[[], T]) -> T:
        """Run ``fn`` once per key among all concurrent callers.

        Exactly one concurrent caller per key executes ``fn``; the rest
        block until it finishes and receive the same result (or the
        same raised exception).
        """
        return self.run(key, lambda publish_ref: fn()).value

    def run(
        self, key: Hashable, fn: Callable[[Callable[[str], None]], T]
    ) -> FlightOutcome:
        """Like :meth:`do`, but reporting *how* the value was obtained.

        ``fn`` receives a ``publish_ref(ref)`` callable: the leader may
        call it (any time before it returns) to attach an opaque
        reference to the in-flight computation, which every follower
        gets back as :attr:`FlightOutcome.shared_ref`.  Followers never
        run ``fn``.
        """
        with self._lock:
            call = self._inflight.get(key)
            if call is None:
                call = _Call()
                self._inflight[key] = call
                self._leaders += 1
                is_leader = True
            else:
                self._followers += 1
                is_leader = False
        if not is_leader:
            waited = time.perf_counter()
            call.done.wait()
            waited = time.perf_counter() - waited
            if call.error is not None:
                raise call.error
            return FlightOutcome(
                call.value,
                leader=False,
                wait_seconds=waited,
                shared_ref=call.ref,
            )

        def publish_ref(ref: str) -> None:
            call.ref = ref

        try:
            call.value = fn(publish_ref)
        except BaseException as error:
            call.error = error
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            call.done.set()
        return FlightOutcome(call.value, leader=True, shared_ref=call.ref)

    def stats(self) -> CoalescerStats:
        """Snapshot the leader/follower counters."""
        with self._lock:
            return CoalescerStats(
                leaders=self._leaders,
                followers=self._followers,
                in_flight=len(self._inflight),
            )
