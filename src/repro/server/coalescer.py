"""Single-flight coalescing of identical in-flight computations.

When N concurrent requests ask for the same (tenant, canonical shape,
estimator config) — the signature pattern of a popular query template
going cold after a deploy or reload — the session LRUs alone cannot
help: all N miss, and all N rebuild the same CEG.  A
:class:`SingleFlight` collapses them: the first caller of a key becomes
the **leader** and runs the computation; every caller that arrives while
it is still in flight becomes a **follower** and waits for the leader's
result instead of recomputing.  The key is dropped the moment the
computation finishes, so results are never cached here — that is the
session LRU's job; single-flight only deduplicates *concurrent* work.

Failures are shared too: a leader's exception is re-raised in every
follower (the same exception object — estimator errors are immutable
messages, so sharing is safe) and is never remembered, so the next
arrival after a failure retries as a fresh leader.

The implementation is thread-based (a mutex plus one ``Event`` per
in-flight call) so it slots under any executor: the asyncio server runs
leaders and followers on its worker thread pool, and plain
multi-threaded code can use it directly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Hashable, TypeVar

__all__ = ["CoalescerStats", "SingleFlight"]

T = TypeVar("T")


@dataclass(frozen=True)
class CoalescerStats:
    """Point-in-time counters of one :class:`SingleFlight`."""

    leaders: int
    followers: int
    in_flight: int

    @property
    def calls(self) -> int:
        """Total :meth:`SingleFlight.do` invocations."""
        return self.leaders + self.followers

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly representation (used by the ``stats`` verb)."""
        return {
            "leaders": self.leaders,
            "followers": self.followers,
            "calls": self.calls,
            "in_flight": self.in_flight,
        }


class _Call:
    """Shared state of one in-flight computation."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class SingleFlight:
    """Per-key deduplication of concurrent identical computations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _Call] = {}
        self._leaders = 0
        self._followers = 0

    def do(self, key: Hashable, fn: Callable[[], T]) -> T:
        """Run ``fn`` once per key among all concurrent callers.

        Exactly one concurrent caller per key executes ``fn``; the rest
        block until it finishes and receive the same result (or the
        same raised exception).
        """
        with self._lock:
            call = self._inflight.get(key)
            if call is None:
                call = _Call()
                self._inflight[key] = call
                self._leaders += 1
                is_leader = True
            else:
                self._followers += 1
                is_leader = False
        if not is_leader:
            call.done.wait()
            if call.error is not None:
                raise call.error
            return call.value
        try:
            call.value = fn()
        except BaseException as error:
            call.error = error
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            call.done.set()
        return call.value

    def stats(self) -> CoalescerStats:
        """Snapshot the leader/follower counters."""
        with self._lock:
            return CoalescerStats(
                leaders=self._leaders,
                followers=self._followers,
                in_flight=len(self._inflight),
            )
