"""Multi-process worker fleet: N estimation servers behind one port.

The single-process server computes estimates on a thread pool, so CEG
builds and NumPy joins all contend on one GIL.  The fleet splits that
across N forked worker processes — the Polynesia-style separation of the
update-propagation plane (the delta subsystem, which keeps writing
artifacts on disk) from a set of isolated read-only analytics engines:

.. code-block:: text

        FleetSupervisor (parent)
          │  loads StoreRegistry once, binds every listening socket,
          │  then fork()s — workers inherit artifact pages copy-on-write
          │  and their pre-bound sockets, so the fleet map is static.
          │
          ├── worker 0: EstimationServer ── shared port (SO_REUSEPORT)
          │                              └─ direct port 0 (tenant affinity)
          ├── worker 1: EstimationServer ── shared port (SO_REUSEPORT)
          │                              └─ direct port 1
          └── ...                                   ▲
                   peers fan control verbs ─────────┘

**Shared port.**  Every worker holds its own ``SO_REUSEPORT`` listening
socket on the public ``host:port``; the kernel spreads incoming
connections across the group, so any client of the old single-process
address keeps working unchanged.  Where ``SO_REUSEPORT`` is unavailable
the supervisor binds one listener before forking and every worker
accepts on the inherited fd (the classic pre-fork fallback).

**Direct ports.**  Each worker additionally listens on its own
kernel-assigned port, bound *before* the fork so the fleet map never
changes at runtime.  :class:`~repro.server.client.FleetClient` uses the
map to send each tenant's estimates to the worker that owns it under the
consistent-hash assignment (shape caches warm once, not N times), and
workers use it to fan ``reload``/``apply_deltas``/``shutdown``/``stats``
out to their peers.

**Zero-copy statistics.**  The registry — every tenant's NPZ-backed
arrays — is loaded exactly once, in the supervisor, before any fork.
Workers never write to store pages (serving is read-only; hot reloads
build *new* pages), so Linux copy-on-write keeps one physical copy of
the artifact shared by all N workers: per-worker unique RSS stays near
flat as N grows (the load benchmark measures this via
``/proc/<pid>/smaps_rollup``).

**Supervision.**  The supervisor's only job after the fork is
``waitpid``: a worker that exits non-zero is restarted with bounded
exponential backoff on the *same* inherited sockets — the listening fds
(and any backlog queued on them while the worker was dead) survive in
the supervisor, so a crash loses in-flight requests at most once, typed
as transients, never silently.  A restarted worker calls
:meth:`~repro.server.registry.StoreRegistry.refresh_if_stale` per tenant
before accepting, catching its fork-time registry snapshot up with delta
batches its peers already absorbed.  Workers exiting 0 (the ``shutdown``
verb, or a SIGTERM drain) are not restarted.
"""

from __future__ import annotations

import bisect
import errno
import gc
import hashlib
import json
import os
import select
import signal
import socket
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.server.registry import StoreRegistry
from repro.server.server import EstimationServer, ServerConfig

__all__ = [
    "FleetMember",
    "FleetContext",
    "FleetSupervisor",
    "assign_tenants",
]

#: Virtual nodes per worker on the consistent-hash ring; enough that
#: tenant load spreads evenly even for small fleets.
RING_VNODES = 64

#: Worker crash-restart backoff bounds (seconds); doubles per crash,
#: resets once a worker survives ``BACKOFF_RESET_SECONDS``.
BACKOFF_INITIAL = 0.1
BACKOFF_CAP = 5.0
BACKOFF_RESET_SECONDS = 30.0


def _ring_hash(key: str) -> int:
    """Position of ``key`` on the ring (stable across processes/runs).

    ``hash()`` is salted per interpreter, so the ring uses sha1 — every
    worker, the supervisor, and any client computing the assignment
    independently must land on identical positions.
    """
    return int.from_bytes(hashlib.sha1(key.encode()).digest()[:8], "big")


def assign_tenants(tenants: list[str], workers: int) -> dict[str, int]:
    """Consistent-hash tenant → worker-index assignment.

    Each worker owns :data:`RING_VNODES` points on a hash ring; a tenant
    maps to the worker owning the first point clockwise of its own hash.
    Stable by construction: adding or removing one worker moves only the
    tenants whose arcs it owned, so cache locality survives a resize.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    ring = sorted(
        (_ring_hash(f"worker-{index}#{vnode}"), index)
        for index in range(workers)
        for vnode in range(RING_VNODES)
    )
    positions = [position for position, _index in ring]
    assignment: dict[str, int] = {}
    for tenant in tenants:
        spot = bisect.bisect_right(positions, _ring_hash(f"tenant-{tenant}"))
        assignment[tenant] = ring[spot % len(ring)][1]
    return assignment


@dataclass(frozen=True)
class FleetMember:
    """One worker's public identity in the static fleet map."""

    index: int
    direct_port: int


@dataclass(frozen=True)
class FleetContext:
    """What one worker knows about the fleet it belongs to.

    Passed to :class:`~repro.server.server.EstimationServer` to switch it
    into fleet mode: ``members`` is index-ordered (``members[index]`` is
    this worker), ``assignment`` the consistent-hash tenant map, and
    ``port`` the shared public port.
    """

    index: int
    host: str
    port: int
    members: tuple[FleetMember, ...]
    assignment: dict[str, int]


class _Child:
    """Supervisor-side state of one worker slot."""

    def __init__(self, index: int):
        self.index = index
        self.pid: int | None = None
        self.spawned_at = 0.0
        self.backoff = BACKOFF_INITIAL


class FleetSupervisor:
    """Forks, monitors, and restarts N estimation-server workers.

    The registry must be fully loaded *before* :meth:`start` — that is
    the copy-on-write sharing contract (see the module docstring).  The
    supervisor itself never starts an event loop, thread pool, or
    client: a process that owns only sockets and pipes is safe to fork
    from repeatedly.

    ``emit`` receives one JSON-friendly dict per lifecycle event
    (``ready``, ``worker-exited``, ``worker-started``, ``stopped``);
    the default prints NDJSON to stdout for wrappers like CI and the
    load benchmark.  stderr stays silent in normal operation.
    """

    def __init__(
        self,
        registry: StoreRegistry,
        config: ServerConfig,
        workers: int,
        emit: Callable[[dict[str, Any]], None] | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.registry = registry
        self.config = config
        self.workers = workers
        self.emit = emit if emit is not None else self._emit_stdout
        self.host = config.host
        self.port: int | None = None
        self.reuseport: bool | None = None
        self.assignment: dict[str, int] = {}
        self._shared_sockets: list[socket.socket] = []
        self._direct_sockets: list[socket.socket] = []
        self._children: dict[int, _Child] = {}
        self._stopping = False
        self._started = False

    @staticmethod
    def _emit_stdout(event: dict[str, Any]) -> None:
        print(json.dumps(event), flush=True)

    # ------------------------------------------------------------------
    # Socket plumbing (all binding happens pre-fork)
    # ------------------------------------------------------------------
    def _bind_listener(self, port: int, reuseport: bool) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if reuseport:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, port))
            sock.listen(128)
        except BaseException:
            sock.close()
            raise
        return sock

    def _bind_sockets(self) -> None:
        """Bind the shared-port group and every worker's direct port."""
        try:
            first = self._bind_listener(self.config.port, reuseport=True)
            self.reuseport = True
            self._shared_sockets.append(first)
            self.port = first.getsockname()[1]
            for _ in range(1, self.workers):
                self._shared_sockets.append(
                    self._bind_listener(self.port, reuseport=True)
                )
        except (AttributeError, OSError):
            # No SO_REUSEPORT (or the kernel refused the group): fall
            # back to one listener bound pre-fork whose fd every worker
            # inherits and accepts on.
            for sock in self._shared_sockets:
                sock.close()
            self._shared_sockets = []
            self.reuseport = False
            shared = self._bind_listener(self.config.port, reuseport=False)
            self.port = shared.getsockname()[1]
            self._shared_sockets = [shared] * self.workers
        for _ in range(self.workers):
            self._direct_sockets.append(self._bind_listener(0, reuseport=False))

    def _context_for(self, index: int) -> FleetContext:
        assert self.port is not None
        members = tuple(
            FleetMember(
                index=position, direct_port=sock.getsockname()[1]
            )
            for position, sock in enumerate(self._direct_sockets)
        )
        return FleetContext(
            index=index,
            host=self.host,
            port=self.port,
            members=members,
            assignment=dict(self.assignment),
        )

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------
    def _spawn(self, child: _Child) -> dict[str, Any]:
        """Fork one worker and wait for its ready handshake."""
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Worker child: never return into the supervisor's stack.
            status = 1
            try:
                os.close(read_fd)
                status = self._worker_main(child.index, write_fd)
            except BaseException:  # noqa: BLE001 - child must not unwind
                status = 1
            finally:
                os._exit(status)
        os.close(write_fd)
        child.pid = pid
        child.spawned_at = time.monotonic()
        try:
            ready = self._await_handshake(read_fd, pid)
        finally:
            os.close(read_fd)
        return ready

    def _await_handshake(self, read_fd: int, pid: int) -> dict[str, Any]:
        deadline = time.monotonic() + 30.0
        buffer = b""
        while b"\n" not in buffer:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                os.kill(pid, signal.SIGKILL)
                raise RuntimeError(
                    f"fleet worker pid {pid} did not become ready in 30s"
                )
            readable, _, _ = select.select([read_fd], [], [], remaining)
            if not readable:
                continue
            chunk = os.read(read_fd, 4096)
            if not chunk:
                raise RuntimeError(
                    f"fleet worker pid {pid} exited before becoming ready"
                )
            buffer += chunk
        return json.loads(buffer.split(b"\n", 1)[0])

    def _worker_main(self, index: int, ready_fd: int) -> int:
        """Child-process body: serve on the inherited sockets until drain."""
        import asyncio

        # A worker interleaves CPU-bound estimator threads with the
        # event loop under one GIL; the default 5 ms switch interval
        # lets one estimate starve accepts/writes for milliseconds at a
        # time, which is exactly the serving tail.  Finer-grained
        # switching trades a sliver of throughput for p99.
        sys.setswitchinterval(0.001)
        # The supervisor's handlers (signal forwarding) must not run in
        # a worker — before the loop installs its own drain handlers, a
        # stray signal gets the default disposition instead.
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, signal.SIG_DFL)
        # The fleet map reads ports off the supervisor's sockets, so
        # capture it before dropping the listening fds that belong to
        # other workers (the supervisor alone keeps spares alive for
        # restarts).
        context = self._context_for(index)
        own_shared = self._shared_sockets[index]
        own_direct = self._direct_sockets[index]
        for position, sock in enumerate(self._shared_sockets):
            if position != index and sock is not own_shared:
                sock.close()
        for position, sock in enumerate(self._direct_sockets):
            if position != index:
                sock.close()
        # Count this worker as its own user of every inherited shared
        # segment (fork copies the mapping, not the registration) —
        # before refresh_if_stale, which may attach/publish segments of
        # its own.  A restarted worker's refresh attaches the *live*
        # image its peers already published rather than re-parsing.
        self.registry.reattach_shared()
        # A restarted worker inherits the registry as of the original
        # fork; catch up with any delta batches applied on disk since.
        # Failures here are survivable: the worker serves its fork-time
        # snapshot and a fleet-wide apply_deltas can still converge it.
        for name in self.registry.names():
            try:
                self.registry.refresh_if_stale(name)
            except Exception:  # noqa: BLE001
                pass
        server = EstimationServer(self.registry, self.config, fleet=context)

        async def main() -> None:
            await server.start(sockets=[own_shared, own_direct])
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, server.request_shutdown)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass
            os.write(
                ready_fd,
                json.dumps(
                    {
                        "index": index,
                        "pid": os.getpid(),
                        "direct_port": context.members[index].direct_port,
                    }
                ).encode() + b"\n",
            )
            os.close(ready_fd)
            await server.run_until_shutdown()

        try:
            asyncio.run(main())
        finally:
            # Deregister from every shared segment on the way out so the
            # last process of the fleet unlinks them (no /dev/shm leak).
            self.registry.release_shared()
        return 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> dict[str, Any]:
        """Bind, assign, fork the fleet; returns (and emits) the ready event."""
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        self._bind_sockets()
        self.assignment = assign_tenants(self.registry.names(), self.workers)
        # The pre-fork heap (statistics artifacts, registry, code) is
        # immortal for the life of every worker.  Freezing it moves
        # those objects out of the cyclic collector's generations, so a
        # worker's gen-2 collections never traverse the multi-MB shared
        # heap mid-request (observed as ~150 ms serving stalls) and
        # never dirty its copy-on-write pages by relinking GC headers.
        gc.collect()
        gc.freeze()
        workers = []
        for index in range(self.workers):
            child = _Child(index)
            self._children[index] = child
            workers.append(self._spawn(child))
        ready = {
            "event": "ready",
            "host": self.host,
            "port": self.port,
            "reuseport": self.reuseport,
            "tenants": self.registry.names(),
            "assignment": dict(self.assignment),
            "workers": workers,
        }
        self.emit(ready)
        return ready

    def _forward_signal(self, signum: int, _frame: Any) -> None:
        self._stopping = True
        for child in self._children.values():
            if child.pid is not None:
                try:
                    os.kill(child.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass

    def stop(self) -> None:
        """Ask every worker to drain (callable from any thread/handler)."""
        self._forward_signal(signal.SIGTERM, None)

    def run(self) -> int:
        """Supervise until the fleet drains; returns a process exit code.

        Installs SIGTERM/SIGINT handlers that forward the signal to
        every worker, then reaps children: exit 0 means a deliberate
        drain (``shutdown`` verb fan-out or signal) and retires the
        slot; any other exit is a crash and the slot is re-forked after
        a bounded backoff on the same sockets.
        """
        previous = {
            signum: signal.signal(signum, self._forward_signal)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        exit_code = 0
        try:
            while self._children:
                try:
                    pid, status = os.waitpid(-1, 0)
                except ChildProcessError:
                    break
                except OSError as error:  # pragma: no cover - EINTR guard
                    if error.errno == errno.EINTR:
                        continue
                    raise
                child = next(
                    (c for c in self._children.values() if c.pid == pid), None
                )
                if child is None:
                    continue
                code = (
                    os.waitstatus_to_exitcode(status)
                    if hasattr(os, "waitstatus_to_exitcode")
                    else os.WEXITSTATUS(status)
                )
                self.emit(
                    {
                        "event": "worker-exited",
                        "index": child.index,
                        "pid": pid,
                        "exitcode": code,
                    }
                )
                if code == 0 or self._stopping:
                    # Deliberate drain; a shutdown verb fans to every
                    # worker, so the siblings are draining too.
                    del self._children[child.index]
                    if code not in (0, -signal.SIGTERM):
                        exit_code = 1
                    continue
                alive_for = time.monotonic() - child.spawned_at
                if alive_for >= BACKOFF_RESET_SECONDS:
                    child.backoff = BACKOFF_INITIAL
                time.sleep(child.backoff)
                child.backoff = min(child.backoff * 2, BACKOFF_CAP)
                try:
                    started = self._spawn(child)
                except RuntimeError as error:
                    print(f"repro serve: {error}", file=sys.stderr)
                    del self._children[child.index]
                    exit_code = 1
                    continue
                self.emit({"event": "worker-started", **started})
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self._close_sockets()
            # The supervisor is usually the last registrant standing;
            # releasing here unlinks every surviving shared segment.
            self.registry.release_shared()
        self.emit({"event": "stopped"})
        return exit_code

    def _close_sockets(self) -> None:
        for sock in {id(s): s for s in self._shared_sockets}.values():
            sock.close()
        for sock in self._direct_sockets:
            sock.close()
