"""The asyncio estimation server: admission control over a store registry.

Architecture (one process, one event loop)::

      TCP clients ──NDJSON──▶ asyncio loop ──▶ admission control
                                                 │  bounded in-flight +
                                                 │  queue, per-request
                                                 │  deadline, shedding
                                                 ▼
                                          single-flight coalescer
                                                 │  (tenant, generation,
                                                 │   shape, spec)
                                                 ▼
                                     worker threads ──▶ EstimationSession
                                                        (per tenant, from
                                                         StoreRegistry)

    The loop only parses lines and routes; estimation is CPU-bound
    synchronous code and runs on a small thread pool.  Admission is
    enforced *before* the pool: at most ``max_inflight`` requests
    compute concurrently, at most ``queue_limit`` more wait, and
    anything beyond that is shed immediately with the ``overloaded``
    error code instead of queueing unboundedly.  Every estimate request
    carries a deadline (its own ``deadline_ms`` or the server default)
    that covers queue time too, so a request that would have waited past
    its deadline under load turns into ``deadline_exceeded`` rather than
    a zombie.

Responses are bit-identical to in-process
:meth:`~repro.service.session.EstimationSession.estimate_batch` floats:
the session computes from the canonical pattern and JSON round-trips
doubles exactly (see :mod:`repro.server.protocol`).  Hot-reloading a
tenant (the ``reload`` verb) swaps its registry entry atomically;
requests admitted before the swap finish on the old session, requests
after it use the new one — nothing in between can observe a torn state.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import socket as socket_module
import threading
import time
from collections import Counter
from datetime import datetime, timezone
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import DatasetError, ReproError
from repro.obs import (
    LATENCY_BUCKETS_MS,
    AuditProbe,
    MetricsRegistry,
    NdjsonSink,
    RequestTrace,
    Telemetry,
    merge_expositions,
    quantile_from_buckets,
)
from repro.query.canonical import canonical_key
from repro.query.parser import parse_pattern
from repro.query.pattern import QueryPattern
from repro.server import protocol
from repro.server.client import EstimationClient
from repro.server.coalescer import SingleFlight
from repro.server.protocol import ProtocolError, Request
from repro.server.registry import StoreRegistry, TenantEntry
from repro.service.session import EstimatorSpec
from repro.stats.store import parse_count as stats_parse_count

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.fleet import FleetContext

__all__ = [
    "ServerConfig",
    "EstimationServer",
    "ThreadedServer",
    "LATENCY_BUCKETS_MS",
]


def _server_version() -> str:
    """The package version (resolved lazily to dodge the import cycle)."""
    import repro

    return getattr(repro, "__version__", "0")


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`EstimationServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; read it back from ``address``
    max_inflight: int = 8
    queue_limit: int = 64
    default_deadline_ms: float = 30_000.0
    #: Seconds :meth:`EstimationServer.stop` waits for admitted requests
    #: to drain before force-closing connections.
    shutdown_grace_seconds: float = 10.0
    #: Master telemetry switch: False drops request tracing, the trace
    #: log, slow-query capture and the audit probe (the bench baseline).
    #: The metrics registry itself stays on — it replaces the server's
    #: request accounting, so the stats/metrics verbs always work.
    telemetry: bool = True
    #: NDJSON sink for trace + slow-query records (None = no sink).
    trace_log: str | None = None
    trace_log_max_bytes: int = 32 * 1024 * 1024
    #: Requests slower than this are captured in the slow-query log
    #: (default 500 ms — ~200× the fleet's warm p50, so it fires on
    #: genuine outliers, not on every cold CEG build).  0 disables the
    #: slow-query log entirely.
    slow_query_ms: float = 500.0
    #: Rotated trace-log generations kept on disk (``<path>.1`` ..
    #: ``<path>.N``; the oldest is discarded on each rotation).
    trace_log_keep: int = 1
    #: Fraction of served estimates re-run against WanderJoin ground
    #: truth by the background audit probe (0 disables it).
    audit_rate: float = 0.0
    #: Restrict auditing to one reference tenant (None audits any
    #: tenant whose manifest names a loadable dataset).
    audit_tenant: str | None = None
    #: WanderJoin walk budget as a fraction of the start relation.
    audit_walk_ratio: float = 0.05

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be positive")
        if self.slow_query_ms < 0:
            raise ValueError("slow_query_ms must be >= 0 (0 disables)")
        if self.trace_log_keep < 1:
            raise ValueError("trace_log_keep must be >= 1")
        if not 0.0 <= self.audit_rate <= 1.0:
            raise ValueError("audit_rate must be within [0, 1]")
        if self.trace_log_max_bytes < 4096:
            raise ValueError("trace_log_max_bytes must be >= 4096")


class EstimationServer:
    """One serving process: registry + coalescer + admission control.

    In fleet mode (``fleet`` is a
    :class:`~repro.server.fleet.FleetContext`), the process is one of N
    workers sharing the public port: it accepts on pre-bound inherited
    sockets, answers the ``fleet`` verb with the worker topology, and
    fans non-``scope=local`` control verbs (``stats``/``reload``/
    ``apply_deltas``/``shutdown``) out to its peers' direct ports so a
    client talking to *any* worker drives the whole fleet.
    """

    def __init__(
        self,
        registry: StoreRegistry,
        config: ServerConfig | None = None,
        fleet: "FleetContext | None" = None,
    ):
        self.registry = registry
        self.config = config or ServerConfig()
        self.fleet = fleet
        self.coalescer = SingleFlight()
        # One spare worker beyond the admission cap so ``reload`` (which
        # does disk I/O on the pool) cannot starve behind estimates; in
        # fleet mode, enough extra spares that a full control fan-out to
        # every peer can never starve behind estimates either.
        spares = 1 + (len(fleet.members) if fleet is not None else 0)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_inflight + spares,
            thread_name_prefix="repro-serve",
        )
        self._semaphore: asyncio.Semaphore | None = None
        self._servers: list[asyncio.AbstractServer] = []
        self._shutdown_event: asyncio.Event | None = None
        self._pending_shutdown = False
        self._draining = False
        self._started_at = 0.0
        # Admission counters; all mutated on the event loop thread only.
        self._admitted = 0
        self._running = 0
        self._abandoned = 0
        self._shed_total = 0
        self._deadline_total = 0
        self._started_unix = 0.0
        self._started_at_iso: str | None = None
        self.telemetry = self._build_telemetry()
        self._writers: set[asyncio.StreamWriter] = set()
        # Writers with a request currently inside ``_dispatch`` — the
        # connections that must see a typed ``shutting_down`` error (not
        # a bare reset) if the shutdown grace window expires on them.
        self._busy_writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Telemetry wiring
    # ------------------------------------------------------------------
    def _build_telemetry(self) -> Telemetry:
        """The per-process telemetry bundle + callback-sourced metrics.

        Built in ``__init__`` — which fleet workers run *post-fork* —
        so every process opens its own trace-log fd and owns its own
        registry.  Counters owned elsewhere (coalescer, artifact plane,
        admission state) export through render-time callbacks instead
        of double accounting.
        """
        config = self.config
        sink = (
            NdjsonSink(
                config.trace_log,
                config.trace_log_max_bytes,
                keep=config.trace_log_keep,
            )
            if config.telemetry and config.trace_log
            else None
        )
        registry = MetricsRegistry()
        audit = None
        if config.telemetry and config.audit_rate > 0.0:
            audit = AuditProbe(
                registry,
                self._audit_graph,
                rate=config.audit_rate,
                tenant=config.audit_tenant,
                walk_ratio=config.audit_walk_ratio,
                sink=sink,
            )
        telemetry = Telemetry(
            registry=registry,
            sink=sink,
            slow_query_ms=config.slow_query_ms,
            audit=audit,
            enabled=config.telemetry,
            worker_index=self.fleet.index if self.fleet else None,
        )
        self._tenant_requests = registry.counter(
            "repro_tenant_requests_total",
            "Estimate requests per tenant.",
            labels=("tenant",),
        )
        self._tenant_ok = registry.counter(
            "repro_tenant_ok_total",
            "Served estimate responses per tenant.",
            labels=("tenant",),
        )
        self._tenant_errors = registry.counter(
            "repro_tenant_errors_total",
            "Failed estimate responses per tenant, by wire error code.",
            labels=("tenant", "code"),
        )
        self._tenant_estimator_errors = registry.counter(
            "repro_tenant_estimator_errors_total",
            "Served responses carrying at least one per-estimator error.",
            labels=("tenant",),
        )
        self._tenant_reloads = registry.counter(
            "repro_tenant_reloads_total",
            "Successful hot reloads per tenant.",
            labels=("tenant",),
        )
        self._tenant_delta_refreshes = registry.counter(
            "repro_tenant_delta_refreshes_total",
            "Successful apply_deltas refreshes per tenant.",
            labels=("tenant",),
        )
        registry.counter(
            "repro_coalescer_leaders_total",
            "Single-flight computations run (leaders).",
            callback=lambda: self.coalescer.stats().leaders,
        )
        registry.counter(
            "repro_coalescer_followers_total",
            "Single-flight callers served by a leader's result.",
            callback=lambda: self.coalescer.stats().followers,
        )
        registry.gauge(
            "repro_coalescer_in_flight",
            "Single-flight keys currently computing.",
            callback=lambda: self.coalescer.stats().in_flight,
        )
        registry.counter(
            "repro_artifact_disk_parses_total",
            "Statistics artifacts parsed from disk in this process.",
            callback=stats_parse_count,
        )
        registry.counter(
            "repro_artifact_plane_publishes_total",
            "Artifact images published to the shared-memory plane.",
            callback=lambda: (self.registry.plane_stats() or {}).get(
                "publishes", 0
            ),
        )
        registry.counter(
            "repro_artifact_plane_attaches_total",
            "Artifact images attached from the shared-memory plane.",
            callback=lambda: (self.registry.plane_stats() or {}).get(
                "attaches", 0
            ),
        )
        registry.counter(
            "repro_artifact_plane_steals_total",
            "Dead builders' claims stolen (crash-safe publish recovery).",
            callback=lambda: (self.registry.plane_stats() or {}).get(
                "steals", 0
            ),
        )
        registry.counter(
            "repro_artifact_plane_prunes_total",
            "Dead pids swept from segment refcount tables.",
            callback=lambda: (self.registry.plane_stats() or {}).get(
                "prunes", 0
            ),
        )
        registry.gauge(
            "repro_artifact_plane_segments",
            "Published shared-memory images currently on this host.",
            callback=lambda: (self.registry.plane_stats() or {}).get(
                "segments", 0
            ),
        )
        registry.gauge(
            "repro_artifact_plane_segment_bytes",
            "Total bytes of the published shared-memory images.",
            callback=lambda: (self.registry.plane_stats() or {}).get(
                "segment_bytes", 0
            ),
        )
        registry.counter(
            "repro_admission_shed_total",
            "Requests shed at the admission capacity limit.",
            callback=lambda: self._shed_total,
        )
        registry.counter(
            "repro_admission_deadline_exceeded_total",
            "Requests that exceeded their deadline (queue time included).",
            callback=lambda: self._deadline_total,
        )
        registry.gauge(
            "repro_admission_admitted",
            "Requests currently admitted (running + queued).",
            callback=lambda: self._admitted,
        )
        registry.gauge(
            "repro_admission_running",
            "Requests currently computing on the thread pool.",
            callback=lambda: self._running,
        )
        registry.gauge(
            "repro_admission_queue_depth",
            "Admitted requests waiting for a pool slot.",
            callback=lambda: max(self._admitted - self._running, 0),
        )
        registry.gauge(
            "repro_admission_abandoned",
            "Deadline-expired requests still holding a pool slot.",
            callback=lambda: self._abandoned,
        )
        registry.gauge(
            "repro_server_info",
            "Constant 1, labelled with the server version.",
            labels=("version",),
            callback=lambda: {(_server_version(),): 1},
        )
        registry.gauge(
            "repro_process_start_time_seconds",
            "Unix time this serving process started.",
            callback=lambda: self._started_unix,
        )
        registry.gauge(
            "repro_uptime_seconds",
            "Seconds since this serving process started.",
            callback=lambda: (
                time.monotonic() - self._started_at if self._started_at else 0.0
            ),
        )
        registry.gauge(
            "repro_generation_age_seconds",
            "Seconds since each tenant's artifact generation was loaded.",
            labels=("tenant",),
            callback=self._generation_ages,
        )
        return telemetry

    def _generation_ages(self) -> dict[tuple[str], float]:
        ages: dict[tuple[str], float] = {}
        for name in self.registry.names():
            entry = self.registry.get(name)
            if entry is not None:
                ages[(name,)] = round(
                    time.monotonic() - entry.loaded_monotonic, 3
                )
        return ages

    def _audit_graph(self, tenant: str):
        """Resolve the audit probe's reference graph for one tenant.

        Runs on the probe thread; raises when the tenant's manifest does
        not name a dataset the preset loader can materialise (the probe
        then disables auditing for that tenant).
        """
        entry = self.registry.get(tenant)
        if entry is None:
            raise DatasetError(f"unknown audit tenant {tenant!r}")
        manifest = entry.store.manifest
        if not manifest.dataset_name:
            raise DatasetError(
                f"tenant {tenant!r} has no dataset_name in its manifest"
            )
        from repro.datasets.presets import load_dataset

        scale = (manifest.build_config or {}).get("scale", 1.0)
        return load_dataset(manifest.dataset_name, float(scale or 1.0))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self, sockets: list[socket_module.socket] | None = None
    ) -> tuple[str, int]:
        """Bind and start accepting connections; returns (host, port).

        ``sockets`` serves on pre-bound listening sockets instead of
        binding ``config.host:port`` — the fleet path, where a worker
        inherits its ``SO_REUSEPORT`` share of the public port plus its
        own direct socket from the supervisor.  One asyncio server is
        started per socket; ``address`` reports the first.
        """
        self._semaphore = asyncio.Semaphore(self.config.max_inflight)
        self._shutdown_event = asyncio.Event()
        if sockets:
            for sock in sockets:
                self._servers.append(
                    await asyncio.start_server(
                        self._handle_connection,
                        sock=sock,
                        limit=protocol.MAX_LINE_BYTES,
                    )
                )
        else:
            self._servers.append(
                await asyncio.start_server(
                    self._handle_connection,
                    host=self.config.host,
                    port=self.config.port,
                    limit=protocol.MAX_LINE_BYTES,
                )
            )
        self._started_at = time.monotonic()
        self._started_unix = time.time()
        self._started_at_iso = datetime.fromtimestamp(
            self._started_unix, tz=timezone.utc
        ).isoformat(timespec="seconds")
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        if not self._servers:
            raise RuntimeError("server is not started")
        name = self._servers[0].sockets[0].getsockname()
        return name[0], name[1]

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (callable from the loop thread)."""
        self._draining = True
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def run_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` verb or :meth:`request_shutdown`."""
        assert self._shutdown_event is not None
        await self._shutdown_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, drain in-flight requests, release the pool."""
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        deadline = time.monotonic() + self.config.shutdown_grace_seconds
        while self._admitted > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if self._admitted > 0:
            # Grace expired with requests still in flight: those clients
            # get the typed ``shutting_down`` error the taxonomy promises
            # (exit 3, retryable) rather than a bare connection reset.
            expiry_line = protocol.encode_line(
                protocol.error_response(
                    None,
                    protocol.SHUTTING_DOWN,
                    "server shutdown grace period "
                    f"({self.config.shutdown_grace_seconds:g}s) expired "
                    "before the request finished; retry elsewhere",
                )
            )
            for writer in list(self._busy_writers):
                with contextlib.suppress(Exception):
                    writer.write(expiry_line)
            for writer in list(self._busy_writers):
                with contextlib.suppress(Exception):
                    await asyncio.wait_for(writer.drain(), timeout=1.0)
        for writer in list(self._writers):
            writer.close()
        # Let the connection handlers observe EOF and unwind before the
        # loop closes, so shutdown never logs spurious cancellations.
        pending = [task for task in self._conn_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=1.0)
        self._executor.shutdown(wait=True, cancel_futures=True)
        self.telemetry.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the stream limit: answer once, drop
                    # the connection (framing is lost beyond this point).
                    writer.write(
                        protocol.encode_line(
                            protocol.error_response(
                                None,
                                protocol.INVALID_REQUEST,
                                "request line exceeds "
                                f"{protocol.MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self._busy_writers.add(writer)
                try:
                    response = await self._dispatch(line)
                finally:
                    self._busy_writers.discard(writer)
                writer.write(protocol.encode_line(response))
                await writer.drain()
                if self._pending_shutdown:
                    # The shutdown response is on the wire; now wake the
                    # serve loop so it can drain and exit cleanly.
                    self._pending_shutdown = False
                    self.request_shutdown()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        started = time.perf_counter()
        telemetry = self.telemetry
        try:
            request = protocol.parse_request(line)
        except ProtocolError as error:
            telemetry.requests_total.inc(verb="_unparsed")
            return protocol.error_response(None, error.code, error.message)
        telemetry.requests_total.inc(verb=request.verb)
        trace = telemetry.begin(request.verb, request.tenant, request.trace_id)
        fan_wide = self.fleet is not None and not request.local
        try:
            if request.verb == "ping":
                response = protocol.ok_response(
                    request.id,
                    {"pong": True, "tenants": self.registry.names()},
                )
            elif request.verb == "fleet":
                response = protocol.ok_response(
                    request.id, self.fleet_result()
                )
            elif request.verb == "stats":
                if fan_wide:
                    response = await self._fan_out(request, trace)
                else:
                    response = protocol.ok_response(
                        request.id, self.stats_result()
                    )
            elif request.verb == "metrics":
                if fan_wide:
                    response = await self._fan_out(request, trace)
                else:
                    response = protocol.ok_response(
                        request.id, self.metrics_result()
                    )
            elif request.verb == "shutdown":
                if fan_wide:
                    response = await self._fan_out(request, trace)
                else:
                    self._draining = True
                    self._pending_shutdown = True
                    response = protocol.ok_response(
                        request.id, {"shutting_down": True}
                    )
            elif request.verb == "reload":
                if fan_wide:
                    response = await self._fan_out(request, trace)
                else:
                    response = await self._handle_reload(request)
            elif request.verb == "apply_deltas":
                if fan_wide:
                    response = await self._fan_out(request, trace)
                else:
                    response = await self._handle_apply_deltas(request)
            else:
                response = await self._handle_estimate(request, trace)
        except ProtocolError as error:
            response = protocol.error_response(
                request.id, error.code, error.message
            )
        except Exception as error:  # bug guard: never kill the connection
            response = protocol.error_response(
                request.id,
                protocol.INTERNAL_ERROR,
                f"{type(error).__name__}: {error}",
            )
        elapsed = time.perf_counter() - started
        if (
            request.verb == "estimate"
            and request.tenant is not None
            and self.registry.get(request.tenant) is not None
        ):
            self._observe_estimate(request.tenant, response, elapsed)
            if telemetry.audit is not None and response.get("ok"):
                estimates = response["result"].get("estimates") or {}
                if estimates and request.query is not None:
                    telemetry.audit.maybe_sample(
                        request.tenant, request.query, estimates
                    )
        telemetry.finish(trace, bool(response.get("ok")), elapsed)
        return response

    def _observe_estimate(
        self, tenant: str, response: dict[str, Any], seconds: float
    ) -> None:
        """Per-tenant request accounting (event-loop thread only)."""
        self._tenant_requests.inc(tenant=tenant)
        self.telemetry.request_latency.observe(
            seconds * 1000.0, tenant=tenant
        )
        if response.get("ok"):
            self._tenant_ok.inc(tenant=tenant)
            if response["result"].get("errors"):
                self._tenant_estimator_errors.inc(tenant=tenant)
        else:
            self._tenant_errors.inc(
                tenant=tenant, code=response["error"]["code"]
            )

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    async def _handle_estimate(
        self, request: Request, trace: RequestTrace | None = None
    ) -> dict[str, Any]:
        if self._draining:
            raise ProtocolError(
                protocol.SHUTTING_DOWN, "server is shutting down"
            )
        capacity = self.config.max_inflight + self.config.queue_limit
        if self._admitted >= capacity:
            self._shed_total += 1
            raise ProtocolError(
                protocol.OVERLOADED,
                f"server is at capacity ({self._admitted} requests admitted, "
                f"limit {capacity}); retry later",
            )
        deadline_ms = request.deadline_ms or self.config.default_deadline_ms
        self._admitted += 1
        try:
            return await asyncio.wait_for(
                self._estimate_admitted(request, trace),
                timeout=deadline_ms / 1000.0,
            )
        except asyncio.TimeoutError:
            self._deadline_total += 1
            raise ProtocolError(
                protocol.DEADLINE_EXCEEDED,
                f"request exceeded its {deadline_ms:g} ms deadline "
                "(including queue time)",
            ) from None
        finally:
            self._admitted -= 1

    def _annotate(
        self, result: dict[str, Any], trace: RequestTrace | None
    ) -> dict[str, Any]:
        """Echo the trace id + per-stage timings in a result envelope."""
        if trace is not None:
            result["trace_id"] = trace.trace_id
            result["timings"] = {
                f"{stage}_ms": ms
                for stage, ms in trace.stage_totals().items()
            }
        return result

    async def _estimate_admitted(
        self, request: Request, trace: RequestTrace | None = None
    ) -> dict[str, Any]:
        assert request.tenant is not None and request.query is not None
        started = time.perf_counter()
        entry = self.registry.get(request.tenant)
        if entry is None:
            raise ProtocolError(
                protocol.UNKNOWN_TENANT,
                f"unknown tenant {request.tenant!r}; registered tenants: "
                f"{self.registry.names()}",
            )
        specs: list[EstimatorSpec] = []
        seen: set[str] = set()
        for name in request.estimators:
            try:
                spec = EstimatorSpec.from_name(name)
            except ValueError as error:
                raise ProtocolError(protocol.UNKNOWN_ESTIMATOR, str(error))
            if spec.name not in seen:
                seen.add(spec.name)
                specs.append(spec)
        try:
            pattern = parse_pattern(request.query)
        except ReproError as error:
            raise ProtocolError(
                protocol.MALFORMED_QUERY, f"malformed query: {error}"
            )
        for spec in specs:
            try:
                entry.session.validate_spec(spec)
            except ValueError as error:
                raise ProtocolError(protocol.UNSUPPORTED_SPEC, str(error))
        probe_start = time.perf_counter()
        if trace is not None:
            # ``store_lookup`` covers entry lookup + spec/pattern
            # parsing + validation — everything between admission and
            # the cache probe, so the top-level spans tile the window.
            trace.add_span("store_lookup", started, probe_start - started)
            trace.note(
                shape=str(canonical_key(pattern)),
                estimators=[spec.name for spec in specs],
                generation=entry.generation,
            )
        # Warm fast path: when every requested estimator is already in
        # the tenant's estimate LRU, answer on the event loop without
        # the executor round-trip.  The cached floats are the exact
        # objects a worker thread would return, so responses stay
        # bit-identical; admission and deadline accounting still wrap
        # this call — only the thread hop (and a pool slot) is skipped.
        cached = entry.session.peek_estimates(pattern, specs)
        if trace is not None:
            trace.add_span(
                "cache_probe",
                probe_start,
                time.perf_counter() - probe_start,
            )
        if cached is not None:
            return protocol.ok_response(
                request.id,
                self._annotate(
                    {
                        "tenant": entry.name,
                        "generation": entry.generation,
                        "query": request.query,
                        "estimates": cached,
                        "errors": {},
                        "seconds": time.perf_counter() - started,
                    },
                    trace,
                ),
            )
        assert self._semaphore is not None
        loop = asyncio.get_running_loop()
        queue_start = time.perf_counter()
        await self._semaphore.acquire()
        self._running += 1
        exec_start = time.perf_counter()
        exec_span = None
        if trace is not None:
            trace.add_span("queue", queue_start, exec_start - queue_start)
            # Opened here, closed when the executor round-trip returns;
            # the worker thread parents its count/coalesce spans on it.
            exec_span = trace.add_span("exec", exec_start, 0.0)

        def release_slot() -> None:
            self._running -= 1
            self._semaphore.release()

        def close_exec_span() -> None:
            if exec_span is not None:
                exec_span.ms = (time.perf_counter() - exec_start) * 1000.0

        future = loop.run_in_executor(
            self._executor,
            self._compute,
            entry,
            pattern,
            specs,
            trace,
            exec_span.span_id if exec_span is not None else None,
        )
        try:
            # Shielded so a deadline cancellation reaches *us*, not the
            # executor wrapper: the worker thread cannot be interrupted,
            # and cancelling the wrapper would fire its done-callbacks
            # immediately instead of when the thread actually finishes.
            estimates, errors = await asyncio.shield(future)
        except asyncio.CancelledError:
            close_exec_span()
            if future.done():
                release_slot()
            else:
                # The deadline expired but the thread is still
                # computing: keep its admission slot held until it
                # finishes, so the pool never over-commits and
                # queue_depth stays honest.  `abandoned` makes these
                # zombies visible in the stats verb.
                self._abandoned += 1

                def on_done(done_future: asyncio.Future) -> None:
                    self._abandoned -= 1
                    release_slot()
                    if not done_future.cancelled():
                        done_future.exception()  # consume, never log

                future.add_done_callback(on_done)
            raise
        except BaseException:
            close_exec_span()
            release_slot()  # the computation itself raised; slot is free
            raise
        release_slot()
        close_exec_span()
        return protocol.ok_response(
            request.id,
            self._annotate(
                {
                    "tenant": entry.name,
                    "generation": entry.generation,
                    "query": request.query,
                    "estimates": estimates,
                    "errors": errors,
                    "seconds": time.perf_counter() - started,
                },
                trace,
            ),
        )

    def _compute(
        self,
        entry: TenantEntry,
        pattern: QueryPattern,
        specs: list[EstimatorSpec],
        trace: RequestTrace | None = None,
        exec_ref: str | None = None,
    ) -> tuple[dict[str, float], dict[str, str]]:
        """Worker-thread body: coalesced estimates for every spec.

        The single-flight key pins the tenant *generation*, so work
        started against an old artifact version never coalesces with
        requests served by a hot-reloaded one.  ``estimate_one``
        captures per-query data failures as values, so followers share
        the leader's error string exactly as they share its float.

        With tracing on, a *leader* wraps the engine call in a
        ``count`` span and publishes its reference through the
        coalescer; a *follower* records only a ``coalesce`` wait span
        carrying that shared reference — it never fabricates a build
        span for work it did not do.
        """
        shape = canonical_key(pattern)
        estimates: dict[str, float] = {}
        errors: dict[str, str] = {}
        for spec in specs:
            key = (entry.name, entry.generation, shape, spec.name)
            if trace is None:
                item = self.coalescer.do(
                    key, lambda: entry.session.estimate_one(pattern, spec)
                )
            else:
                wait_start = time.perf_counter()

                def lead(publish_ref, spec=spec):
                    with trace.span(
                        "count", parent=exec_ref, estimator=spec.name
                    ) as span:
                        publish_ref(trace.ref(span))
                        return entry.session.estimate_one(pattern, spec)

                outcome = self.coalescer.run(key, lead)
                item = outcome.value
                if not outcome.leader:
                    trace.add_span(
                        "coalesce",
                        wait_start,
                        outcome.wait_seconds,
                        parent=exec_ref,
                        estimator=spec.name,
                        shared=outcome.shared_ref,
                    )
            if item.ok:
                estimates[spec.name] = item.estimate
            else:
                errors[spec.name] = item.error
        return estimates, errors

    async def _handle_reload(self, request: Request) -> dict[str, Any]:
        assert request.tenant is not None
        if self.registry.get(request.tenant) is None:
            raise ProtocolError(
                protocol.UNKNOWN_TENANT,
                f"unknown tenant {request.tenant!r}; registered tenants: "
                f"{self.registry.names()}",
            )
        loop = asyncio.get_running_loop()

        def work() -> TenantEntry:
            return self.registry.reload(
                request.tenant,
                path=request.path,
                allow_fingerprint_change=request.allow_fingerprint_change,
            )

        try:
            entry = await loop.run_in_executor(self._executor, work)
        except DatasetError as error:
            raise ProtocolError(protocol.RELOAD_FAILED, str(error))
        self._tenant_reloads.inc(tenant=entry.name)
        return protocol.ok_response(
            request.id,
            {
                "tenant": entry.name,
                "generation": entry.generation,
                "path": str(entry.path),
                "fingerprint": entry.fingerprint,
            },
        )

    async def _handle_apply_deltas(self, request: Request) -> dict[str, Any]:
        """Live tenant refresh from the artifact's on-disk delta chain.

        Like ``reload``, the registry swap is atomic and in-flight
        requests finish on the entry they captured; unlike ``reload``,
        only the unseen delta generations are replayed (onto a
        copy-on-write clone), so refreshing after a small update batch
        costs proportionally to the batch, not to the artifact.
        """
        assert request.tenant is not None
        if self.registry.get(request.tenant) is None:
            raise ProtocolError(
                protocol.UNKNOWN_TENANT,
                f"unknown tenant {request.tenant!r}; registered tenants: "
                f"{self.registry.names()}",
            )
        loop = asyncio.get_running_loop()

        def work() -> tuple[TenantEntry, int]:
            return self.registry.apply_deltas(request.tenant)

        try:
            entry, applied = await loop.run_in_executor(self._executor, work)
        except DatasetError as error:
            raise ProtocolError(protocol.RELOAD_FAILED, str(error))
        self._tenant_delta_refreshes.inc(tenant=entry.name)
        return protocol.ok_response(
            request.id,
            {
                "tenant": entry.name,
                "generation": entry.generation,
                "artifact_generation": entry.store.manifest.generation,
                "applied": applied,
                "fingerprint": entry.fingerprint,
                "path": str(entry.path),
            },
        )

    # ------------------------------------------------------------------
    # Fleet fan-out
    # ------------------------------------------------------------------
    async def _fan_out(
        self, request: Request, trace: RequestTrace | None = None
    ) -> dict[str, Any]:
        """Fan a control verb out fleet-wide; one raw response per worker.

        The accepting worker answers its own slot inline (a TCP hop to
        itself would deadlock behind this very dispatch) and queries each
        peer's direct port on the thread pool with ``scope: "local"`` so
        the fan-out can never recurse.  A peer that cannot be reached —
        crashed and awaiting supervisor restart — contributes a typed
        ``worker_unreachable`` slot instead of failing the whole fan.
        """
        assert self.fleet is not None
        loop = asyncio.get_running_loop()
        payload = self._peer_payload(request, trace)
        futures = {
            member.index: loop.run_in_executor(
                self._executor, self._peer_call, member.direct_port, payload
            )
            for member in self.fleet.members
            if member.index != self.fleet.index
        }
        workers: dict[str, dict[str, Any]] = {
            str(self.fleet.index): await self._local_control_response(request)
        }
        for index, future in futures.items():
            workers[str(index)] = await future
        all_ok = all(slot.get("ok") for slot in workers.values())
        result: dict[str, Any] = {
            "fleet": True,
            "verb": request.verb,
            "ok": all_ok,
            "workers": workers,
        }
        if trace is not None:
            result["trace_id"] = trace.trace_id
        if request.verb == "stats":
            result["aggregate"] = _aggregate_fleet_stats(workers)
        if request.verb == "metrics":
            # Fleet-wide scrape: counters and histogram buckets sum
            # across workers (a fleet counter equals the sum of its
            # per-worker slots — the obs-smoke CI job asserts this).
            result["exposition"] = merge_expositions(
                slot["result"]["exposition"]
                for slot in workers.values()
                if slot.get("ok") and "exposition" in (slot.get("result") or {})
            )
            result["format"] = "prometheus-text-0.0.4"
        if request.verb == "shutdown":
            # Peers are draining; now schedule our own drain.  The flag
            # is consumed by the connection handler *after* this
            # response reaches the wire, so the caller always sees the
            # fleet-wide acknowledgement before the socket dies.
            self._draining = True
            self._pending_shutdown = True
        return protocol.ok_response(request.id, result)

    def _peer_payload(
        self, request: Request, trace: RequestTrace | None = None
    ) -> dict[str, Any]:
        """The scope-local wire payload that replays ``request`` on a peer."""
        payload: dict[str, Any] = {
            "v": protocol.PROTOCOL_VERSION,
            "verb": request.verb,
            "scope": "local",
        }
        # Propagate the fan-out's trace id so every worker's spans land
        # under one id in a shared trace log.
        trace_id = trace.trace_id if trace is not None else request.trace_id
        if trace_id is not None:
            payload["trace_id"] = trace_id
        if request.tenant is not None:
            payload["tenant"] = request.tenant
        if request.path is not None:
            payload["path"] = request.path
        if request.allow_fingerprint_change:
            payload["allow_fingerprint_change"] = True
        return payload

    def _peer_call(
        self, direct_port: int, payload: dict[str, Any]
    ) -> dict[str, Any]:
        """Thread-pool body: one scope-local request to one peer."""
        assert self.fleet is not None
        try:
            with EstimationClient(
                self.fleet.host, direct_port, timeout=30.0
            ) as peer:
                return peer.request(payload)
        except Exception as error:
            return protocol.error_response(
                None,
                protocol.WORKER_UNREACHABLE,
                f"worker at {self.fleet.host}:{direct_port} is unreachable "
                f"({type(error).__name__}: {error}); the supervisor "
                "restarts crashed workers — retry shortly",
            )

    async def _local_control_response(
        self, request: Request
    ) -> dict[str, Any]:
        """This worker's own slot of a fan-out, as a raw wire response."""
        try:
            if request.verb == "stats":
                return protocol.ok_response(None, self.stats_result())
            if request.verb == "metrics":
                return protocol.ok_response(None, self.metrics_result())
            if request.verb == "shutdown":
                # Flags are set by _fan_out after the peers answered.
                return protocol.ok_response(None, {"shutting_down": True})
            if request.verb == "reload":
                response = await self._handle_reload(request)
            else:
                response = await self._handle_apply_deltas(request)
            response["id"] = None
            return response
        except ProtocolError as error:
            return protocol.error_response(None, error.code, error.message)

    def fleet_result(self) -> dict[str, Any]:
        """The ``fleet`` verb payload: worker topology and assignment."""
        if self.fleet is None:
            return {"fleet": False, "tenants": self.registry.names()}
        return {
            "fleet": True,
            "worker": {"index": self.fleet.index, "pid": os.getpid()},
            "host": self.fleet.host,
            "port": self.fleet.port,
            "workers": [
                {"index": member.index, "direct_port": member.direct_port}
                for member in self.fleet.members
            ],
            "assignment": dict(self.fleet.assignment),
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics_result(self) -> dict[str, Any]:
        """The ``metrics`` verb payload: the Prometheus text exposition."""
        result: dict[str, Any] = {
            "exposition": self.telemetry.registry.render(),
            "format": "prometheus-text-0.0.4",
        }
        if self.fleet is not None:
            result["worker"] = {"index": self.fleet.index, "pid": os.getpid()}
        return result

    def _tenant_requests_dict(self, name: str) -> dict[str, Any]:
        """One tenant's request accounting in the legacy stats shape.

        Same keys the retired ``_TenantMetrics`` emitted — the stats
        verb's contract — plus bucket-derived p50/p95/p99 quantiles.
        """
        errors = {
            labels["code"]: int(value)
            for labels, value in self._tenant_errors.items()
            if labels["tenant"] == name and value
        }
        child = self.telemetry.request_latency.get_child(tenant=name)
        bounds = self.telemetry.request_latency.buckets
        counts = child.counts if child is not None else [0] * (len(bounds) + 1)
        buckets = {
            f"<={bound}ms": count
            for bound, count in zip(LATENCY_BUCKETS_MS, counts)
        }
        buckets[f">{LATENCY_BUCKETS_MS[-1]}ms"] = counts[-1]
        return {
            "requests": int(self._tenant_requests.value(tenant=name)),
            "ok": int(self._tenant_ok.value(tenant=name)),
            "errors": errors,
            "responses_with_estimator_errors": int(
                self._tenant_estimator_errors.value(tenant=name)
            ),
            "latency_ms": {
                "buckets": buckets,
                "sum_ms": child.sum if child is not None else 0.0,
                "max_ms": child.max if child is not None else 0.0,
                "p50": quantile_from_buckets(bounds, counts, 0.50),
                "p95": quantile_from_buckets(bounds, counts, 0.95),
                "p99": quantile_from_buckets(bounds, counts, 0.99),
            },
        }

    def stats_result(self) -> dict[str, Any]:
        """The ``stats`` verb payload (also handy in-process)."""
        tenants = self.registry.stats()
        for name, payload in tenants.items():
            payload["requests"] = self._tenant_requests_dict(name)
        by_verb = {
            labels["verb"]: int(value)
            for labels, value in self.telemetry.requests_total.items()
            if value
        }
        result: dict[str, Any] = {
            "uptime_seconds": (
                time.monotonic() - self._started_at if self._started_at else 0.0
            ),
            "server": {
                "version": _server_version(),
                "start_time": self._started_at_iso,
                "start_time_unix": self._started_unix,
                "pid": os.getpid(),
            },
            "telemetry": self.telemetry.describe(),
            "tenants": tenants,
            "admission": {
                "max_inflight": self.config.max_inflight,
                "queue_limit": self.config.queue_limit,
                "admitted": self._admitted,
                "running": self._running,
                "abandoned": self._abandoned,
                "queue_depth": max(self._admitted - self._running, 0),
                "shed_total": self._shed_total,
                "deadline_exceeded_total": self._deadline_total,
            },
            "coalescer": self.coalescer.stats().as_dict(),
            "requests": {
                "total": sum(by_verb.values()),
                "by_verb": by_verb,
            },
        }
        result["memory"] = _process_memory()
        result["memory"]["mapped"] = _mapped_statistics_memory()
        plane = self.registry.plane_stats()
        result["artifact_plane"] = {
            "disk_parses": stats_parse_count(),
            "shared": plane is not None,
            **(plane or {}),
        }
        if self.fleet is not None:
            result["worker"] = {
                "index": self.fleet.index,
                "pid": os.getpid(),
                "direct_port": self.fleet.members[
                    self.fleet.index
                ].direct_port,
            }
            result["tenant_assignment"] = dict(self.fleet.assignment)
        return result


def _process_memory() -> dict[str, float]:
    """This process's RSS/PSS/USS in kB (Linux ``smaps_rollup``).

    USS (private pages only) is the honest marginal cost of one worker
    under the shared statistics plane; platforms without smaps_rollup
    report zeros rather than failing the stats verb.
    """
    fields: dict[str, float] = {}
    try:
        text = Path(f"/proc/{os.getpid()}/smaps_rollup").read_text()
    except OSError:  # pragma: no cover - non-Linux
        return {"rss_kb": 0.0, "pss_kb": 0.0, "uss_kb": 0.0}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) >= 2 and parts[0].rstrip(":") in (
            "Rss",
            "Pss",
            "Private_Clean",
            "Private_Dirty",
        ):
            fields[parts[0].rstrip(":")] = float(parts[1])
    return {
        "rss_kb": fields.get("Rss", 0.0),
        "pss_kb": fields.get("Pss", 0.0),
        "uss_kb": fields.get("Private_Clean", 0.0)
        + fields.get("Private_Dirty", 0.0),
    }


_SMAPS_HEADER = None


def _mapped_statistics_memory() -> list[dict[str, Any]]:
    """Mapped-vs-resident bytes of this process's statistics mappings.

    Walks ``/proc/self/smaps`` for shared-plane segments (``repro-img-*``)
    and mmap-ed flat artifacts (``catalogs.npz``): ``mapped_kb`` is the
    address-space reservation, ``rss_kb`` the pages actually resident —
    the operator's view of how much of a catalog a worker has touched.
    """
    global _SMAPS_HEADER
    if _SMAPS_HEADER is None:
        import re

        _SMAPS_HEADER = re.compile(r"^[0-9a-f]+-[0-9a-f]+\s")
    try:
        lines = Path("/proc/self/smaps").read_text().splitlines()
    except OSError:  # pragma: no cover - non-Linux
        return []
    segments: dict[str, dict[str, Any]] = {}
    current: dict[str, Any] | None = None
    for line in lines:
        if _SMAPS_HEADER.match(line):
            current = None
            name = line.split()[-1] if line.count(" ") >= 5 else ""
            base = name.rsplit("/", 1)[-1]
            if base.startswith("repro-img-") or base.endswith(
                "catalogs.npz"
            ):
                current = segments.setdefault(
                    base, {"name": base, "mapped_kb": 0.0, "rss_kb": 0.0}
                )
        elif current is not None:
            parts = line.split()
            if parts and parts[0] == "Size:":
                current["mapped_kb"] += float(parts[1])
            elif parts and parts[0] == "Rss:":
                current["rss_kb"] += float(parts[1])
    return sorted(segments.values(), key=lambda s: s["name"])


def _aggregate_fleet_stats(
    workers: dict[str, dict[str, Any]]
) -> dict[str, Any]:
    """Fleet-wide totals over the per-worker slots of a stats fan-out."""
    by_verb: Counter = Counter()
    tenants: dict[str, dict[str, Any]] = {}
    totals = {
        "requests_total": 0,
        "shed_total": 0,
        "deadline_exceeded_total": 0,
        "abandoned": 0,
    }
    # Summable plane counters only: segments/segment_bytes are per-host
    # point-in-time readings every worker reports identically, so a sum
    # would multiply them by the fleet size.
    plane = {
        "disk_parses": 0,
        "publishes": 0,
        "attaches": 0,
        "steals": 0,
        "prunes": 0,
    }
    memory = {"uss_kb_total": 0.0, "uss_kb_max": 0.0, "rss_kb_max": 0.0}
    reporting = 0
    for _index, slot in sorted(workers.items(), key=lambda kv: int(kv[0])):
        if not slot.get("ok"):
            continue
        reporting += 1
        stats = slot.get("result") or {}
        requests = stats.get("requests") or {}
        totals["requests_total"] += int(requests.get("total", 0))
        by_verb.update(requests.get("by_verb") or {})
        worker_plane = stats.get("artifact_plane") or {}
        for field in plane:
            plane[field] += int(worker_plane.get(field, 0))
        worker_memory = stats.get("memory") or {}
        memory["uss_kb_total"] += float(worker_memory.get("uss_kb", 0.0))
        memory["uss_kb_max"] = max(
            memory["uss_kb_max"], float(worker_memory.get("uss_kb", 0.0))
        )
        memory["rss_kb_max"] = max(
            memory["rss_kb_max"], float(worker_memory.get("rss_kb", 0.0))
        )
        admission = stats.get("admission") or {}
        totals["shed_total"] += int(admission.get("shed_total", 0))
        totals["deadline_exceeded_total"] += int(
            admission.get("deadline_exceeded_total", 0)
        )
        totals["abandoned"] += int(admission.get("abandoned", 0))
        assignment = stats.get("tenant_assignment") or {}
        for name, tenant_stats in (stats.get("tenants") or {}).items():
            aggregate = tenants.setdefault(
                name,
                {
                    "requests": 0,
                    "ok": 0,
                    "owner": assignment.get(name),
                    "generation": tenant_stats.get("generation"),
                },
            )
            tenant_requests = tenant_stats.get("requests") or {}
            aggregate["requests"] += int(tenant_requests.get("requests", 0))
            aggregate["ok"] += int(tenant_requests.get("ok", 0))
    return {
        "workers_reporting": reporting,
        "by_verb": dict(by_verb),
        "tenants": tenants,
        "artifact_plane": plane,
        "memory": memory,
        **totals,
    }


class ThreadedServer:
    """An :class:`EstimationServer` on a background thread's event loop.

    The in-process harness behind the integration tests and the load
    benchmark: ``start()`` returns the bound (host, port), ``stop()``
    performs the same graceful drain as the ``shutdown`` verb.  Usable
    as a context manager.
    """

    def __init__(
        self, registry: StoreRegistry, config: ServerConfig | None = None
    ):
        self.registry = registry
        self.config = config or ServerConfig()
        self.server: EstimationServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.host: str | None = None
        self.port: int | None = None

    def start(self, timeout: float = 30.0) -> tuple[str, int]:
        """Start serving; returns the bound (host, port)."""
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("estimation server failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        assert self.host is not None and self.port is not None
        return self.host, self.port

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surfaced by start() or ignored
            if not self._ready.is_set():
                self._startup_error = error
                self._ready.set()

    async def _main(self) -> None:
        server = EstimationServer(self.registry, self.config)
        try:
            self.host, self.port = await server.start()
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            return
        self.server = server
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await server.run_until_shutdown()

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully shut the server down and join its thread."""
        if self._thread is None:
            return
        if (
            self._loop is not None
            and self.server is not None
            and self._thread.is_alive()
        ):
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)

    def __enter__(self) -> "ThreadedServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
