"""Blocking NDJSON client for the estimation server.

One :class:`EstimationClient` wraps one TCP connection and issues one
request at a time (the protocol allows pipelining, but lock-step keeps
the failure modes simple).  A client is safe to share across threads —
a mutex serialises requests — but load generators should prefer one
client per worker so requests actually overlap on the server.

Server-side failures surface as :class:`ServerError` carrying the typed
wire code and the process exit code of the ``repro batch``/``repro
query`` taxonomy (2 — invalid request, 1 — estimation failure, 3 —
transient serving condition such as ``overloaded`` or
``deadline_exceeded``).  Transport-level failures (connection refused,
reset, EOF mid-response) raise :class:`ServerUnavailable`, which maps to
exit code 3 as well.

**Fork-safety contract.**  A connected client that crosses a ``fork()``
would otherwise share its socket fd between parent and child: two
processes interleaving writes on one stream desync the NDJSON framing
for both.  The client records the owning pid at connect time and, when
it finds itself in a different process, transparently drops the
inherited fd (closing only this process's dup — the parent's connection
is untouched) and reconnects, so forking load generators and
``fork``-spawned fleet workers can reuse a pre-fork client safely.

:class:`FleetClient` layers tenant-affinity routing on top: it resolves
the fleet map of a multi-process server (the ``fleet`` verb) and sends
each tenant's estimates to the worker that owns it under the fleet's
consistent-hash assignment, so one tenant's shape caches stay hot on
one worker instead of being rebuilt N times.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Any, Iterable

from repro.errors import ReproError
from repro.server import protocol

__all__ = [
    "ServerError",
    "ServerUnavailable",
    "EstimationClient",
    "FleetClient",
    "wait_until_ready",
]


class ServerError(ReproError):
    """The server answered with a typed error response."""

    def __init__(self, code: str, message: str, exit_code: int):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.exit_code = exit_code


class ServerUnavailable(ReproError):
    """The server could not be reached or dropped the connection."""

    exit_code = 3


class EstimationClient:
    """A blocking request/response client for one server connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        timeout: float | None = 60.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        # Re-entrant: request() calls close() on its error paths while
        # already holding the lock.
        self._lock = threading.RLock()
        self._sock: socket.socket | None = None
        self._file = None
        # Pid that opened the current socket; a mismatch means we are a
        # fork()ed child holding the parent's fd (see module docstring).
        self._owner_pid: int | None = None

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as error:
            raise ServerUnavailable(
                f"cannot connect to estimation server at "
                f"{self.host}:{self.port}: {error}"
            )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._file = sock.makefile("rb")
        self._owner_pid = os.getpid()

    def close(self) -> None:
        """Close the connection (idempotent, waits out in-flight requests)."""
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def __enter__(self) -> "EstimationClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Raw request/response
    # ------------------------------------------------------------------
    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one raw request object; returns the raw response object.

        Does not interpret ``ok``/``error`` — see :meth:`call` for the
        error-raising variant.
        """
        # The whole exchange — including the error-path close() — stays
        # under the mutex, so a concurrent thread can never observe the
        # socket half-torn-down (or have its fresh reconnect closed from
        # under it).
        with self._lock:
            if self._sock is not None and self._owner_pid != os.getpid():
                # We are a fork()ed child reusing the parent's client:
                # writing on the inherited fd would interleave with the
                # parent's requests and desync framing for both sides.
                # close() only drops this process's dup of the fd, so
                # the parent's connection survives; reconnect fresh.
                self.close()
            if self._sock is None:
                self._connect()
            assert self._sock is not None and self._file is not None
            try:
                self._sock.sendall(protocol.encode_line(payload))
                line = self._file.readline(protocol.MAX_LINE_BYTES)
            except OSError as error:
                self.close()
                raise ServerUnavailable(
                    f"estimation server connection failed: {error}"
                )
            if not line:
                self.close()
                raise ServerUnavailable(
                    "estimation server closed the connection mid-request"
                )
            if not line.endswith(b"\n"):
                # Either the cap truncated an oversized line or the
                # server died mid-response; both ways the stream framing
                # is gone, so drop the connection rather than desync
                # every later request.
                self.close()
                raise ServerUnavailable(
                    "estimation server response was truncated "
                    f"(>{protocol.MAX_LINE_BYTES} bytes or connection "
                    "lost mid-line)"
                )
            try:
                return protocol.decode_line(line)
            except protocol.ProtocolError as error:
                self.close()
                raise ServerUnavailable(
                    f"estimation server sent an unparseable response: "
                    f"{error}"
                )

    def call(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request; returns ``result`` or raises ServerError."""
        response = self.request(payload)
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error") or {}
        raise ServerError(
            code=str(error.get("code", "internal_error")),
            message=str(error.get("message", "unknown server error")),
            exit_code=int(error.get("exit_code", 1)),
        )

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def estimate(
        self,
        tenant: str,
        query: str,
        estimators: Iterable[str] = ("max-hop-max",),
        deadline_ms: float | None = None,
        request_id: Any = None,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        """Estimate one query under one or more estimator configs.

        Returns the result object: ``estimates`` maps estimator name to
        the float (bit-identical to the in-process session value), and
        ``errors`` maps failed estimators to their error strings.  With
        telemetry on, the result also echoes the request's ``trace_id``
        (server-minted when none is supplied) and per-stage ``timings``.
        """
        payload: dict[str, Any] = {
            "v": protocol.PROTOCOL_VERSION,
            "verb": "estimate",
            "tenant": tenant,
            "query": query,
            "estimators": list(estimators),
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if request_id is not None:
            payload["id"] = request_id
        if trace_id is not None:
            payload["trace_id"] = trace_id
        return self.call(payload)

    def stats(self) -> dict[str, Any]:
        """The server's introspection snapshot (``stats`` verb)."""
        return self.call({"v": protocol.PROTOCOL_VERSION, "verb": "stats"})

    def metrics(self, trace_id: str | None = None) -> dict[str, Any]:
        """The Prometheus text exposition (``metrics`` verb).

        Against a fleet, the entry worker fans the scrape out and the
        result carries both the per-worker slots and a merged
        ``exposition`` whose counters/histograms sum across workers.
        """
        payload: dict[str, Any] = {
            "v": protocol.PROTOCOL_VERSION,
            "verb": "metrics",
        }
        if trace_id is not None:
            payload["trace_id"] = trace_id
        return self.call(payload)

    def ping(self) -> dict[str, Any]:
        """Liveness check; returns the registered tenant names."""
        return self.call({"v": protocol.PROTOCOL_VERSION, "verb": "ping"})

    def fleet(self) -> dict[str, Any]:
        """The fleet topology behind this port (``fleet`` verb).

        A single-process server answers ``{"fleet": false}``; a fleet
        worker describes itself, its peers' direct ports, and the
        consistent-hash tenant assignment.
        """
        return self.call({"v": protocol.PROTOCOL_VERSION, "verb": "fleet"})

    def reload(
        self,
        tenant: str,
        path: str | None = None,
        allow_fingerprint_change: bool = False,
    ) -> dict[str, Any]:
        """Hot-reload one tenant's artifact (``reload`` verb)."""
        payload: dict[str, Any] = {
            "v": protocol.PROTOCOL_VERSION,
            "verb": "reload",
            "tenant": tenant,
        }
        if path is not None:
            payload["path"] = path
        if allow_fingerprint_change:
            payload["allow_fingerprint_change"] = True
        return self.call(payload)

    def apply_deltas(self, tenant: str) -> dict[str, Any]:
        """Refresh one tenant from its artifact's delta chain."""
        return self.call(
            {
                "v": protocol.PROTOCOL_VERSION,
                "verb": "apply_deltas",
                "tenant": tenant,
            }
        )

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and exit (``shutdown`` verb)."""
        return self.call({"v": protocol.PROTOCOL_VERSION, "verb": "shutdown"})


class FleetClient:
    """Tenant-affinity routing client for a multi-process fleet.

    Wraps one "seed" :class:`EstimationClient` on the fleet's shared
    port plus one lazily-opened direct connection per worker.  Estimates
    for a tenant go to the worker that owns it under the fleet's
    consistent-hash assignment, so each tenant's canonical-shape caches
    warm exactly once; control verbs (``stats``/``reload``/``shutdown``)
    ride the shared port, where any worker fans them out fleet-wide.

    Falls back gracefully: against a single-process server (``fleet``
    answers ``{"fleet": false}``) or when an owner is briefly
    unreachable (crashed worker awaiting restart), requests go to the
    shared port instead — correctness never depends on routing, because
    every worker serves every tenant.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        timeout: float | None = 60.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._lock = threading.Lock()
        self._seed = EstimationClient(host, port, timeout=timeout)
        self._workers: dict[int, EstimationClient] = {}
        self._assignment: dict[str, int] = {}
        self._direct_ports: dict[int, int] = {}
        self._resolved = False

    def _resolve(self) -> None:
        """Fetch the fleet map once (any worker answers identically)."""
        with self._lock:
            if self._resolved:
                return
            info = self._seed.fleet()
            if info.get("fleet"):
                self._assignment = {
                    tenant: int(index)
                    for tenant, index in (info.get("assignment") or {}).items()
                }
                self._direct_ports = {
                    int(worker["index"]): int(worker["direct_port"])
                    for worker in info.get("workers", [])
                    if worker.get("direct_port")
                }
            self._resolved = True

    def _client_for(self, tenant: str) -> EstimationClient:
        self._resolve()
        index = self._assignment.get(tenant)
        with self._lock:
            port = self._direct_ports.get(index) if index is not None else None
            if port is None:
                return self._seed
            client = self._workers.get(index)
            if client is None:
                client = EstimationClient(self.host, port, timeout=self.timeout)
                self._workers[index] = client
            return client

    def estimate(
        self,
        tenant: str,
        query: str,
        estimators: Iterable[str] = ("max-hop-max",),
        deadline_ms: float | None = None,
        request_id: Any = None,
    ) -> dict[str, Any]:
        """Estimate on the tenant's home worker (hot shape caches).

        When the home worker is unreachable — typically a crash window
        before the supervisor restarts it — the request retries once on
        the shared port, which the surviving workers keep serving.
        """
        client = self._client_for(tenant)
        try:
            return client.estimate(
                tenant, query, estimators, deadline_ms, request_id
            )
        except ServerUnavailable:
            if client is self._seed:
                raise
            return self._seed.estimate(
                tenant, query, estimators, deadline_ms, request_id
            )

    def stats(self) -> dict[str, Any]:
        """Fleet-wide aggregated stats (fanned out by the entry worker)."""
        return self._seed.stats()

    def metrics(self) -> dict[str, Any]:
        """Fleet-wide merged metrics exposition via the shared port."""
        return self._seed.metrics()

    def fleet(self) -> dict[str, Any]:
        """The fleet topology snapshot."""
        return self._seed.fleet()

    def reload(self, tenant: str, **kwargs: Any) -> dict[str, Any]:
        """Fleet-wide hot reload via the shared port."""
        return self._seed.reload(tenant, **kwargs)

    def apply_deltas(self, tenant: str) -> dict[str, Any]:
        """Fleet-wide delta refresh via the shared port."""
        return self._seed.apply_deltas(tenant)

    def shutdown(self) -> dict[str, Any]:
        """Drain and stop the whole fleet."""
        return self._seed.shutdown()

    def close(self) -> None:
        """Close the seed and every per-worker connection (idempotent)."""
        with self._lock:
            clients = [self._seed, *self._workers.values()]
        for client in clients:
            client.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wait_until_ready(
    host: str, port: int, timeout: float = 30.0, interval: float = 0.05
) -> None:
    """Block until a server answers ``ping`` (for subprocess startup).

    Each probe's socket timeout is clamped to the time remaining before
    the stated deadline: against a SYN-dropping or slow-accepting host a
    single ``connect()`` blocks until *its* timeout fires, so a fixed
    5 s per-attempt budget could overshoot a ``timeout=2.0`` call by
    seconds.  The clamp keeps the overall wait honest.
    """
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            with EstimationClient(
                host, port, timeout=min(5.0, remaining)
            ) as client:
                client.ping()
            return
        except (ReproError, OSError, json.JSONDecodeError) as error:
            last_error = error
            time.sleep(
                max(0.0, min(interval, deadline - time.monotonic()))
            )
    raise ServerUnavailable(
        f"estimation server at {host}:{port} did not become ready within "
        f"{timeout:g}s: {last_error}"
    )
