"""Command-line entry point: regenerate figures, build stats, serve batches.

Usage::

    python -m repro list
    python -m repro table2
    python -m repro fig9  --scale 0.08 --per-template 2
    python -m repro all   --scale 0.05 --per-template 1 --out results/
    python -m repro stats build --dataset example --out stats/example
    python -m repro stats inspect stats/example
    python -m repro batch -q "a -[A]-> b -[B]-> c" -e max-hop-max -e MOLP
    python -m repro batch --stats-dir stats/example -q "a -[A]-> b -[B]-> c"
    python -m repro batch --file queries.txt --dataset hetionet --repeat 3
    python -m repro updates apply --stats-dir stats/example --updates ops.json
    python -m repro updates replay --stats-dir stats/example --verify
    python -m repro updates compact stats/example
    python -m repro serve --tenant example=stats/example --port 7421
    python -m repro query --port 7421 --tenant example -q "a -[A]-> b"
    python -m repro query --port 7421 --tenant example --apply-deltas
    python -m repro query --port 7421 --stats
    python -m repro obs summarize traces.ndjson
    python -m repro obs spans traces.ndjson --top 5
    python -m repro obs grep traces.ndjson --trace-id 4f2c...

Each experiment prints its table; ``--out DIR`` additionally writes one
``.txt`` per experiment.  ``stats build`` bulk-builds every summary for
a dataset and writes one versioned artifact directory; ``stats inspect``
prints its manifest and per-catalog sizes.  ``batch`` estimates a set of
ad-hoc queries through the cached
:class:`~repro.service.EstimationSession` and prints a JSON report
(estimates, per-query errors, cache statistics) — with ``--stats-dir``
it serves from a prebuilt artifact and never loads the base graph.

``batch`` exit codes: 0 — every estimate succeeded; 1 — at least one
query failed to estimate (its error is in the report); 2 — the request
itself is invalid (malformed query text, unknown estimator/dataset,
artifact/spec mismatch).  ``stats`` uses 0/2 the same way.

``serve`` runs the long-lived multi-tenant estimation server
(:mod:`repro.server`) over one or more prebuilt artifacts; ``query`` is
its blocking network client.  ``query`` extends the ``batch`` taxonomy
with exit code 3 for transient serving conditions — the server shed the
request (``overloaded``), the deadline expired (``--timeout`` maps to
the per-request deadline), the server is shutting down, or it cannot be
reached at all — where a retry may succeed.

``updates`` is the dynamic-graph plane: ``apply`` maintains an
artifact's catalogs incrementally under an edge-update batch (appending
a versioned ``deltas/NNNN.json`` a live server picks up via ``query
--apply-deltas``), ``replay`` verifies the delta lineage (and, with
``--verify``, bit-compares against a cold rebuild), and ``compact``
folds a delta chain into the base files.

The batch verbs (``stats build``, ``stats repack``, ``updates
apply``/``replay``) share the offline observability flags
``--trace-log`` / ``--trace-log-keep`` / ``--metrics-out``: job traces
land in the same NDJSON shape the server writes and metrics land as a
Prometheus textfile-collector exposition.  ``obs`` analyses those logs
(either plane's): ``summarize`` / ``spans`` / ``audit`` / ``grep``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.catalog.cycle_rates import CycleClosingRates
from repro.datasets.presets import (
    DATASETS,
    EXAMPLE_DATASET,
    SYNTHETIC_DATASETS,
    load_dataset,
)
from repro.errors import BuildInterrupted, ReproError
from repro.graph.io import load_edge_list, load_npz, load_ntriples
from repro.experiments import (
    ExperimentConfig,
    figure9_acyclic_space,
    figure10_cyclic_triangles,
    figure11_large_cycles,
    figure12_bound_sketch,
    figure13_summary_comparison,
    figure14_wanderjoin,
    figure15_plan_quality,
    table1_markov_example,
    table2_datasets,
)
from repro.query.parser import parse_pattern
from repro.service.session import (
    OPTIMISTIC_NAMES,
    EstimationSession,
    EstimatorSpec,
)
from repro.stats import (
    StatisticsStore,
    StatsBuildConfig,
    build_statistics,
    inspect_artifact,
)

DATASET_CHOICES = sorted(DATASETS) + [EXAMPLE_DATASET]

#: ``stats build`` additionally accepts the large synthetic presets.
STATS_DATASET_CHOICES = (
    sorted(DATASETS) + sorted(SYNTHETIC_DATASETS) + [EXAMPLE_DATASET]
)

EXPERIMENTS = {
    "table1": lambda config: table1_markov_example(),
    "table2": table2_datasets,
    "fig9": figure9_acyclic_space,
    "fig10": figure10_cyclic_triangles,
    "fig11": figure11_large_cycles,
    "fig12": figure12_bound_sketch,
    "fig13": figure13_summary_comparison,
    "fig14": figure14_wanderjoin,
    "fig15": figure15_plan_quality,
}


def build_parser() -> argparse.ArgumentParser:
    """The experiment-runner argument parser (everything except ``batch``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which experiment to run ('list' to enumerate)",
    )
    parser.add_argument("--scale", type=float, default=0.08,
                        help="dataset scale factor (default 0.08)")
    parser.add_argument("--per-template", type=int, default=2,
                        help="workload instances per template (default 2)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--h", type=int, default=3,
                        help="Markov table size for the estimator space")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write result tables into")
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    """The ``repro batch`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description=(
            "Estimate a batch of queries through the cached estimation "
            "service and print a JSON report."
        ),
    )
    parser.add_argument(
        "-q", "--query", action="append", default=[], metavar="PATTERN",
        help="a query in arrow syntax, e.g. 'a -[A]-> b -[B]-> c' (repeatable)",
    )
    parser.add_argument(
        "--file", type=str, default=None, metavar="PATH",
        help="file with one query per line ('-' for stdin; '#' comments ok)",
    )
    parser.add_argument(
        "-e", "--estimator", action="append", default=[], metavar="NAME",
        help=(
            "estimator name: one of the nine max/min/all-hop heuristics "
            "(e.g. max-hop-max), 'all9' for the full space, 'MOLP', or "
            "'MOLP-sketch<K>'; repeatable (default: max-hop-max)"
        ),
    )
    parser.add_argument("--dataset", choices=DATASET_CHOICES,
                        default="hetionet",
                        help="preset dataset to estimate against")
    parser.add_argument("--stats-dir", type=Path, default=None, metavar="DIR",
                        help="serve from a prebuilt statistics artifact "
                             "(see 'repro stats build'); the base graph is "
                             "never loaded, --dataset/--scale/--h are taken "
                             "from its manifest, and --cycle-rates/--seed do "
                             "not apply (rates come from the artifact)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale factor (default 0.05)")
    parser.add_argument("--h", type=int, default=3,
                        help="Markov table size (default 3)")
    parser.add_argument("--molp-h", type=int, default=2,
                        help="MOLP join-statistics size (default 2)")
    parser.add_argument("--cycle-rates", action="store_true",
                        help="sample cycle-closing rates (enables '+ocr' specs)")
    parser.add_argument("--seed", type=int, default=7,
                        help="seed for cycle-rate sampling")
    parser.add_argument("--workers", type=int, default=None,
                        help="thread-pool size for the batch (default: auto)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run the batch N times against one session "
                             "(later passes exercise the caches)")
    parser.add_argument("--indent", action="store_true",
                        help="pretty-print the JSON report")
    return parser


def _read_queries(args: argparse.Namespace) -> list[str]:
    texts = list(args.query)
    if args.file is not None:
        if args.file == "-":
            lines = sys.stdin.read().splitlines()
        else:
            lines = Path(args.file).read_text(encoding="utf-8").splitlines()
        for line in lines:
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                texts.append(stripped)
    return texts


def _resolve_specs(names: list[str]) -> list[EstimatorSpec]:
    expanded: list[str] = []
    for name in names or ["max-hop-max"]:
        if name == "all9":
            expanded.extend(OPTIMISTIC_NAMES)
        else:
            expanded.append(name)
    specs: list[EstimatorSpec] = []
    seen: set[str] = set()
    for name in expanded:
        spec = EstimatorSpec.from_name(name)
        if spec.name not in seen:
            seen.add(spec.name)
            specs.append(spec)
    return specs


def run_batch(argv: list[str]) -> int:
    """The ``repro batch`` subcommand; returns a process exit code."""
    args = build_batch_parser().parse_args(argv)
    try:
        specs = _resolve_specs(args.estimator)
    except ValueError as error:
        print(f"repro batch: {error}", file=sys.stderr)
        return 2
    if args.stats_dir is not None and args.cycle_rates:
        print(
            "repro batch: --cycle-rates conflicts with --stats-dir — served "
            "rates come from the artifact (rebuild it with "
            "'repro stats build --cycle-rates --workload ...')",
            file=sys.stderr,
        )
        return 2
    if (
        any(spec.use_cycle_rates for spec in specs)
        and not args.cycle_rates
        and args.stats_dir is None
    ):
        print(
            "repro batch: '+ocr' estimators need --cycle-rates "
            "(or a --stats-dir artifact holding sampled rates)",
            file=sys.stderr,
        )
        return 2
    try:
        texts = _read_queries(args)
    except OSError as error:
        print(f"repro batch: cannot read query file: {error}", file=sys.stderr)
        return 2
    if not texts:
        print("repro batch: no queries given (use -q or --file)",
              file=sys.stderr)
        return 2
    try:
        patterns = [parse_pattern(text) for text in texts]
    except ReproError as error:
        print(f"repro batch: malformed query: {error}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    if args.stats_dir is not None:
        # Serve-without-graph mode: every statistic comes from the
        # artifact; the base graph is never loaded or scanned.
        try:
            store = StatisticsStore.load(args.stats_dir)
        except ReproError as error:
            print(f"repro batch: {error}", file=sys.stderr)
            return 2
        for spec in specs:
            if spec.kind == "molp" and spec.sketch_budget > 1:
                print(
                    f"repro batch: {spec.name!r} partitions base relations "
                    "and cannot run from --stats-dir (use plain MOLP)",
                    file=sys.stderr,
                )
                return 2
            # A query whose cyclic shape the artifact's rates don't cover
            # fails per-query with MissingStatisticError (exit 1); only
            # an artifact with no rate table at all is a request error.
            if spec.use_cycle_rates and store.cycle_rates is None:
                print(
                    f"repro batch: {spec.name!r} needs cycle rates but the "
                    "artifact holds none (rebuild with --cycle-rates and a "
                    "--workload)",
                    file=sys.stderr,
                )
                return 2
        session = store.session(max_workers=args.workers)
        # Provenance comes from the manifest alone: an artifact built
        # outside `repro stats build` may not record a dataset name or
        # scale, and the --dataset/--scale defaults describe a different
        # graph entirely.
        dataset_name = store.manifest.dataset_name or None
        graph_summary = store.manifest.graph_summary
        scale = store.manifest.build_config.get("scale")
    else:
        try:
            graph = load_dataset(args.dataset, args.scale)
        except ReproError as error:
            print(f"repro batch: {error}", file=sys.stderr)
            return 2
        rates = (
            CycleClosingRates(graph, seed=args.seed)
            if args.cycle_rates else None
        )
        session = EstimationSession(
            graph,
            h=args.h,
            molp_h=args.molp_h,
            cycle_rates=rates,
            max_workers=args.workers,
        )
        dataset_name = args.dataset
        graph_summary = {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        }
        scale = args.scale
    repeats = max(args.repeat, 1)
    for _ in range(repeats):
        batch = session.estimate_batch(patterns, specs=specs)
    report = {
        "dataset": dataset_name,
        "scale": scale,
        "stats_dir": str(args.stats_dir) if args.stats_dir else None,
        "graph": {
            "vertices": graph_summary.get("num_vertices"),
            "edges": graph_summary.get("num_edges"),
        },
        "estimators": batch.specs,
        "num_queries": len(patterns),
        "repeat": repeats,
        "results": [
            {
                "index": index,
                "query": text,
                "estimates": {
                    name: batch.item(index, name).estimate
                    for name in batch.specs
                    if batch.item(index, name).ok
                },
                "errors": {
                    name: batch.item(index, name).error
                    for name in batch.specs
                    if not batch.item(index, name).ok
                },
            }
            for index, text in enumerate(texts)
        ],
        "cache": session.stats().as_dict(),
        "elapsed_seconds": time.perf_counter() - started,
    }
    print(json.dumps(report, indent=2 if args.indent else None))
    return 0 if batch.ok else 1


def _add_job_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """The offline-plane observability flags shared by the batch verbs.

    ``repro stats build``, ``repro updates apply``/``replay`` and
    ``repro stats repack`` all take the same three switches so one
    ``repro obs`` toolkit (and one Prometheus textfile collector) reads
    every plane's output.
    """
    parser.add_argument("--trace-log", default=None, metavar="PATH",
                        help="append this job's trace record (per-level / "
                             "per-generation spans) as NDJSON to PATH — the "
                             "same record shape the server writes, readable "
                             "by 'repro obs'")
    parser.add_argument("--trace-log-keep", type=int, default=1, metavar="N",
                        help="rotated trace-log generations to keep "
                             "(PATH.1 .. PATH.N; default 1)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the job's metrics as a Prometheus "
                             "textfile-collector exposition to PATH "
                             "(atomic tmp+rename)")


def _job_telemetry(args: argparse.Namespace, verb: str):
    """A JobTelemetry when any observability flag is set, else None.

    None keeps the un-instrumented path literally free — the builders
    skip every telemetry hook on a None bundle.
    """
    from repro.obs.offline import JobTelemetry

    if not args.trace_log and not args.metrics_out:
        return None
    return JobTelemetry(
        verb,
        trace_log=args.trace_log,
        metrics_out=args.metrics_out,
        trace_log_keep=args.trace_log_keep,
    )


def build_stats_parser() -> argparse.ArgumentParser:
    """The ``repro stats build`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro stats build",
        description=(
            "Bulk-build every estimator summary for a dataset and write "
            "one versioned statistics artifact directory."
        ),
    )
    parser.add_argument("--dataset", choices=STATS_DATASET_CHOICES,
                        default=EXAMPLE_DATASET,
                        help="preset dataset to build statistics for")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale factor (default 0.05)")
    parser.add_argument("--graph", type=Path, default=None, metavar="FILE",
                        help="build from a graph file instead of a preset: "
                             ".npz (numpy artifact), .nt[.gz] (N-Triples), "
                             "or a [gzipped] edge list")
    parser.add_argument("--mmap", action="store_true",
                        help="memory-map the relation arrays of an "
                             "uncompressed --graph .npz instead of copying "
                             "them into memory")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the enumeration levels "
                             "(default 1; the artifact is byte-identical "
                             "for every N)")
    parser.add_argument("--resume", action="store_true",
                        help="continue from the checkpoint a killed build "
                             "left under OUT/build_state/")
    parser.add_argument("--stop-after-level", type=int, default=None,
                        metavar="K",
                        help="checkpoint and stop once level K completes "
                             "(exit 3); rerun with --resume to finish — "
                             "used by the resume smoke tests")
    parser.add_argument("--h", type=int, default=2,
                        help="Markov table size (default 2)")
    parser.add_argument("--molp-h", type=int, default=2,
                        help="MOLP join-statistics size (default 2)")
    parser.add_argument(
        "--workload", choices=["full", "acyclic", "cyclic", "both"],
        default="full",
        help="'full' enumerates every connected pattern over the label "
             "set; the others build workload-directed statistics for the "
             "named template family (default full)",
    )
    parser.add_argument("--per-template", type=int, default=2,
                        help="instances per template for workload-directed "
                             "builds (default 2)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload / cycle-rate sampling seed")
    parser.add_argument("--cycle-rates", action="store_true",
                        help="sample cycle-closing rates (workload-directed "
                             "builds only)")
    parser.add_argument("--out", type=Path, required=True, metavar="DIR",
                        help="artifact directory to write")
    parser.add_argument("--indent", action="store_true",
                        help="pretty-print the JSON summary")
    _add_job_telemetry_flags(parser)
    return parser


def _load_graph_file(path: Path, mmap: bool = False):
    """Load a graph file for ``stats build --graph`` by suffix."""
    suffixes = [s.lower() for s in path.suffixes]
    if suffixes[-1:] == [".npz"]:
        return load_npz(path, mmap=mmap)
    if ".nt" in suffixes:
        return load_ntriples(path)
    return load_edge_list(path)


def _build_workload(args: argparse.Namespace, graph) -> list | None:
    from repro.datasets.workloads import acyclic_workload, cyclic_workload

    if args.workload == "full":
        return None
    queries = []
    if args.workload in ("acyclic", "both"):
        queries += acyclic_workload(
            graph, per_template=args.per_template, seed=args.seed
        )
    if args.workload in ("cyclic", "both"):
        queries += cyclic_workload(
            graph, per_template=args.per_template, seed=args.seed
        )
    return [query.pattern for query in queries]


def run_stats(argv: list[str]) -> int:
    """The ``repro stats`` subcommand; returns a process exit code."""
    if not argv or argv[0] not in ("build", "inspect", "repack"):
        print(
            "repro stats: expected a subcommand: build | inspect | repack DIR",
            file=sys.stderr,
        )
        return 2
    if argv[0] == "inspect":
        if len(argv) != 2:
            print("repro stats inspect: expected one DIR", file=sys.stderr)
            return 2
        try:
            report = inspect_artifact(argv[1])
        except ReproError as error:
            print(f"repro stats inspect: {error}", file=sys.stderr)
            return 2
        print(json.dumps(report, indent=2))
        return 0
    if argv[0] == "repack":
        return _run_stats_repack(argv[1:])
    args = build_stats_parser().parse_args(argv[1:])
    if args.cycle_rates and args.workload == "full":
        print(
            "repro stats build: --cycle-rates is workload-directed (rates "
            "are sampled for the cycles the queries close); pass "
            "--workload acyclic|cyclic|both",
            file=sys.stderr,
        )
        return 2
    try:
        if args.graph is not None:
            graph = _load_graph_file(args.graph, mmap=args.mmap)
            dataset_name = args.graph.name
        else:
            graph = load_dataset(args.dataset, args.scale)
            dataset_name = args.dataset
    except ReproError as error:
        print(f"repro stats build: {error}", file=sys.stderr)
        return 2
    config = StatsBuildConfig(
        h=args.h,
        molp_h=args.molp_h,
        cycle_rates=args.cycle_rates,
        cycle_seed=args.seed,
    )
    workload = _build_workload(args, graph)
    telemetry = _job_telemetry(args, "stats.build")
    try:
        store = build_statistics(
            graph,
            config,
            workload=workload,
            dataset_name=dataset_name,
            jobs=args.jobs,
            checkpoint_dir=args.out,
            resume=args.resume,
            stop_after_level=args.stop_after_level,
            telemetry=telemetry,
        )
    except BuildInterrupted as event:
        # The partial build's spans (completed levels, the checkpoint
        # write) are still worth a record: finish the trace as not-ok so
        # 'repro obs' can see what the interrupted run paid for.
        if telemetry is not None:
            telemetry.finish(
                ok=False, event="build_interrupted", out=str(args.out)
            )
        print(json.dumps({
            "event": "build_interrupted",
            "out": str(args.out),
            "detail": str(event),
            "resume_with": "--resume",
        }, indent=2 if args.indent else None))
        return 3
    except ReproError as error:
        if telemetry is not None:
            telemetry.finish(ok=False, error=str(error))
        print(f"repro stats build: {error}", file=sys.stderr)
        return 2
    store.manifest.build_config["scale"] = args.scale
    store.save(args.out)
    if telemetry is not None:
        telemetry.finish(ok=True, dataset=dataset_name, out=str(args.out))
    summary = {
        "out": str(args.out),
        "dataset": dataset_name,
        "mode": store.manifest.build_config.get("mode"),
        "complete": store.manifest.complete,
        "markov_entries": store.markov.num_entries,
        "degree_relations": store.degrees.num_entries,
        "cycle_rate_entries": (
            store.cycle_rates.num_entries
            if store.cycle_rates is not None else 0
        ),
        "build_seconds": store.manifest.build_config.get("build_seconds"),
        "jobs": store.manifest.build_config.get("jobs"),
        "levels": store.manifest.build_config.get("levels"),
        "peak_level_width": store.manifest.build_config.get(
            "peak_level_width"
        ),
        "total_bytes": inspect_artifact(args.out)["total_bytes"],
    }
    print(json.dumps(summary, indent=2 if args.indent else None))
    return 0


def build_stats_repack_parser() -> argparse.ArgumentParser:
    """The ``repro stats repack`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro stats repack",
        description=(
            "Convert a legacy JSON-layout artifact to the flat "
            "(mmap-capable) layout in place."
        ),
    )
    parser.add_argument("directory", type=Path, metavar="DIR",
                        help="statistics artifact directory to repack")
    _add_job_telemetry_flags(parser)
    return parser


def _run_stats_repack(argv: list[str]) -> int:
    """Convert a legacy JSON-layout artifact to the flat layout in place."""
    from repro.stats.artifact import CATALOG_FILES, StoreManifest

    args = build_stats_repack_parser().parse_args(argv)
    directory = args.directory
    telemetry = _job_telemetry(args, "stats.repack")
    try:
        manifest = StoreManifest.load(directory)
        if manifest.generation > manifest.compacted_generation:
            if telemetry is not None:
                telemetry.finish(ok=False, error="unfolded deltas")
            print(
                f"repro stats repack: {directory} has "
                f"{manifest.generation - manifest.compacted_generation} "
                "unfolded delta generation(s); fold them first with "
                "'repro updates compact DIR' so the repacked base files "
                "carry the current state",
                file=sys.stderr,
            )
            return 2
        load_began = time.perf_counter()
        store = StatisticsStore.load(directory)
        save_began = time.perf_counter()
        store.save(directory, layout="flat")
        save_done = time.perf_counter()
        if telemetry is not None:
            telemetry.trace.add_span("load", load_began, save_began - load_began)
            telemetry.trace.add_span("save", save_began, save_done - save_began)
    except ReproError as error:
        if telemetry is not None:
            telemetry.finish(ok=False, error=str(error))
        print(f"repro stats repack: {error}", file=sys.stderr)
        return 2
    removed = []
    for name in ("markov", "degrees", "sumrdf"):
        legacy = directory / CATALOG_FILES[name]
        if legacy.exists():
            legacy.unlink()
            removed.append(legacy.name)
    total_bytes = inspect_artifact(directory)["total_bytes"]
    if telemetry is not None:
        telemetry.registry.gauge(
            "repro_repack_total_bytes",
            "Artifact size after repacking to the flat layout.",
        ).set(total_bytes)
        telemetry.finish(
            ok=True, directory=str(directory), removed=len(removed)
        )
    print(
        json.dumps(
            {
                "directory": str(directory),
                "layout": "flat",
                "removed": removed,
                "total_bytes": total_bytes,
                "mmap_capable": True,
            },
            indent=2,
        )
    )
    return 0


def build_updates_apply_parser() -> argparse.ArgumentParser:
    """The ``repro updates apply`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro updates apply",
        description=(
            "Apply one edge-update batch to a statistics artifact: the "
            "catalogs are maintained incrementally (bit-identical to a "
            "cold rebuild on the mutated graph) and a versioned "
            "deltas/NNNN.json patch is appended for graph-free replay."
        ),
    )
    parser.add_argument("--stats-dir", type=Path, required=True, metavar="DIR",
                        help="statistics artifact directory to update")
    parser.add_argument("--updates", type=Path, required=True, metavar="FILE",
                        help="JSON update file: {'updates': [[op, src, dst, "
                             "label], ...]} with op '+'/'-'")
    parser.add_argument("--dataset", choices=DATASET_CHOICES, default=None,
                        help="base dataset preset (default: the artifact "
                             "manifest's dataset_name)")
    parser.add_argument("--scale", type=float, default=None,
                        help="base dataset scale (default: from the manifest)")
    parser.add_argument("--compact-threshold", type=float, default=0.2,
                        metavar="FRACTION",
                        help="fall back to a cold rebuild (compacting the "
                             "artifact) when the effective update volume "
                             "exceeds this fraction of the graph's edges "
                             "(default 0.2; artifacts with workload-primed "
                             "cycle rates/entropy stay incremental — the "
                             "report's ledger says so)")
    parser.add_argument("--indent", action="store_true",
                        help="pretty-print the JSON report")
    _add_job_telemetry_flags(parser)
    return parser


def build_updates_replay_parser() -> argparse.ArgumentParser:
    """The ``repro updates replay`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro updates replay",
        description=(
            "Replay an artifact's delta lineage: re-derive the mutated "
            "graph from the base dataset plus the recorded update logs, "
            "verifying every fingerprint in the chain.  With --verify, "
            "additionally rebuild the statistics cold from the replayed "
            "graph and diff them against the artifact (the differential "
            "gate as a CLI)."
        ),
    )
    parser.add_argument("--stats-dir", type=Path, required=True, metavar="DIR")
    parser.add_argument("--dataset", choices=DATASET_CHOICES, default=None,
                        help="base dataset preset (default: from the manifest)")
    parser.add_argument("--scale", type=float, default=None,
                        help="base dataset scale (default: from the manifest)")
    parser.add_argument("--verify", action="store_true",
                        help="cold-rebuild the replayed graph and require "
                             "bit-identical catalogs (exit 1 on mismatch)")
    parser.add_argument("--indent", action="store_true")
    _add_job_telemetry_flags(parser)
    return parser


def _updates_base_graph(args: argparse.Namespace, manifest):
    """Resolve and load the base dataset an artifact was built from."""
    dataset = args.dataset or manifest.dataset_name
    if not dataset:
        raise ReproError(
            "the artifact manifest records no dataset_name; pass --dataset"
        )
    scale = args.scale
    if scale is None:
        scale = float(manifest.build_config.get("scale", 1.0))
    return dataset, scale, load_dataset(dataset, scale)


def run_updates(argv: list[str]) -> int:
    """The ``repro updates`` subcommand; returns a process exit code."""
    from repro.delta import apply_updates, compact_artifact, replay_graph
    from repro.delta.maintain import config_from_manifest
    from repro.delta.updates import UpdateBatch
    from repro.stats.artifact import StoreManifest

    if not argv or argv[0] not in ("apply", "replay", "compact"):
        print(
            "repro updates: expected a subcommand: apply | replay | "
            "compact DIR",
            file=sys.stderr,
        )
        return 2
    if argv[0] == "compact":
        if len(argv) != 2:
            print("repro updates compact: expected one DIR", file=sys.stderr)
            return 2
        try:
            summary = compact_artifact(argv[1])
        except ReproError as error:
            print(f"repro updates compact: {error}", file=sys.stderr)
            return 2
        print(json.dumps(summary, indent=2))
        return 0
    if argv[0] == "apply":
        args = build_updates_apply_parser().parse_args(argv[1:])
        telemetry = _job_telemetry(args, "updates.apply")
        try:
            manifest = StoreManifest.load(args.stats_dir)
            _, _, base_graph = _updates_base_graph(args, manifest)
            graph = replay_graph(
                base_graph, args.stats_dir, telemetry=telemetry
            )
            store = StatisticsStore.load(args.stats_dir, graph=graph)
            batch = UpdateBatch.load(args.updates)
            outcome = apply_updates(
                store,
                batch,
                directory=args.stats_dir,
                compact_threshold=args.compact_threshold,
                telemetry=telemetry,
            )
        except ReproError as error:
            if telemetry is not None:
                telemetry.finish(ok=False, error=str(error))
            print(f"repro updates apply: {error}", file=sys.stderr)
            return 2
        if telemetry is not None:
            telemetry.finish(ok=True, stats_dir=str(args.stats_dir))
        print(
            json.dumps(
                outcome.as_dict(), indent=2 if args.indent else None
            )
        )
        return 0
    args = build_updates_replay_parser().parse_args(argv[1:])
    telemetry = _job_telemetry(args, "updates.replay")
    try:
        manifest = StoreManifest.load(args.stats_dir)
        dataset, scale, base_graph = _updates_base_graph(args, manifest)
        graph = replay_graph(base_graph, args.stats_dir, telemetry=telemetry)
    except ReproError as error:
        if telemetry is not None:
            telemetry.finish(ok=False, error=str(error))
        print(f"repro updates replay: {error}", file=sys.stderr)
        return 2
    report = {
        "stats_dir": str(args.stats_dir),
        "dataset": dataset,
        "scale": scale,
        "base_fingerprint": manifest.base_fingerprint,
        "fingerprint": manifest.dataset_fingerprint,
        "generation": manifest.generation,
        "compacted_generation": manifest.compacted_generation,
        "deltas": [
            {
                "generation": entry.get("generation"),
                "file": entry.get("file"),
                "inserts": entry.get("inserts"),
                "deletes": entry.get("deletes"),
                "applied_at": entry.get("applied_at"),
                "compacted": entry.get("compacted", False),
            }
            for entry in manifest.deltas
        ],
        "graph": {"vertices": graph.num_vertices, "edges": graph.num_edges},
    }
    exit_code = 0
    if args.verify:
        from repro.stats import build_statistics

        if manifest.build_config.get("mode") not in (None, "full"):
            if telemetry is not None:
                telemetry.finish(ok=False, error="workload-directed artifact")
            print(
                "repro updates replay: --verify needs a full-enumeration "
                "artifact (workload-directed builds have no recorded "
                "workload to rebuild from)",
                file=sys.stderr,
            )
            return 2
        try:
            loaded = StatisticsStore.load(args.stats_dir)
            cold = build_statistics(
                graph,
                config_from_manifest(manifest),
                dataset_name=manifest.dataset_name,
            )
        except ReproError as error:
            if telemetry is not None:
                telemetry.finish(ok=False, error=str(error))
            print(f"repro updates replay: {error}", file=sys.stderr)
            return 2
        checks = {
            "markov": loaded.markov.to_artifact()
            == cold.markov.to_artifact(),
            "degrees": loaded.degrees.to_artifact()
            == cold.degrees.to_artifact(),
        }
        if loaded.characteristic_sets is not None:
            fresh = cold.characteristic_sets
            checks["characteristic_sets"] = (
                fresh is not None
                and loaded.characteristic_sets.to_artifact()
                == fresh.to_artifact()
            )
        report["verified"] = checks
        # Catalogs present in the artifact that a cross-process cold
        # rebuild cannot reproduce byte-for-byte are listed explicitly,
        # never silently passed: SumRDF buckets by the per-process
        # hash; cycle rates are a resampled statistic; entropy entries
        # are primed in workload order the artifact does not record.
        skipped = []
        if loaded.sumrdf is not None:
            skipped.append("sumrdf")
        if loaded.cycle_rates is not None:
            skipped.append("cycle_rates")
        if loaded.entropy is not None:
            skipped.append("entropy")
        report["skipped"] = skipped
        if not all(checks.values()):
            exit_code = 1
    if telemetry is not None:
        telemetry.finish(
            ok=exit_code == 0,
            stats_dir=str(args.stats_dir),
            generation=manifest.generation,
            verified=args.verify,
        )
    print(json.dumps(report, indent=2 if args.indent else None))
    return exit_code


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``repro serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the multi-tenant estimation server over prebuilt "
            "statistics artifacts (NDJSON over TCP; see repro.server)."
        ),
    )
    parser.add_argument(
        "--tenant", action="append", default=[], metavar="NAME=DIR",
        help="register one tenant serving the artifact in DIR "
             "(repeatable; at least one required)",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7421,
                        help="TCP port (default 7421; 0 picks a free port, "
                             "printed in the ready line)")
    parser.add_argument("--max-inflight", type=int, default=8,
                        help="estimation requests computed concurrently "
                             "(default 8)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="admitted requests allowed to wait beyond "
                             "--max-inflight before shedding (default 64)")
    parser.add_argument("--deadline-ms", type=float, default=30_000.0,
                        help="default per-request deadline, queue time "
                             "included (default 30000)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="run a supervised fleet of N worker processes "
                             "sharing the port (SO_REUSEPORT), artifacts "
                             "loaded once pre-fork; 0 (default) serves "
                             "single-process in this process")
    parser.add_argument("--mmap", action="store_true",
                        help="memory-map flat-layout artifacts zero-copy "
                             "instead of parsing them into private pages "
                             "(legacy JSON layouts are refused with a "
                             "pointer at 'repro stats repack')")
    parser.add_argument("--no-shared-plane", action="store_true",
                        help="fleet mode only: disable the /dev/shm shared "
                             "statistics plane (one parsed artifact image "
                             "per host) and give every worker its own "
                             "private parse")
    parser.add_argument("--trace-log", default=None, metavar="PATH",
                        help="write per-request trace + slow-query records "
                             "as NDJSON to PATH (size-rotated at 32 MiB; "
                             "append-safe across fleet workers; default: no "
                             "trace log)")
    parser.add_argument("--trace-log-keep", type=int, default=1, metavar="N",
                        help="rotated trace-log generations to keep "
                             "(PATH.1 .. PATH.N, oldest discarded; "
                             "default 1)")
    parser.add_argument("--slow-query-ms", type=float, default=500.0,
                        help="capture requests slower than this in the "
                             "slow-query log (default 500; 0 disables "
                             "slow-query capture entirely)")
    parser.add_argument("--audit-rate", type=float, default=0.0,
                        help="fraction of served estimates the background "
                             "audit probe re-runs against WanderJoin ground "
                             "truth, publishing per-estimator q-error "
                             "histograms (default 0 = off)")
    parser.add_argument("--audit-tenant", default=None, metavar="NAME",
                        help="restrict the audit probe to one reference "
                             "tenant (default: any tenant whose manifest "
                             "names a loadable dataset)")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="disable request tracing, the trace log, "
                             "slow-query capture and the audit probe "
                             "(metrics counters stay on; the overhead "
                             "benchmark's baseline)")
    return parser


def run_serve(argv: list[str]) -> int:
    """The ``repro serve`` subcommand; returns a process exit code."""
    import asyncio
    import signal

    from repro.server import EstimationServer, ServerConfig, StoreRegistry

    args = build_serve_parser().parse_args(argv)
    if not args.tenant:
        print(
            "repro serve: at least one --tenant NAME=DIR is required",
            file=sys.stderr,
        )
        return 2
    plane = None
    if args.workers > 0 and not args.no_shared_plane:
        # Fleet mode: reloads fan out across N workers, so route them
        # through the per-host shared image — one parse, N attaches.
        from repro.stats.shm import SharedArtifactPlane

        plane = SharedArtifactPlane.create()
    registry = StoreRegistry(plane=plane, mmap=args.mmap)
    for item in args.tenant:
        name, separator, path = item.partition("=")
        if not separator or not name or not path:
            print(
                f"repro serve: bad --tenant {item!r}; expected NAME=DIR",
                file=sys.stderr,
            )
            return 2
        try:
            registry.load(name, path)
        except ReproError as error:
            print(f"repro serve: tenant {name!r}: {error}", file=sys.stderr)
            return 2
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
            default_deadline_ms=args.deadline_ms,
            telemetry=not args.no_telemetry,
            trace_log=args.trace_log,
            trace_log_keep=args.trace_log_keep,
            slow_query_ms=args.slow_query_ms,
            audit_rate=args.audit_rate,
            audit_tenant=args.audit_tenant,
        )
    except ValueError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("repro serve: --workers must be >= 0", file=sys.stderr)
        return 2
    if args.workers:
        # Fleet mode: the registry above was loaded pre-fork on purpose —
        # workers inherit the artifact pages copy-on-write.
        from repro.server import FleetSupervisor

        supervisor = FleetSupervisor(registry, config, workers=args.workers)
        try:
            supervisor.start()
        except (ReproError, OSError, RuntimeError) as error:
            registry.release_shared()
            print(f"repro serve: {error}", file=sys.stderr)
            return 1
        return supervisor.run()

    # Single-process serving: the loaded artifacts are immortal, so
    # freezing them keeps gen-2 collections from traversing the whole
    # statistics heap mid-request (the fleet supervisor does the same
    # pre-fork; see repro.server.fleet).
    import gc

    gc.collect()
    gc.freeze()

    async def serve() -> int:
        server = EstimationServer(registry, config)
        host, port = await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        # One machine-readable ready line so wrappers (CI, the load
        # benchmark) can wait for startup and discover a --port 0 bind.
        print(
            json.dumps(
                {
                    "event": "ready",
                    "host": host,
                    "port": port,
                    "tenants": registry.names(),
                }
            ),
            flush=True,
        )
        await server.run_until_shutdown()
        print(json.dumps({"event": "stopped"}), flush=True)
        return 0

    return asyncio.run(serve())


def build_query_parser() -> argparse.ArgumentParser:
    """The ``repro query`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro query",
        description=(
            "Query a running estimation server (the blocking client of "
            "'repro serve') and print a JSON report."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="server host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7421,
                        help="server port (default 7421)")
    parser.add_argument("--tenant", default=None, metavar="NAME",
                        help="tenant to estimate against (required for "
                             "queries and --reload)")
    parser.add_argument(
        "-q", "--query", action="append", default=[], metavar="PATTERN",
        help="a query in arrow syntax (repeatable)",
    )
    parser.add_argument(
        "--file", type=str, default=None, metavar="PATH",
        help="file with one query per line ('-' for stdin; '#' comments ok)",
    )
    parser.add_argument(
        "-e", "--estimator", action="append", default=[], metavar="NAME",
        help="estimator name ('all9' expands to the nine heuristics); "
             "repeatable (default: max-hop-max)",
    )
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline sent to the server "
                             "(overrides --timeout)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="client-side deadline in seconds: sent to the "
                             "server as the per-request deadline (unless "
                             "--deadline-ms overrides it) and enforced on "
                             "the socket with a small grace; expiry exits 3 "
                             "(default: 60s socket timeout, server-default "
                             "deadline)")
    parser.add_argument("--stats", action="store_true",
                        help="print the server's stats snapshot instead of "
                             "estimating")
    parser.add_argument("--metrics", action="store_true",
                        help="print the server's metrics as Prometheus text "
                             "exposition (fleet-merged when the server runs "
                             "workers) instead of estimating")
    parser.add_argument("--reload", metavar="DIR", default=None,
                        dest="reload_path", nargs="?", const="",
                        help="hot-reload --tenant from DIR (or its current "
                             "directory when DIR is omitted)")
    parser.add_argument("--apply-deltas", action="store_true",
                        help="refresh --tenant live from the delta chain "
                             "appended to its artifact by "
                             "'repro updates apply'")
    parser.add_argument("--allow-fingerprint-change", action="store_true",
                        help="let --reload repoint the tenant at an artifact "
                             "of a different dataset")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the server to drain and exit")
    parser.add_argument("--indent", action="store_true",
                        help="pretty-print the JSON report")
    return parser


def run_query(argv: list[str]) -> int:
    """The ``repro query`` subcommand; returns a process exit code."""
    from repro.server import (
        EstimationClient,
        ServerError,
        ServerUnavailable,
    )

    args = build_query_parser().parse_args(argv)
    indent = 2 if args.indent else None
    modes = [
        bool(args.stats),
        bool(args.metrics),
        args.reload_path is not None,
        bool(args.apply_deltas),
        bool(args.shutdown),
        bool(args.query or args.file),
    ]
    if sum(modes) != 1:
        print(
            "repro query: choose exactly one of --stats, --metrics, "
            "--reload, --apply-deltas, --shutdown, or queries (-q/--file)",
            file=sys.stderr,
        )
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print("repro query: --timeout must be positive", file=sys.stderr)
        return 2
    # --timeout is the client-side deadline: it rides to the server as
    # the per-request deadline (so expiry comes back as a typed
    # deadline_exceeded, exit 3) while the socket timeout gets a small
    # grace on top so the server's answer can still arrive; a socket
    # that stays silent past the grace is ServerUnavailable — exit 3 too.
    deadline_ms = args.deadline_ms
    if deadline_ms is None and args.timeout is not None:
        deadline_ms = args.timeout * 1000.0
    socket_timeout = 60.0 if args.timeout is None else args.timeout + 2.0
    try:
        with EstimationClient(
            args.host, args.port, timeout=socket_timeout
        ) as client:
            if args.stats:
                print(json.dumps(client.stats(), indent=indent))
                return 0
            if args.metrics:
                # Raw Prometheus text, scrapeable as-is: pipe it to a
                # file and point a Prometheus textfile collector at it.
                print(client.metrics().get("exposition", ""), end="")
                return 0
            if args.shutdown:
                print(json.dumps(client.shutdown(), indent=indent))
                return 0
            if args.apply_deltas:
                if args.tenant is None:
                    print(
                        "repro query: --apply-deltas needs --tenant",
                        file=sys.stderr,
                    )
                    return 2
                result = client.apply_deltas(args.tenant)
                print(json.dumps(result, indent=indent))
                return 0
            if args.reload_path is not None:
                if args.tenant is None:
                    print(
                        "repro query: --reload needs --tenant",
                        file=sys.stderr,
                    )
                    return 2
                result = client.reload(
                    args.tenant,
                    path=args.reload_path or None,
                    allow_fingerprint_change=args.allow_fingerprint_change,
                )
                print(json.dumps(result, indent=indent))
                return 0
            if args.tenant is None:
                print("repro query: queries need --tenant", file=sys.stderr)
                return 2
            try:
                specs = _resolve_specs(args.estimator)
            except ValueError as error:
                print(f"repro query: {error}", file=sys.stderr)
                return 2
            try:
                texts = _read_queries(args)
            except OSError as error:
                print(
                    f"repro query: cannot read query file: {error}",
                    file=sys.stderr,
                )
                return 2
            if not texts:
                print(
                    "repro query: no queries given (use -q or --file)",
                    file=sys.stderr,
                )
                return 2
            estimators = [spec.name for spec in specs]
            results = []
            failed_cells = False
            for text in texts:
                result = client.estimate(
                    args.tenant,
                    text,
                    estimators=estimators,
                    deadline_ms=deadline_ms,
                )
                failed_cells = failed_cells or bool(result.get("errors"))
                results.append(result)
            report = {
                "server": f"{args.host}:{args.port}",
                "tenant": args.tenant,
                "estimators": estimators,
                "num_queries": len(results),
                "results": results,
            }
            print(json.dumps(report, indent=indent))
            return 1 if failed_cells else 0
    except ServerError as error:
        print(f"repro query: {error}", file=sys.stderr)
        return error.exit_code
    except ServerUnavailable as error:
        print(f"repro query: {error}", file=sys.stderr)
        return 3


def build_obs_parser() -> argparse.ArgumentParser:
    """The ``repro obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description=(
            "Analyse the observability plane's NDJSON logs (server "
            "--trace-log output and the batch verbs' job traces): "
            "'summarize' rolls up request counts and p50/p95/p99 "
            "latency with the slow-query table, 'spans' profiles self "
            "time per stage with coalesce fan-in and the top offenders, "
            "'audit' reports the q-error distribution per estimator and "
            "shape class, 'grep' reassembles one trace id across fleet "
            "workers."
        ),
    )
    parser.add_argument(
        "command", choices=["summarize", "spans", "audit", "grep"],
        help="which analysis to run",
    )
    parser.add_argument("logs", nargs="+", type=Path, metavar="LOG",
                        help="NDJSON trace-log path(s); each path's "
                             "rotated backups (LOG.1 .. LOG.N) are read "
                             "too, oldest first")
    parser.add_argument("--top", type=int, default=10, metavar="K",
                        help="rows in the top-K tables (slow queries, "
                             "span offenders, worst audits; default 10)")
    parser.add_argument("--trace-id", default=None, metavar="ID",
                        help="the trace to reassemble (grep only)")
    parser.add_argument("--no-rotated", action="store_true",
                        help="read only the named files, not their "
                             "rotated backups")
    parser.add_argument("--indent", action="store_true",
                        help="pretty-print the JSON report")
    return parser


def run_obs(argv: list[str]) -> int:
    """The ``repro obs`` subcommand; returns a process exit code."""
    from repro.obs.analyze import (
        audit_report,
        grep_trace,
        load_records,
        span_profile,
        summarize,
    )

    args = build_obs_parser().parse_args(argv)
    if args.command == "grep" and not args.trace_id:
        print("repro obs grep: --trace-id is required", file=sys.stderr)
        return 2
    missing = [
        str(path) for path in args.logs
        if not path.exists()
        and not path.with_name(f"{path.name}.1").exists()
    ]
    if missing:
        print(
            f"repro obs: no such trace log: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    records = load_records(args.logs, include_rotated=not args.no_rotated)
    if args.command == "summarize":
        report = summarize(records, top=args.top)
    elif args.command == "spans":
        report = span_profile(records, top=args.top)
    elif args.command == "audit":
        report = audit_report(records, top=args.top)
    else:
        report = grep_trace(records, args.trace_id)
    print(json.dumps(report, indent=2 if args.indent else None))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiment(s), stats/serve/query command, or batch."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "batch":
        return run_batch(argv[1:])
    if argv and argv[0] == "stats":
        return run_stats(argv[1:])
    if argv and argv[0] == "updates":
        return run_updates(argv[1:])
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "query":
        return run_query(argv[1:])
    if argv and argv[0] == "obs":
        return run_obs(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    config = ExperimentConfig(
        scale=args.scale,
        per_template=args.per_template,
        seed=args.seed,
        h=args.h,
    )
    chosen = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    for name in chosen:
        started = time.perf_counter()
        _, rendered = EXPERIMENTS[name](config)
        elapsed = time.perf_counter() - started
        print(rendered)
        print(f"[{name} done in {elapsed:.1f}s]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(rendered, encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
