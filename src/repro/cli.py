"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro list
    python -m repro table2
    python -m repro fig9  --scale 0.08 --per-template 2
    python -m repro all   --scale 0.05 --per-template 1 --out results/

Each experiment prints its table; ``--out DIR`` additionally writes one
``.txt`` per experiment.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import (
    ExperimentConfig,
    figure9_acyclic_space,
    figure10_cyclic_triangles,
    figure11_large_cycles,
    figure12_bound_sketch,
    figure13_summary_comparison,
    figure14_wanderjoin,
    figure15_plan_quality,
    table1_markov_example,
    table2_datasets,
)

EXPERIMENTS = {
    "table1": lambda config: table1_markov_example(),
    "table2": table2_datasets,
    "fig9": figure9_acyclic_space,
    "fig10": figure10_cyclic_triangles,
    "fig11": figure11_large_cycles,
    "fig12": figure12_bound_sketch,
    "fig13": figure13_summary_comparison,
    "fig14": figure14_wanderjoin,
    "fig15": figure15_plan_quality,
}


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which experiment to run ('list' to enumerate)",
    )
    parser.add_argument("--scale", type=float, default=0.08,
                        help="dataset scale factor (default 0.08)")
    parser.add_argument("--per-template", type=int, default=2,
                        help="workload instances per template (default 2)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--h", type=int, default=3,
                        help="Markov table size for the estimator space")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write result tables into")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiment(s); returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    config = ExperimentConfig(
        scale=args.scale,
        per_template=args.per_template,
        seed=args.seed,
        h=args.h,
    )
    chosen = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    for name in chosen:
        started = time.perf_counter()
        _, rendered = EXPERIMENTS[name](config)
        elapsed = time.perf_counter() - started
        print(rendered)
        print(f"[{name} done in {elapsed:.1f}s]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(rendered, encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
