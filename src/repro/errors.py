"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PatternError(ReproError):
    """A query pattern is malformed (e.g. duplicate edge, bad variable)."""


class DisconnectedPatternError(PatternError):
    """An operation required a connected pattern but got a disconnected one."""


class MissingStatisticError(ReproError):
    """A statistic required by an estimator is absent from the catalog."""


class EstimationError(ReproError):
    """An estimator could not produce an estimate for a query."""


class CountBudgetExceeded(ReproError):
    """Exact counting exceeded its step budget (the caller's 'timeout')."""


class PlanningError(ReproError):
    """The join-order planner could not build a plan."""


class DatasetError(ReproError):
    """A dataset file or preset is invalid."""
