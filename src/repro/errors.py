"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PatternError(ReproError):
    """A query pattern is malformed (e.g. duplicate edge, bad variable)."""


class DisconnectedPatternError(PatternError):
    """An operation required a connected pattern but got a disconnected one."""


class MissingStatisticError(ReproError):
    """A statistic required by an estimator is absent from the catalog."""


class EstimationError(ReproError):
    """An estimator could not produce an estimate for a query."""


class CountBudgetExceeded(ReproError):
    """Exact counting exceeded its step budget (the caller's 'timeout')."""


class PlanningError(ReproError):
    """The join-order planner could not build a plan."""


class DatasetError(ReproError):
    """A dataset file or preset is invalid."""


class BuildInterrupted(ReproError):
    """A statistics build stopped early with its checkpoint saved.

    Raised by ``build_statistics(..., stop_after_level=k)`` after the
    checkpoint for level ``k`` is durable; rerunning with ``resume=True``
    picks up from that level instead of recounting.
    """


def check_format_version(payload: dict, expected: int, what: str) -> None:
    """Validate an artifact payload's ``format_version`` field.

    Shared by every persistable catalog and summary.  Raises a friendly
    :class:`DatasetError` (never a ``KeyError``) when the field is
    missing or does not match ``expected``.
    """
    found = payload.get("format_version")
    if found is None:
        raise DatasetError(
            f"{what}: missing 'format_version' field (file predates the "
            f"versioned artifact format; rebuild it with this version)"
        )
    if found != expected:
        raise DatasetError(
            f"{what}: format_version {found!r} is not supported "
            f"(this build reads version {expected}); rebuild the artifact"
        )
