"""repro — Cardinality Estimation Graphs (CEG) for join cardinality estimation.

A from-scratch reproduction of "Accurate Summary-based Cardinality
Estimation Through the Lens of Cardinality Estimation Graphs" (VLDB 2022):
the CEG framework, the optimistic estimator space over CEG_O/CEG_OCR, the
pessimistic MOLP/CBS estimators over CEG_M, the bound-sketch optimization,
all evaluation baselines, and a benchmark harness regenerating every table
and figure of the paper's evaluation.  See README.md for a tour and
DESIGN.md for the system inventory.
"""

from repro.baselines import (
    CharacteristicSetsEstimator,
    Rdf3xDefaultEstimator,
    SumRdfEstimator,
    WanderJoinEstimator,
)
from repro.catalog import CycleClosingRates, DegreeCatalog, MarkovTable
from repro.core import (
    MolpEstimator,
    OptimisticEstimator,
    PStarOracle,
    agm_bound,
    all_nine_estimators,
    build_ceg_m,
    build_ceg_o,
    build_ceg_ocr,
    cbs_bound,
    dbplp_bound,
    molp_bound,
    molp_sketch_bound,
    optimistic_sketch_estimate,
)
from repro.datasets import load_dataset
from repro.engine import count_pattern
from repro.graph import LabeledDiGraph, generate_graph
from repro.query import QueryEdge, QueryPattern, parse_pattern
from repro.server import EstimationClient, EstimationServer, StoreRegistry
from repro.service import BatchResult, EstimationSession, EstimatorSpec
from repro.stats import StatisticsStore, StatsBuildConfig, build_statistics

__version__ = "1.0.0"

__all__ = [
    "LabeledDiGraph",
    "generate_graph",
    "load_dataset",
    "QueryEdge",
    "QueryPattern",
    "parse_pattern",
    "count_pattern",
    "MarkovTable",
    "DegreeCatalog",
    "CycleClosingRates",
    "OptimisticEstimator",
    "PStarOracle",
    "MolpEstimator",
    "all_nine_estimators",
    "build_ceg_o",
    "build_ceg_ocr",
    "build_ceg_m",
    "molp_bound",
    "agm_bound",
    "cbs_bound",
    "dbplp_bound",
    "molp_sketch_bound",
    "optimistic_sketch_estimate",
    "CharacteristicSetsEstimator",
    "SumRdfEstimator",
    "WanderJoinEstimator",
    "Rdf3xDefaultEstimator",
    "EstimationSession",
    "EstimatorSpec",
    "BatchResult",
    "StatisticsStore",
    "StatsBuildConfig",
    "build_statistics",
    "StoreRegistry",
    "EstimationServer",
    "EstimationClient",
    "__version__",
]
