"""Baseline estimators compared against in §6: CS, SumRDF, WJ, RDF-3X."""

from repro.baselines.characteristic_sets import CharacteristicSetsEstimator
from repro.baselines.rdf3x_default import Rdf3xDefaultEstimator
from repro.baselines.sumrdf import SumRdfEstimator
from repro.baselines.wanderjoin import WanderJoinEstimator

__all__ = [
    "CharacteristicSetsEstimator",
    "SumRdfEstimator",
    "WanderJoinEstimator",
    "Rdf3xDefaultEstimator",
]
