"""WanderJoin (WJ) sampling estimator [Li, Wu, Yi, Zhao, SIGMOD 2016],
as used by G-CARE and §6.5.

WJ samples random walks over the query's atoms in a fixed walk order
(a spanning order of the query graph): the first atom is a uniformly
random edge of its relation, each subsequent tree atom extends the walk
through a uniformly random matching edge, and closure atoms act as
existence filters.  Each completed walk contributes the product of the
candidate counts along the way (a Horvitz–Thompson weight), which is an
unbiased estimate of the join size; failed walks contribute zero.

The sampling ratio ``r`` determines the number of walks:
``max(1, round(r * |R_first|))``, matching the paper's setup where WJ
samples a fraction of the edges matching the starting atom.
"""

from __future__ import annotations

import random
import time

from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern
from repro.query.shape import spanning_tree_and_closures

__all__ = ["WanderJoinEstimator"]


class WanderJoinEstimator:
    """Random-walk cardinality estimator."""

    def __init__(self, graph: LabeledDiGraph, seed: int = 0):
        self.graph = graph
        self.rng = random.Random(seed)

    def _walk_order(self, query: QueryPattern) -> list[int]:
        """Tree atoms (smallest starting relation first) then closures."""
        tree, closures = spanning_tree_and_closures(query)
        if not tree:
            return closures
        # Start from the tree atom with the smallest relation: lower
        # variance per walk for the same number of samples.
        best = min(tree, key=lambda i: self.graph.cardinality(query.edges[i].label))
        # Re-grow the walk order from `best` so every subsequent atom
        # touches an already-bound variable.
        ordered = [best]
        bound = set(query.edges[best].variables())
        remaining = set(tree) - {best}
        while remaining:
            nxt = next(
                (
                    i
                    for i in sorted(remaining)
                    if query.edges[i].src in bound or query.edges[i].dst in bound
                ),
                None,
            )
            if nxt is None:  # disconnected tree part (connected queries: never)
                nxt = min(remaining)
            ordered.append(nxt)
            bound.update(query.edges[nxt].variables())
            remaining.discard(nxt)
        return ordered + closures

    def _single_walk(self, query: QueryPattern, order: list[int]) -> float:
        binding: dict[str, int] = {}
        weight = 1.0
        for position, index in enumerate(order):
            edge = query.edges[index]
            if edge.label not in self.graph:
                return 0.0
            relation = self.graph.relation(edge.label)
            src_bound = edge.src in binding
            dst_bound = edge.dst in binding
            if position == 0:
                pick = self.rng.randrange(relation.size)
                u = int(relation.src_by_src[pick])
                v = int(relation.dst_by_src[pick])
                if edge.src == edge.dst and u != v:
                    return 0.0
                binding[edge.src] = u
                binding[edge.dst] = v
                weight = float(relation.size)
            elif src_bound and dst_bound:
                if not relation.has_edge(
                    binding[edge.src], binding[edge.dst], self.graph.num_vertices
                ):
                    return 0.0
            elif src_bound:
                candidates = relation.out_neighbors(binding[edge.src])
                if candidates.size == 0:
                    return 0.0
                binding[edge.dst] = int(
                    candidates[self.rng.randrange(candidates.size)]
                )
                weight *= float(candidates.size)
            else:
                candidates = relation.in_neighbors(binding[edge.dst])
                if candidates.size == 0:
                    return 0.0
                binding[edge.src] = int(
                    candidates[self.rng.randrange(candidates.size)]
                )
                weight *= float(candidates.size)
        return weight

    def estimate(self, query: QueryPattern, ratio: float = 0.005) -> float:
        """Mean Horvitz–Thompson weight over ``r * |R_first|`` walks."""
        if not 0.0 < ratio <= 1.0:
            raise ValueError("sampling ratio must be in (0, 1]")
        order = self._walk_order(query)
        first = query.edges[order[0]]
        base = self.graph.cardinality(first.label)
        if base == 0:
            return 0.0
        walks = max(1, round(ratio * base))
        total = 0.0
        for _ in range(walks):
            total += self._single_walk(query, order)
        return total / walks

    def timed_estimate(
        self, query: QueryPattern, ratio: float = 0.005
    ) -> tuple[float, float]:
        """(estimate, elapsed seconds) for the Figure-14 comparison."""
        started = time.perf_counter()
        value = self.estimate(query, ratio)
        return value, time.perf_counter() - started
