"""Characteristic Sets (CS) estimator [Neumann & Moerkotte, ICDE 2011].

CS groups vertices by their *characteristic set* — the set of distinct
**outgoing** edge labels, as in the original RDF-3X design — and stores,
per group, the vertex count and the total occurrences of each label.

An outgoing star is estimated by summing, over the characteristic sets
containing all the star's labels, the group count times the per-label
mean multiplicities.  Any other query is decomposed into one outgoing
star per source variable (§6.4: "Q is decomposed into multiple stars
s1..sk, and the estimates for each si is multiplied, which corresponds
to an independence assumption"); each shared variable contributes a
uniform-domain join selectivity ``1 / |subjects|`` (the G-CARE CS
behaviour).  That combination underestimates joins catastrophically on
real shapes, reproducing the paper's Figure-13 observation that CS "was
not competitive" with mean q-errors in the 1e5 range.
"""

from __future__ import annotations

from collections import defaultdict

from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = ["CharacteristicSetsEstimator"]


class CharacteristicSetsEstimator:
    """The CS summary and estimator (outgoing-label characteristic sets)."""

    def __init__(self, graph: LabeledDiGraph):
        self.graph = graph
        self._build()

    def _build(self) -> None:
        outgoing: dict[int, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for label in self.graph.labels:
            relation = self.graph.relation(label)
            for u in relation.src_by_src:
                outgoing[int(u)][label] += 1
        self.set_count: dict[frozenset[str], int] = defaultdict(int)
        self.set_occurrences: dict[frozenset[str], dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for _, labels in outgoing.items():
            charset = frozenset(labels)
            self.set_count[charset] += 1
            occurrences = self.set_occurrences[charset]
            for label, count in labels.items():
                occurrences[label] += count
        # The entity domain used for join selectivities: every vertex
        # that can be a star center (has at least one outgoing edge).
        self.num_subjects = max(len(outgoing), 1)

    @property
    def num_characteristic_sets(self) -> int:
        """Number of distinct characteristic sets in the summary."""
        return len(self.set_count)

    # ------------------------------------------------------------------
    # Star estimation
    # ------------------------------------------------------------------
    def estimate_star(self, labels: list[str]) -> float:
        """Expected matches of an outgoing star with the given labels."""
        needed = frozenset(labels)
        total = 0.0
        for charset, count in self.set_count.items():
            if not needed <= charset:
                continue
            occurrences = self.set_occurrences[charset]
            contribution = float(count)
            for label in labels:
                contribution *= occurrences[label] / count
            total += contribution
        return total

    # ------------------------------------------------------------------
    # General queries via star decomposition
    # ------------------------------------------------------------------
    def estimate(self, query: QueryPattern) -> float:
        """Cardinality estimate via star decomposition + independence."""
        stars: dict[str, list[str]] = defaultdict(list)
        for edge in query.edges:
            stars[edge.src].append(edge.label)
        estimate = 1.0
        for _, labels in stars.items():
            estimate *= self.estimate_star(labels)
        if estimate == 0.0:
            return 0.0
        # Every variable shared by k > 1 stars is an equi-join predicate
        # combined under a uniform entity domain: selectivity
        # 1/|subjects| per extra appearance.
        appearances: dict[str, int] = defaultdict(int)
        for center, labels in stars.items():
            star_vars = {center}
            for edge in query.edges:
                if edge.src == center:
                    star_vars.add(edge.dst)
            for var in star_vars:
                appearances[var] += 1
        for _, seen in appearances.items():
            if seen > 1:
                estimate /= float(self.num_subjects) ** (seen - 1)
        return estimate
