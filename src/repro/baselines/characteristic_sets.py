"""Characteristic Sets (CS) estimator [Neumann & Moerkotte, ICDE 2011].

CS groups vertices by their *characteristic set* — the set of distinct
**outgoing** edge labels, as in the original RDF-3X design — and stores,
per group, the vertex count and the total occurrences of each label.

An outgoing star is estimated by summing, over the characteristic sets
containing all the star's labels, the group count times the per-label
mean multiplicities.  Any other query is decomposed into one outgoing
star per source variable (§6.4: "Q is decomposed into multiple stars
s1..sk, and the estimates for each si is multiplied, which corresponds
to an independence assumption"); each shared variable contributes a
uniform-domain join selectivity ``1 / |subjects|`` (the G-CARE CS
behaviour).  That combination underestimates joins catastrophically on
real shapes, reproducing the paper's Figure-13 observation that CS "was
not competitive" with mean q-errors in the 1e5 range.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import check_format_version

from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = ["CharacteristicSetsEstimator", "CS_FORMAT_VERSION"]

CS_FORMAT_VERSION = 1


class CharacteristicSetsEstimator:
    """The CS summary and estimator (outgoing-label characteristic sets).

    The summary (set counts, per-label occurrences, subject count) is all
    estimation reads, so an estimator rebuilt from an artifact
    (:meth:`from_artifact`) serves without the graph.
    """

    def __init__(self, graph: LabeledDiGraph):
        self.graph = graph
        self._build()

    def _build(self) -> None:
        outgoing: dict[int, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for label in self.graph.labels:
            relation = self.graph.relation(label)
            for u in relation.src_by_src:
                outgoing[int(u)][label] += 1
        set_count: dict[frozenset[str], int] = defaultdict(int)
        set_occurrences: dict[frozenset[str], dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for _, labels in outgoing.items():
            charset = frozenset(labels)
            set_count[charset] += 1
            occurrences = set_occurrences[charset]
            for label, count in labels.items():
                occurrences[label] += count
        # Insert in sorted-label order so summary iteration (and hence
        # the float summation order of estimate_star) is identical for a
        # fresh build and an artifact round-trip.
        self.set_count: dict[frozenset[str], int] = defaultdict(int)
        self.set_occurrences: dict[frozenset[str], dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for charset in sorted(set_count, key=sorted):
            self.set_count[charset] = set_count[charset]
            occurrences = self.set_occurrences[charset]
            for label in sorted(set_occurrences[charset]):
                occurrences[label] = set_occurrences[charset][label]
        # The entity domain used for join selectivities: every vertex
        # that can be a star center (has at least one outgoing edge).
        self.num_subjects = max(len(outgoing), 1)

    @property
    def num_characteristic_sets(self) -> int:
        """Number of distinct characteristic sets in the summary."""
        return len(self.set_count)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_artifact(self) -> dict:
        """JSON-serialisable snapshot of the CS summary."""
        return {
            "format_version": CS_FORMAT_VERSION,
            "kind": "characteristic_sets",
            "num_subjects": self.num_subjects,
            "sets": [
                {
                    "labels": sorted(charset),
                    "count": count,
                    "occurrences": dict(
                        sorted(self.set_occurrences[charset].items())
                    ),
                }
                for charset, count in sorted(
                    self.set_count.items(), key=lambda item: sorted(item[0])
                )
            ],
        }

    @classmethod
    def from_artifact(cls, payload: dict) -> "CharacteristicSetsEstimator":
        """A graph-free estimator serving the artifact's summary."""
        check_format_version(
            payload, CS_FORMAT_VERSION, "characteristic sets summary"
        )
        estimator = cls.__new__(cls)
        estimator.graph = None
        estimator.set_count = defaultdict(int)
        estimator.set_occurrences = defaultdict(lambda: defaultdict(int))
        for entry in payload["sets"]:
            charset = frozenset(str(label) for label in entry["labels"])
            estimator.set_count[charset] = int(entry["count"])
            occurrences = estimator.set_occurrences[charset]
            for label, count in entry["occurrences"].items():
                occurrences[str(label)] = int(count)
        estimator.num_subjects = int(payload["num_subjects"])
        return estimator

    # ------------------------------------------------------------------
    # Star estimation
    # ------------------------------------------------------------------
    def estimate_star(self, labels: list[str]) -> float:
        """Expected matches of an outgoing star with the given labels."""
        needed = frozenset(labels)
        total = 0.0
        for charset, count in self.set_count.items():
            if not needed <= charset:
                continue
            occurrences = self.set_occurrences[charset]
            contribution = float(count)
            for label in labels:
                contribution *= occurrences[label] / count
            total += contribution
        return total

    # ------------------------------------------------------------------
    # General queries via star decomposition
    # ------------------------------------------------------------------
    def estimate(self, query: QueryPattern) -> float:
        """Cardinality estimate via star decomposition + independence."""
        stars: dict[str, list[str]] = defaultdict(list)
        for edge in query.edges:
            stars[edge.src].append(edge.label)
        estimate = 1.0
        for _, labels in stars.items():
            estimate *= self.estimate_star(labels)
        if estimate == 0.0:
            return 0.0
        # Every variable shared by k > 1 stars is an equi-join predicate
        # combined under a uniform entity domain: selectivity
        # 1/|subjects| per extra appearance.
        appearances: dict[str, int] = defaultdict(int)
        for center, labels in stars.items():
            star_vars = {center}
            for edge in query.edges:
                if edge.src == center:
                    star_vars.add(edge.dst)
            for var in star_vars:
                appearances[var] += 1
        for _, seen in appearances.items():
            if seen > 1:
                estimate /= float(self.num_subjects) ** (seen - 1)
        return estimate
