"""The RDF-3X-style default estimator used as the Figure-15 baseline.

§6.6 describes the open-source RDF-3X estimator as using "basic
statistics about the original triple counts and some 'magic' constants",
and measures it to be far less accurate than any of the nine optimistic
estimators (median q-error 127x underestimation on their WatDiv runs).

This reproduction multiplies relation cardinalities and applies a
per-join-variable uniform-domain selectivity ``magic / |V|`` for every
extra atom sharing the variable.  On skewed data the uniform-domain
assumption underestimates heavily, matching the paper's observation.
"""

from __future__ import annotations

from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = ["Rdf3xDefaultEstimator"]


class Rdf3xDefaultEstimator:
    """Triple counts + magic-constant join selectivities."""

    def __init__(self, graph: LabeledDiGraph, magic: float = 10.0):
        self.graph = graph
        self.magic = magic

    @property
    def name(self) -> str:
        """Display name used in reports."""
        return "rdf3x-default"

    def estimate(self, query: QueryPattern) -> float:
        """Triple-count product scaled by magic join selectivities."""
        estimate = 1.0
        for edge in query.edges:
            estimate *= float(self.graph.cardinality(edge.label))
        if estimate == 0.0:
            return 0.0
        domain = max(float(self.graph.num_vertices), 1.0)
        selectivity = min(self.magic / domain, 1.0)
        for var in query.variables:
            extra_atoms = query.degree(var) - 1
            if extra_atoms > 0:
                estimate *= selectivity ** extra_atoms
        return max(estimate, 1e-12)
