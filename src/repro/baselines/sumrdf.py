"""A SumRDF-style summary estimator [Stefanoni, Motik, Kostylev, WWW 2018].

SumRDF collapses the data graph into a summary of ``B`` buckets and
returns the *expected* cardinality of the query over all graphs
consistent with the summary — a uniformity assumption over possible
worlds (§6.4).  Vertices are bucketed by a hash of their incident
label signature (so structurally similar vertices share buckets); each
labeled bucket pair stores the edge count.

The expected count is a weighted homomorphism count over the summary:
every query-variable assignment to buckets contributes
``Π_atoms w(b1, b2, ℓ) / (n_b1 · n_b2) × Π_vars n_b``.  Acyclic queries
use a dense tree DP; cyclic queries fall back to bucket backtracking
with a step budget, surfacing :class:`CountBudgetExceeded` as the
"timeout" the paper reports for SumRDF on some workloads.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import CountBudgetExceeded, PatternError, check_format_version
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern
from repro.query.shape import spanning_tree_and_closures

__all__ = ["SumRdfEstimator", "SUMRDF_FORMAT_VERSION"]

SUMRDF_FORMAT_VERSION = 1


class SumRdfEstimator:
    """Summary-graph estimator with expected-value semantics.

    Estimation reads only the bucket sizes and per-label probability
    matrices, so an estimator rebuilt from an artifact
    (:meth:`from_artifact`) serves without the graph.  Persisting the
    summary additionally *stabilises* it: bucket assignment hashes label
    signatures with Python's per-process ``hash``, so two processes
    building from the same graph get different (equally valid) summaries
    — a saved artifact is the only way to serve the same one twice.
    """

    def __init__(self, graph: LabeledDiGraph, num_buckets: int = 64, seed: int = 0):
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.graph = graph
        self.num_buckets = num_buckets
        self._bucket_of = self._assign_buckets(seed)
        self._sizes = np.bincount(self._bucket_of, minlength=num_buckets).astype(
            np.float64
        )
        self._matrices: dict[str, np.ndarray] = {}
        for label in graph.labels:
            relation = graph.relation(label)
            weights = np.zeros((num_buckets, num_buckets))
            np.add.at(
                weights,
                (
                    self._bucket_of[relation.src_by_src],
                    self._bucket_of[relation.dst_by_src],
                ),
                1.0,
            )
            # Edge probability between two buckets: w / (n_b1 * n_b2).
            outer = np.outer(
                np.maximum(self._sizes, 1.0), np.maximum(self._sizes, 1.0)
            )
            self._matrices[label] = weights / outer

    def _assign_buckets(self, seed: int) -> np.ndarray:
        signature: dict[int, int] = defaultdict(int)
        for lid, label in enumerate(self.graph.labels):
            relation = self.graph.relation(label)
            for u in np.unique(relation.src_by_src):
                signature[int(u)] ^= hash(("out", lid)) & 0xFFFFFFFF
            for v in np.unique(relation.dst_by_src):
                signature[int(v)] ^= hash(("in", lid)) & 0xFFFFFFFF
        buckets = np.zeros(self.graph.num_vertices, dtype=np.int64)
        for vertex in range(self.graph.num_vertices):
            mixed = (signature.get(vertex, 0) * 2654435761 + seed) & 0xFFFFFFFF
            buckets[vertex] = mixed % self.num_buckets
        return buckets

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_artifact(self) -> dict:
        """Array-valued snapshot of the summary (NPZ-friendly).

        Values are numpy arrays plus scalars; :class:`repro.stats`
        writes them as one ``.npz`` member set.
        """
        labels = sorted(self._matrices)
        if labels:
            matrices = np.stack([self._matrices[label] for label in labels])
        else:
            matrices = np.zeros((0, self.num_buckets, self.num_buckets))
        return {
            "format_version": SUMRDF_FORMAT_VERSION,
            "kind": "sumrdf",
            "num_buckets": self.num_buckets,
            "sizes": self._sizes,
            "labels": labels,
            "matrices": matrices,
        }

    @classmethod
    def from_artifact(cls, payload: dict) -> "SumRdfEstimator":
        """A graph-free estimator serving the artifact's summary."""
        payload = dict(payload)
        if "format_version" in payload:
            # NPZ members come back as 0-d arrays; normalise for the check.
            payload["format_version"] = int(payload["format_version"])
        check_format_version(payload, SUMRDF_FORMAT_VERSION, "SumRDF summary")
        estimator = cls.__new__(cls)
        estimator.graph = None
        estimator.num_buckets = int(payload["num_buckets"])
        estimator._bucket_of = None
        estimator._sizes = np.asarray(payload["sizes"], dtype=np.float64)
        labels = [str(label) for label in payload["labels"]]
        matrices = np.asarray(payload["matrices"], dtype=np.float64)
        estimator._matrices = {
            label: matrices[index] for index, label in enumerate(labels)
        }
        return estimator

    def _matrix(self, label: str) -> np.ndarray:
        matrix = self._matrices.get(label)
        if matrix is None:
            return np.zeros((self.num_buckets, self.num_buckets))
        return matrix

    def estimate(self, query: QueryPattern, budget: int | None = 2_000_000) -> float:
        """Expected cardinality; raises CountBudgetExceeded on blow-up."""
        _, closures = spanning_tree_and_closures(query)
        if not closures:
            return self._estimate_acyclic(query)
        return self._estimate_cyclic(query, budget)

    # ------------------------------------------------------------------
    # Acyclic: dense message passing over buckets
    # ------------------------------------------------------------------
    def _estimate_acyclic(self, query: QueryPattern) -> float:
        root = query.variables[0]
        vectors: dict[str, np.ndarray] = {}

        def vector_for(var: str) -> np.ndarray:
            vec = vectors.get(var)
            if vec is None:
                vec = self._sizes.copy()
                vectors[var] = vec
            return vec

        order: list[tuple[str, str, int]] = []
        visited = {root}
        used: set[int] = set()
        stack = [root]
        while stack:
            var = stack.pop()
            for index in query.edges_at(var):
                if index in used:
                    continue
                edge = query.edges[index]
                other = edge.other_end(var)
                if other in visited:
                    raise PatternError("acyclic path hit a cycle")
                used.add(index)
                visited.add(other)
                order.append((var, other, index))
                stack.append(other)
        for parent, child, index in reversed(order):
            edge = query.edges[index]
            child_vec = vector_for(child)
            matrix = self._matrix(edge.label)
            if edge.src == parent:
                message = matrix @ child_vec
            else:
                message = matrix.T @ child_vec
            vectors[parent] = vector_for(parent) * message
        return float(vector_for(root).sum())

    # ------------------------------------------------------------------
    # Cyclic: bucket backtracking with budget
    # ------------------------------------------------------------------
    def _estimate_cyclic(self, query: QueryPattern, budget: int | None) -> float:
        variables = list(query.variables)
        spent = 0

        def recurse(position: int, binding: dict[str, int], weight: float) -> float:
            nonlocal spent
            if position == len(variables):
                return weight
            var = variables[position]
            constraints: list[tuple[np.ndarray, int, bool]] = []
            for index in query.edges_at(var):
                edge = query.edges[index]
                other = edge.other_end(var)
                if other == var:
                    constraints.append((self._matrix(edge.label), -1, True))
                    continue
                if other in binding:
                    constraints.append(
                        (self._matrix(edge.label), binding[other], edge.src == var)
                    )
            values = self._sizes.copy()
            for matrix, other_bucket, var_is_src in constraints:
                if other_bucket == -1:
                    values = values * np.diag(matrix)
                elif var_is_src:
                    values = values * matrix[:, other_bucket]
                else:
                    values = values * matrix[other_bucket, :]
            if budget is not None:
                spent += self.num_buckets
                if spent > budget:
                    raise CountBudgetExceeded("SumRDF estimate timed out")
            if position == len(variables) - 1:
                return weight * float(values.sum())
            total = 0.0
            for bucket in np.nonzero(values)[0]:
                binding[var] = int(bucket)
                total += recurse(
                    position + 1, binding, weight * float(values[bucket])
                )
            binding.pop(var, None)
            return total

        # Count each bucket's weight once per variable: the per-variable
        # size factor is folded into `values` above at binding time; for
        # edges counted from both endpoints we must avoid double
        # multiplication, so constraints only look at already-bound
        # neighbours (each atom applied exactly once).
        return recurse(0, {}, 1.0)
