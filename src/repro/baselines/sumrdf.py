"""A SumRDF-style summary estimator [Stefanoni, Motik, Kostylev, WWW 2018].

SumRDF collapses the data graph into a summary of ``B`` buckets and
returns the *expected* cardinality of the query over all graphs
consistent with the summary — a uniformity assumption over possible
worlds (§6.4).  Vertices are bucketed by a hash of their incident
label signature (so structurally similar vertices share buckets); each
labeled bucket pair stores the edge count.

The expected count is a weighted homomorphism count over the summary:
every query-variable assignment to buckets contributes
``Π_atoms w(b1, b2, ℓ) / (n_b1 · n_b2) × Π_vars n_b``.  Acyclic queries
use a dense tree DP; cyclic queries fall back to bucket backtracking
with a step budget, surfacing :class:`CountBudgetExceeded` as the
"timeout" the paper reports for SumRDF on some workloads.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import CountBudgetExceeded, PatternError
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern
from repro.query.shape import spanning_tree_and_closures

__all__ = ["SumRdfEstimator"]


class SumRdfEstimator:
    """Summary-graph estimator with expected-value semantics."""

    def __init__(self, graph: LabeledDiGraph, num_buckets: int = 64, seed: int = 0):
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.graph = graph
        self.num_buckets = num_buckets
        self._bucket_of = self._assign_buckets(seed)
        self._sizes = np.bincount(self._bucket_of, minlength=num_buckets).astype(
            np.float64
        )
        self._matrices: dict[str, np.ndarray] = {}
        for label in graph.labels:
            relation = graph.relation(label)
            weights = np.zeros((num_buckets, num_buckets))
            np.add.at(
                weights,
                (
                    self._bucket_of[relation.src_by_src],
                    self._bucket_of[relation.dst_by_src],
                ),
                1.0,
            )
            # Edge probability between two buckets: w / (n_b1 * n_b2).
            outer = np.outer(
                np.maximum(self._sizes, 1.0), np.maximum(self._sizes, 1.0)
            )
            self._matrices[label] = weights / outer

    def _assign_buckets(self, seed: int) -> np.ndarray:
        signature: dict[int, int] = defaultdict(int)
        for lid, label in enumerate(self.graph.labels):
            relation = self.graph.relation(label)
            for u in np.unique(relation.src_by_src):
                signature[int(u)] ^= hash(("out", lid)) & 0xFFFFFFFF
            for v in np.unique(relation.dst_by_src):
                signature[int(v)] ^= hash(("in", lid)) & 0xFFFFFFFF
        buckets = np.zeros(self.graph.num_vertices, dtype=np.int64)
        for vertex in range(self.graph.num_vertices):
            mixed = (signature.get(vertex, 0) * 2654435761 + seed) & 0xFFFFFFFF
            buckets[vertex] = mixed % self.num_buckets
        return buckets

    def _matrix(self, label: str) -> np.ndarray:
        matrix = self._matrices.get(label)
        if matrix is None:
            return np.zeros((self.num_buckets, self.num_buckets))
        return matrix

    def estimate(self, query: QueryPattern, budget: int | None = 2_000_000) -> float:
        """Expected cardinality; raises CountBudgetExceeded on blow-up."""
        _, closures = spanning_tree_and_closures(query)
        if not closures:
            return self._estimate_acyclic(query)
        return self._estimate_cyclic(query, budget)

    # ------------------------------------------------------------------
    # Acyclic: dense message passing over buckets
    # ------------------------------------------------------------------
    def _estimate_acyclic(self, query: QueryPattern) -> float:
        root = query.variables[0]
        vectors: dict[str, np.ndarray] = {}

        def vector_for(var: str) -> np.ndarray:
            vec = vectors.get(var)
            if vec is None:
                vec = self._sizes.copy()
                vectors[var] = vec
            return vec

        order: list[tuple[str, str, int]] = []
        visited = {root}
        used: set[int] = set()
        stack = [root]
        while stack:
            var = stack.pop()
            for index in query.edges_at(var):
                if index in used:
                    continue
                edge = query.edges[index]
                other = edge.other_end(var)
                if other in visited:
                    raise PatternError("acyclic path hit a cycle")
                used.add(index)
                visited.add(other)
                order.append((var, other, index))
                stack.append(other)
        for parent, child, index in reversed(order):
            edge = query.edges[index]
            child_vec = vector_for(child)
            matrix = self._matrix(edge.label)
            if edge.src == parent:
                message = matrix @ child_vec
            else:
                message = matrix.T @ child_vec
            vectors[parent] = vector_for(parent) * message
        return float(vector_for(root).sum())

    # ------------------------------------------------------------------
    # Cyclic: bucket backtracking with budget
    # ------------------------------------------------------------------
    def _estimate_cyclic(self, query: QueryPattern, budget: int | None) -> float:
        variables = list(query.variables)
        spent = 0

        def recurse(position: int, binding: dict[str, int], weight: float) -> float:
            nonlocal spent
            if position == len(variables):
                return weight
            var = variables[position]
            constraints: list[tuple[np.ndarray, int, bool]] = []
            for index in query.edges_at(var):
                edge = query.edges[index]
                other = edge.other_end(var)
                if other == var:
                    constraints.append((self._matrix(edge.label), -1, True))
                    continue
                if other in binding:
                    constraints.append(
                        (self._matrix(edge.label), binding[other], edge.src == var)
                    )
            values = self._sizes.copy()
            for matrix, other_bucket, var_is_src in constraints:
                if other_bucket == -1:
                    values = values * np.diag(matrix)
                elif var_is_src:
                    values = values * matrix[:, other_bucket]
                else:
                    values = values * matrix[other_bucket, :]
            if budget is not None:
                spent += self.num_buckets
                if spent > budget:
                    raise CountBudgetExceeded("SumRDF estimate timed out")
            if position == len(variables) - 1:
                return weight * float(values.sum())
            total = 0.0
            for bucket in np.nonzero(values)[0]:
                binding[var] = int(bucket)
                total += recurse(
                    position + 1, binding, weight * float(values[bucket])
                )
            binding.pop(var, None)
            return total

        # Count each bucket's weight once per variable: the per-variable
        # size factor is folded into `values` above at binding time; for
        # edges counted from both endpoints we must avoid double
        # multiplication, so constraints only look at already-bound
        # neighbours (each atom applied exactly once).
        return recurse(0, {}, 1.0)
