"""A small thread-safe LRU cache with hit/miss/eviction accounting.

The estimation service keeps two of these (canonical shape → CEG
skeleton, and (canonical shape, estimator config) → estimate).  Both are
read from worker threads, so every operation takes the cache's lock; the
values themselves are immutable once published (CEGs are built fully
before insertion) which keeps the critical sections tiny.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

__all__ = ["CacheStats", "LRUCache"]

V = TypeVar("V")


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (NaN when unused)."""
        if self.lookups == 0:
            return float("nan")
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float | int]:
        """JSON-friendly representation (used by the ``batch`` CLI)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": None if self.lookups == 0 else self.hit_rate,
        }


class LRUCache(Generic[V]):
    """Bounded mapping with least-recently-used eviction and counters."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("LRU capacity must be >= 1")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, V] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> V | None:
        """The cached value (refreshing its recency), or None on a miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: Hashable) -> V | None:
        """Like :meth:`get` but touching neither counters nor recency.

        Used for the double-checked re-read after taking a build lock,
        so one logical miss is not accounted twice.
        """
        with self._lock:
            return self._data.get(key)

    def probe(self, key: Hashable) -> V | None:
        """A hit behaves exactly like :meth:`get`; a miss is uncounted.

        The serving fast path answers warm requests straight off the
        cache without dispatching a worker thread.  When the probe
        misses, the ``get`` inside the real computation records the one
        logical miss, so lookup accounting stays exact either way.
        """
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: V) -> None:
        """Insert (or refresh) a key, evicting the LRU entry at capacity."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            if len(self._data) >= self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1
            self._data[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test that does not touch recency or counters."""
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        """Snapshot the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                capacity=self.capacity,
            )
