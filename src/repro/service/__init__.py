"""Batched estimation service: canonical-shape caching over the estimators."""

from repro.service.lru import CacheStats, LRUCache
from repro.service.session import (
    BatchItem,
    BatchResult,
    EstimationSession,
    EstimatorSpec,
    SessionEstimator,
    SessionStats,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "BatchItem",
    "BatchResult",
    "EstimationSession",
    "EstimatorSpec",
    "SessionEstimator",
    "SessionStats",
]
