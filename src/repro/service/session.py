"""Batched estimation sessions with canonical-shape caching.

Real workloads are dominated by repeated query *shapes*: the same
template instantiated with fresh variable names (and often the same
labels) arrives over and over.  The seed estimators rebuild their CEG
and re-read catalog statistics for every such arrival.  An
:class:`EstimationSession` instead canonicalizes each incoming
:class:`~repro.query.pattern.QueryPattern` via
:func:`repro.query.canonical.canonical_key` and serves estimates through
two LRU caches:

* **skeleton cache** — canonical shape → built ``CEG_O``/``CEG_OCR``,
  so structurally-identical queries never re-run the CEG construction;
* **estimate cache** — (canonical shape, estimator config) → estimate,
  so they never re-run the path DP either.

``CEG_M`` has no materialised skeleton (MOLP explores it lazily); its
expensive shared state — the degree statistics of small joins — already
lives in :class:`~repro.catalog.degrees.DegreeCatalog`, which the
session holds once and reuses across the batch, and finished bounds land
in the estimate cache like everything else.

Because every estimator in this library computes from the *canonical*
pattern (see :meth:`repro.core.estimators.OptimisticEstimator.build_ceg`),
a cached estimate is bit-for-bit the value a fresh estimator would
produce — caching is observationally invisible, which the property tests
in ``tests/test_service_property.py`` enforce.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.degrees import DegreeCatalog
from repro.catalog.markov import MarkovTable
from repro.core.bound_sketch import molp_sketch_bound
from repro.core.ceg import CEG
from repro.core.ceg_m import molp_bound
from repro.core.ceg_o import build_ceg_o
from repro.core.paths import (
    AGGREGATOR_CHOICES,
    PATH_LENGTH_CHOICES,
    estimate_from_ceg,
)
from repro.errors import ReproError
from repro.graph.digraph import LabeledDiGraph
from repro.query.canonical import canonical_key, canonical_pattern
from repro.query.pattern import QueryPattern
from repro.service.lru import CacheStats, LRUCache
from repro.stats.store import StatisticsStore

__all__ = [
    "EstimatorSpec",
    "SessionStats",
    "BatchItem",
    "BatchResult",
    "SessionEstimator",
    "EstimationSession",
]

OPTIMISTIC_NAMES = tuple(
    f"{'all-hops' if hop == 'all' else hop + '-hop'}-{agg}"
    for hop in PATH_LENGTH_CHOICES
    for agg in AGGREGATOR_CHOICES
)


@dataclass(frozen=True)
class EstimatorSpec:
    """One estimator configuration a session can serve.

    ``kind`` selects the family: ``"optimistic"`` is a point of the §4.2
    space over ``CEG_O``/``CEG_OCR`` (``path_length`` × ``aggregator``,
    plus ``use_cycle_rates`` for the §4.3 variant); ``"molp"`` is the
    pessimistic MOLP bound (``sketch_budget > 1`` enables the §5.3 bound
    sketch).
    """

    kind: str = "optimistic"
    path_length: str = "max"
    aggregator: str = "max"
    use_cycle_rates: bool = False
    sketch_budget: int = 1

    def __post_init__(self):
        if self.kind not in ("optimistic", "molp"):
            raise ValueError(f"unknown estimator kind {self.kind!r}")
        if self.kind == "optimistic":
            if self.path_length not in PATH_LENGTH_CHOICES:
                raise ValueError(
                    f"path_length must be one of {PATH_LENGTH_CHOICES}"
                )
            if self.aggregator not in AGGREGATOR_CHOICES:
                raise ValueError(
                    f"aggregator must be one of {AGGREGATOR_CHOICES}"
                )
        if self.sketch_budget < 1:
            raise ValueError("sketch_budget must be >= 1")

    @property
    def name(self) -> str:
        """Paper-style label (``max-hop-max``, ``MOLP``, ``MOLP-sketch4``)."""
        if self.kind == "molp":
            if self.sketch_budget > 1:
                return f"MOLP-sketch{self.sketch_budget}"
            return "MOLP"
        hop = (
            "all-hops" if self.path_length == "all" else f"{self.path_length}-hop"
        )
        suffix = "+ocr" if self.use_cycle_rates else ""
        return f"{hop}-{self.aggregator}{suffix}"

    @classmethod
    def from_name(cls, name: str) -> "EstimatorSpec":
        """Parse a paper-style label back into a spec."""
        if name == "MOLP":
            return cls(kind="molp")
        if name.startswith("MOLP-sketch"):
            budget_text = name[len("MOLP-sketch"):]
            try:
                budget = int(budget_text)
            except ValueError:
                raise ValueError(f"bad MOLP sketch budget in {name!r}") from None
            return cls(kind="molp", sketch_budget=budget)
        use_ocr = name.endswith("+ocr")
        base = name[:-4] if use_ocr else name
        head, _, aggregator = base.rpartition("-")
        hop = {"max-hop": "max", "min-hop": "min", "all-hops": "all"}.get(head)
        if hop is None or aggregator not in AGGREGATOR_CHOICES:
            raise ValueError(
                f"unknown estimator name {name!r}; expected one of "
                f"{OPTIMISTIC_NAMES + ('MOLP', 'MOLP-sketch<K>')} "
                "(optionally suffixed with '+ocr')"
            )
        return cls(
            kind="optimistic",
            path_length=hop,
            aggregator=aggregator,
            use_cycle_rates=use_ocr,
        )

    @classmethod
    def coerce(cls, value: "EstimatorSpec | str") -> "EstimatorSpec":
        """Accept either a spec object or a paper-style name."""
        if isinstance(value, EstimatorSpec):
            return value
        return cls.from_name(value)


@dataclass(frozen=True)
class SessionStats:
    """Snapshot of both session caches."""

    skeletons: CacheStats
    estimates: CacheStats

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """JSON-friendly representation."""
        return {
            "skeletons": self.skeletons.as_dict(),
            "estimates": self.estimates.as_dict(),
        }


@dataclass(frozen=True)
class BatchItem:
    """One (query, estimator) cell of a batch result."""

    index: int
    estimator: str
    estimate: float | None
    error: str | None
    seconds: float

    @property
    def ok(self) -> bool:
        """Whether estimation succeeded for this cell."""
        return self.error is None


@dataclass
class BatchResult:
    """All estimates of one :meth:`EstimationSession.estimate_batch` call.

    ``items`` is query-major and deterministic: the cell for query ``i``
    under the ``j``-th spec sits at ``items[i * len(specs) + j]``
    regardless of thread scheduling.
    """

    specs: list[str]
    num_queries: int
    items: list[BatchItem]
    wall_seconds: float
    stats: SessionStats

    def item(self, index: int, spec: str) -> BatchItem:
        """The cell for one query index and estimator name."""
        return self.items[index * len(self.specs) + self.specs.index(spec)]

    def estimates_for(self, spec: str) -> list[float | None]:
        """Per-query estimates (None where estimation failed) for a spec."""
        column = self.specs.index(spec)
        return [
            self.items[i * len(self.specs) + column].estimate
            for i in range(self.num_queries)
        ]

    @property
    def failures(self) -> list[BatchItem]:
        """Every cell whose estimation raised."""
        return [item for item in self.items if not item.ok]

    @property
    def ok(self) -> bool:
        """Whether every cell succeeded."""
        return not self.failures


@dataclass
class SessionEstimator:
    """Adapter exposing one spec of a session as an ``EstimatorLike``.

    Lets session-backed estimators drop into any code written against
    the ``estimate(query) -> float`` protocol (e.g.
    :func:`repro.experiments.harness.run_harness`).
    """

    session: "EstimationSession"
    spec: EstimatorSpec

    @property
    def name(self) -> str:
        """The spec's paper-style label."""
        return self.spec.name

    def estimate(self, query: QueryPattern) -> float:
        """Cached estimate for one query."""
        return self.session.estimate(query, self.spec)


class EstimationSession:
    """A multi-query estimation service over one graph's statistics.

    Parameters
    ----------
    graph:
        The data graph.  May be None when a ``store`` is supplied: the
        session then serves purely from the store's artifacts and never
        touches a base graph (the §6 deployment shape) — ``MOLP-sketch``
        specs, which re-partition base relations, are rejected.
    h:
        Markov-table size for the optimistic estimators.
    molp_h:
        Join-statistics size for the MOLP degree catalog.
    cycle_rates:
        Optional sampled cycle-closing rates enabling ``+ocr`` specs
        (defaults to the store's rates when a store is given).
    markov:
        An existing Markov table to reuse (built lazily otherwise).
    store:
        A prebuilt :class:`~repro.stats.StatisticsStore` supplying the
        Markov table, degree catalog and cycle rates; its ``h`` and
        ``molp_h`` take precedence.
    skeleton_capacity / estimate_capacity:
        LRU capacities of the two caches.
    max_workers:
        Default thread count for :meth:`estimate_batch` (None lets the
        executor decide; 1 forces serial execution).
    count_impl:
        Cyclic-core counter used by a lazily-built Markov table
        (``"vectorized"`` by default; ``"python"`` selects the legacy
        backtracker, e.g. for benchmark baselines).  Ignored when an
        existing ``markov`` or ``store`` is supplied.
    """

    def __init__(
        self,
        graph: LabeledDiGraph | None,
        h: int = 3,
        molp_h: int = 2,
        cycle_rates: CycleClosingRates | None = None,
        markov: MarkovTable | None = None,
        skeleton_capacity: int = 512,
        estimate_capacity: int = 4096,
        max_workers: int | None = None,
        max_rows: int | None = 5_000_000,
        store: StatisticsStore | None = None,
        count_impl: str | None = None,
    ):
        catalog: DegreeCatalog | None = None
        if store is not None:
            if graph is None:
                graph = store.graph
            markov = store.markov
            h = store.markov.h
            molp_h = store.degrees.h
            catalog = store.degrees
            if cycle_rates is None:
                cycle_rates = store.cycle_rates
        elif graph is None and markov is None:
            raise ValueError(
                "EstimationSession needs a graph, a Markov table, or a "
                "statistics store"
            )
        self.graph = graph
        self.store = store
        self.h = h
        self.molp_h = molp_h
        self.cycle_rates = cycle_rates
        self.markov = (
            markov
            if markov is not None
            else MarkovTable(graph, h=h, count_impl=count_impl)
        )
        self.max_workers = max_workers
        self.max_rows = max_rows
        self._skeletons: LRUCache[CEG] = LRUCache(skeleton_capacity)
        self._estimates: LRUCache[float] = LRUCache(estimate_capacity)
        self._build_lock = threading.Lock()
        self._catalog: DegreeCatalog | None = catalog
        self._catalog_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Cached building blocks
    # ------------------------------------------------------------------
    def ceg_for(self, pattern: QueryPattern, use_cycle_rates: bool = False) -> CEG:
        """The shape-cached ``CEG_O`` (or ``CEG_OCR``) of a pattern.

        The CEG is built from the pattern's canonical form, so all
        variable renamings of one shape share a single skeleton.
        """
        if use_cycle_rates and self.cycle_rates is None:
            raise ValueError(
                "CEG_OCR skeletons need a session built with cycle_rates"
            )
        rates = self.cycle_rates if use_cycle_rates else None
        key = (canonical_key(pattern), rates is not None)
        cached = self._skeletons.get(key)
        if cached is not None:
            return cached
        with self._build_lock:
            cached = self._skeletons.peek(key)
            if cached is not None:
                return cached
            built = build_ceg_o(
                canonical_pattern(pattern), self.markov, cycle_rates=rates
            )
            self._skeletons.put(key, built)
            return built

    def _degree_catalog(self) -> DegreeCatalog:
        with self._catalog_lock:
            if self._catalog is None:
                self._catalog = DegreeCatalog(
                    self.graph, h=self.molp_h, max_rows=self.max_rows
                )
            return self._catalog

    def validate_spec(self, spec: EstimatorSpec) -> None:
        """Reject specs this session cannot serve (caller error).

        Raises ``ValueError`` — the request is misconfigured, not a
        per-query data problem.  The server maps this onto its
        ``unsupported_spec`` wire error before admitting a request.
        """
        if spec.use_cycle_rates and self.cycle_rates is None:
            raise ValueError(
                f"spec {spec.name!r} needs cycle rates but the session has none"
            )
        if spec.kind == "molp" and spec.sketch_budget > 1 and self.graph is None:
            raise ValueError(
                f"spec {spec.name!r} partitions base relations and needs a "
                "data graph; a statistics-only session serves plain MOLP"
            )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(
        self, pattern: QueryPattern, spec: EstimatorSpec | str = "max-hop-max"
    ) -> float:
        """Cached estimate of one query under one estimator config.

        Raises the same :class:`~repro.errors.ReproError` subclasses a
        fresh estimator would (errors are never cached).
        """
        spec = EstimatorSpec.coerce(spec)
        self.validate_spec(spec)
        key = (canonical_key(pattern), spec)
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        if spec.kind == "optimistic":
            ceg = self.ceg_for(pattern, use_cycle_rates=spec.use_cycle_rates)
            value = estimate_from_ceg(ceg, spec.path_length, spec.aggregator)
        else:
            shape = canonical_pattern(pattern)
            if spec.sketch_budget > 1:
                value = molp_sketch_bound(
                    self.graph,
                    shape,
                    spec.sketch_budget,
                    h=self.molp_h,
                    max_rows=self.max_rows,
                    catalog=self._degree_catalog(),
                )
            else:
                value = molp_bound(shape, self._degree_catalog())
        self._estimates.put(key, value)
        return value

    def peek_estimates(
        self, pattern: QueryPattern, specs: Sequence[EstimatorSpec]
    ) -> dict[str, float] | None:
        """Cached floats for *every* spec, or None when any is missing.

        The non-blocking probe behind the server's warm fast path: an
        all-hit request is answered on the event loop without a worker
        thread.  The floats are the exact objects :meth:`estimate`
        cached, so callers see bit-identical values either way; errors
        are never cached, so an all-hit probe implies no per-query
        failures.  Specs must already be validated.
        """
        shape = canonical_key(pattern)
        out: dict[str, float] = {}
        for spec in specs:
            cached = self._estimates.probe((shape, spec))
            if cached is None:
                return None
            out[spec.name] = cached
        return out

    def estimate_one(
        self, pattern: QueryPattern, spec: EstimatorSpec | str = "max-hop-max"
    ) -> BatchItem:
        """One (query, spec) cell with errors captured, not raised.

        The coalescing-friendly single-item entry point the network
        server fans out over: per-query data failures come back as
        :attr:`BatchItem.error` (exactly as a batch cell would report
        them) while spec misconfiguration still raises ``ValueError``
        up front.  Thread-safe, like :meth:`estimate`.
        """
        spec = EstimatorSpec.coerce(spec)
        self.validate_spec(spec)
        started = time.perf_counter()
        try:
            value: float | None = self.estimate(pattern, spec)
            error = None
        except ReproError as exc:
            value = None
            error = f"{type(exc).__name__}: {exc}"
        return BatchItem(
            index=0,
            estimator=spec.name,
            estimate=value,
            error=error,
            seconds=time.perf_counter() - started,
        )

    def estimator(self, spec: EstimatorSpec | str) -> SessionEstimator:
        """An ``EstimatorLike`` adapter serving one spec from this session."""
        return SessionEstimator(self, EstimatorSpec.coerce(spec))

    def estimators(
        self, specs: Iterable[EstimatorSpec | str]
    ) -> dict[str, SessionEstimator]:
        """Adapters for several specs, keyed by their names."""
        adapters = [self.estimator(spec) for spec in specs]
        return {adapter.name: adapter for adapter in adapters}

    def estimate_batch(
        self,
        patterns: Sequence[QueryPattern],
        specs: Sequence[EstimatorSpec | str] = ("max-hop-max",),
        max_workers: int | None = None,
    ) -> BatchResult:
        """Estimate every pattern under every spec, in parallel.

        Work is fanned out over a thread pool but results come back in
        deterministic query-major order (query index, then spec order),
        independent of scheduling.  Per-cell failures are captured as
        :attr:`BatchItem.error` instead of aborting the batch.
        """
        spec_objs = [EstimatorSpec.coerce(spec) for spec in specs]
        if len({spec.name for spec in spec_objs}) != len(spec_objs):
            raise ValueError("duplicate estimator specs in batch")
        # Spec misconfiguration is a caller error, not per-query data:
        # reject it before fan-out so it cannot surface as a mid-batch
        # ValueError escaping the per-cell ReproError capture.
        for spec in spec_objs:
            self.validate_spec(spec)
        tasks = [
            (index, pattern, spec)
            for index, pattern in enumerate(patterns)
            for spec in spec_objs
        ]

        def run_one(task: tuple[int, QueryPattern, EstimatorSpec]) -> BatchItem:
            index, pattern, spec = task
            started = time.perf_counter()
            try:
                value: float | None = self.estimate(pattern, spec)
                error = None
            except ReproError as exc:
                value = None
                error = f"{type(exc).__name__}: {exc}"
            return BatchItem(
                index=index,
                estimator=spec.name,
                estimate=value,
                error=error,
                seconds=time.perf_counter() - started,
            )

        workers = max_workers if max_workers is not None else self.max_workers
        wall_started = time.perf_counter()
        if workers is not None and workers <= 1:
            items = [run_one(task) for task in tasks]
        else:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                items = list(executor.map(run_one, tasks))
        return BatchResult(
            specs=[spec.name for spec in spec_objs],
            num_queries=len(patterns),
            items=items,
            wall_seconds=time.perf_counter() - wall_started,
            stats=self.stats(),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> SessionStats:
        """Hit/miss/eviction snapshot of both caches.

        Thread-safe: each cache snapshots its counters under its own
        lock (the two snapshots are not taken atomically together, so a
        concurrent estimate may land between them — fine for the
        monitoring/introspection surfaces this feeds).
        """
        return SessionStats(
            skeletons=self._skeletons.stats(),
            estimates=self._estimates.stats(),
        )

    def clear_caches(self) -> None:
        """Drop both caches (counters survive, statistics tables stay)."""
        self._skeletons.clear()
        self._estimates.clear()
