"""The bound-sketch optimization (§5.2.1) and its application to
optimistic estimators (§5.2.2).

Given a budget ``K``, the relations are hash-partitioned on a set ``S``
of join attributes and the query is split into ``K`` subqueries whose
estimates are summed.  For MOLP, ``S`` is derived from the minimum-weight
``CEG_M`` path: the join attributes *not* introduced by a bound edge
(one whose inequality conditions on a non-empty ``X``).  For optimistic
estimators the paper partitions on the formula's join attributes; since
every max-hop formula touches all of them, we use the full join-attribute
set, which makes the partitioning path-independent.

Partition statistics are computed on the filtered subgraphs, mirroring
§5.2.2's workload-driven statistics collection ("we worked backwards
from the queries ... and ensured our Markov table has these necessary
statistics").
"""

from __future__ import annotations

from repro.catalog.degrees import DegreeCatalog
from repro.catalog.markov import MarkovTable
from repro.catalog.partitioned import BoundSketchPartitioner
from repro.core.ceg_m import MolpEdge, molp_bound, molp_min_path
from repro.core.ceg_o import build_ceg_o
from repro.core.paths import estimate_from_ceg
from repro.errors import EstimationError
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = [
    "join_attributes",
    "sketch_attributes",
    "molp_sketch_bound",
    "optimistic_sketch_estimate",
]


def join_attributes(query: QueryPattern) -> frozenset[str]:
    """Variables shared by at least two atoms."""
    return frozenset(
        var for var in query.variables if query.degree(var) >= 2
    )


def sketch_attributes(
    query: QueryPattern, path: list[MolpEdge]
) -> frozenset[str]:
    """§5.2.1 Step 1: join attributes not extended through a bound edge."""
    bound_extensions: set[str] = set()
    for edge in path:
        if edge.is_bound:
            bound_extensions |= edge.extension_attrs
    return join_attributes(query) - bound_extensions


def molp_sketch_bound(
    graph: LabeledDiGraph,
    query: QueryPattern,
    budget: int,
    h: int = 2,
    max_rows: int | None = 5_000_000,
    catalog: DegreeCatalog | None = None,
) -> float:
    """MOLP with bound sketch: sum of per-partition MOLP bounds.

    ``budget = 1`` degenerates to plain MOLP.  The summed bound is
    clamped by the direct bound (partitioning is guaranteed not to make
    the estimate worse — reference [5]).

    ``catalog`` reuses an existing whole-graph degree catalog (its ``h``
    and ``max_rows`` take precedence) instead of materialising a fresh
    one; the per-partition catalogs are always fresh since they describe
    different subgraphs.
    """
    if catalog is None:
        catalog = DegreeCatalog(graph, h=h, max_rows=max_rows)
    direct, path = molp_min_path(query, catalog)
    if budget <= 1 or direct == 0.0:
        return direct
    attrs = sketch_attributes(query, path)
    if not attrs:
        return direct
    partitioner = BoundSketchPartitioner(graph, budget)
    total = 0.0
    for subgraph, subquery in partitioner.subqueries(query, attrs):
        sub_catalog = DegreeCatalog(subgraph, h=h, max_rows=max_rows)
        total += molp_bound(subquery, sub_catalog)
    return min(total, direct)


def optimistic_sketch_estimate(
    graph: LabeledDiGraph,
    query: QueryPattern,
    budget: int,
    h: int = 2,
    path_length: str = "max",
    aggregator: str = "max",
    count_budget: int | None = None,
    markov: MarkovTable | None = None,
) -> float:
    """An optimistic estimate refined with the bound sketch (§5.2.2).

    ``markov`` reuses an existing whole-graph table (its ``h`` takes
    precedence) for the unpartitioned paths; per-partition tables are
    always fresh since they describe different subgraphs.
    """
    attrs = join_attributes(query)
    if budget <= 1 or not attrs:
        if markov is None:
            markov = MarkovTable(graph, h=h, count_budget=count_budget)
        return estimate_from_ceg(
            build_ceg_o(query, markov), path_length, aggregator
        )
    partitioner = BoundSketchPartitioner(graph, budget)
    total = 0.0
    for subgraph, subquery in partitioner.subqueries(query, attrs):
        markov = MarkovTable(subgraph, h=h, count_budget=count_budget)
        try:
            total += estimate_from_ceg(
                build_ceg_o(subquery, markov), path_length, aggregator
            )
        except EstimationError:
            # An empty partition contributes nothing.
            continue
    return total
