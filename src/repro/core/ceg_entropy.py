"""The entropy-weighted CEG estimator sketched in the paper's §8.

Build ``CEG_O`` as usual, annotate every edge with the degree
*irregularity* of the uniformity assumption it makes (see
:mod:`repro.catalog.entropy`), then pick the bottom-to-top path whose
total irregularity is lowest — "trust the most regular formula" — and
return that path's estimate.  Ties break toward the larger estimate
(the paper's anti-underestimation default for acyclic queries).

This is an *extension* beyond the paper's evaluated contributions; the
ablation bench compares it against max-hop-max and the P* oracle.
"""

from __future__ import annotations

from repro.catalog.entropy import EntropyCatalog
from repro.catalog.markov import MarkovTable
from repro.core.ceg import CEG
from repro.core.ceg_o import build_ceg_o
from repro.errors import EstimationError
from repro.query.pattern import QueryPattern

__all__ = ["LowestEntropyEstimator", "lowest_entropy_estimate"]


def _edge_irregularity(
    query: QueryPattern,
    edge_description: str,
    source: frozenset[int],
    target: frozenset[int],
    entropy: EntropyCatalog,
) -> float:
    """Irregularity of one CEG_O edge, reconstructed from its endpoints.

    The extension pattern is not stored on the edge, so the tightest
    reconstruction is the union of the new atoms with the intersection
    variables they condition on — the set of shared variables between
    the old and new parts.
    """
    new_atoms = target - source
    if not new_atoms or not source:
        return 0.0
    old_vars = query.variables_of(source)
    new_vars = query.variables_of(new_atoms)
    shared = frozenset(old_vars & new_vars)
    return entropy.irregularity(
        extension_pattern(query, new_atoms, source), shared
    )


def extension_pattern(
    query: QueryPattern, new_atoms: frozenset[int], source: frozenset[int]
) -> QueryPattern:
    """The new atoms plus the source atoms adjacent to them.

    This approximates the CEG edge's (E = D ∪ I) extension join closely
    enough for an irregularity score while staying Markov-table sized.
    """
    adjacent: set[int] = set(new_atoms)
    new_vars = query.variables_of(new_atoms)
    for index in source:
        edge = query.edges[index]
        if edge.src in new_vars or edge.dst in new_vars:
            adjacent.add(index)
    return query.subpattern(adjacent)


def lowest_entropy_estimate(
    query: QueryPattern,
    markov: MarkovTable,
    entropy: EntropyCatalog,
) -> float:
    """The estimate of the minimum-total-irregularity (∅, Q) path."""
    ceg = build_ceg_o(query, markov)
    return _select_path(ceg, query, entropy)


def _select_path(ceg: CEG, query: QueryPattern, entropy: EntropyCatalog) -> float:
    best: dict[object, tuple[float, float]] = {ceg.source: (0.0, 1.0)}
    for node in ceg.topological_order():
        state = best.get(node)
        if state is None:
            continue
        irregularity, estimate = state
        for edge in ceg.out_edges(node):
            step = _edge_irregularity(
                query, edge.description, node, edge.target, entropy
            )
            candidate = (irregularity + step, estimate * edge.rate)
            current = best.get(edge.target)
            if (
                current is None
                or candidate[0] < current[0] - 1e-12
                or (
                    abs(candidate[0] - current[0]) <= 1e-12
                    and candidate[1] > current[1]
                )
            ):
                best[edge.target] = candidate
    state = best.get(ceg.target)
    if state is None:
        raise EstimationError("no (∅, Q) path in the entropy-weighted CEG")
    return state[1]


class LowestEntropyEstimator:
    """§8's 'lowest entropy path' estimator over ``CEG_O``."""

    def __init__(self, markov: MarkovTable, entropy: EntropyCatalog | None = None):
        self.markov = markov
        self.entropy = entropy or EntropyCatalog(markov.graph)

    @property
    def name(self) -> str:
        """Display name used in reports."""
        return "lowest-entropy"

    def estimate(self, query: QueryPattern) -> float:
        """Estimate via the minimum-irregularity CEG_O path."""
        return lowest_entropy_estimate(query, self.markov, self.entropy)
