"""The CEG framework: optimistic and pessimistic estimators."""

from repro.core.agm import agm_bound
from repro.core.bound_sketch import (
    join_attributes,
    molp_sketch_bound,
    optimistic_sketch_estimate,
    sketch_attributes,
)
from repro.core.cbs import bounding_formula_value, cbs_bound, enumerate_coverages
from repro.core.ceg import CEG, CEGEdge
from repro.core.ceg_m import MolpEdge, build_ceg_m, molp_bound, molp_min_path
from repro.core.compiled import CompiledCEG, compile_ceg
from repro.core.ceg_entropy import LowestEntropyEstimator, lowest_entropy_estimate
from repro.core.ceg_o import build_ceg_o, build_ceg_ocr
from repro.core.dbplp import (
    best_dbplp_bound,
    dbplp_bound,
    default_cover,
    enumerate_covers,
)
from repro.core.estimators import (
    MolpEstimator,
    OptimisticEstimator,
    PStarOracle,
    all_nine_estimators,
    estimators_from_store,
)
from repro.core.molp import molp_lp_bound
from repro.core.paths import (
    AGGREGATOR_CHOICES,
    PATH_LENGTH_CHOICES,
    HopStats,
    distinct_estimates,
    estimate_from_ceg,
    hop_statistics,
    hop_statistics_compiled,
    min_weight_path,
)

__all__ = [
    "CEG",
    "CEGEdge",
    "CompiledCEG",
    "compile_ceg",
    "build_ceg_o",
    "build_ceg_ocr",
    "build_ceg_m",
    "MolpEdge",
    "molp_bound",
    "molp_min_path",
    "molp_lp_bound",
    "agm_bound",
    "dbplp_bound",
    "best_dbplp_bound",
    "default_cover",
    "enumerate_covers",
    "cbs_bound",
    "enumerate_coverages",
    "bounding_formula_value",
    "join_attributes",
    "sketch_attributes",
    "molp_sketch_bound",
    "optimistic_sketch_estimate",
    "OptimisticEstimator",
    "PStarOracle",
    "MolpEstimator",
    "LowestEntropyEstimator",
    "lowest_entropy_estimate",
    "all_nine_estimators",
    "estimators_from_store",
    "HopStats",
    "hop_statistics",
    "hop_statistics_compiled",
    "estimate_from_ceg",
    "distinct_estimates",
    "min_weight_path",
    "PATH_LENGTH_CHOICES",
    "AGGREGATOR_CHOICES",
]
