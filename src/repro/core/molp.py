"""MOLP as a literal linear program (§5.1), via ``scipy.optimize.linprog``.

This module exists to *machine-check the paper's theory*, not to
estimate: production estimation uses the combinatorial shortest-path
solution (:func:`repro.core.ceg_m.molp_bound`), which Observation 2 says
is possible.  The test suite asserts, on random instances, that

* the LP optimum equals the ``CEG_M`` minimum-weight path (Theorem 5.1);
* adding projection inequalities ``s_X ≤ s_Y`` leaves the optimum
  unchanged (Observation 3 / Appendix A).

The LP maximises ``s_A`` subject to ``s_∅ = 0`` and one extension
inequality per (attribute set ``W``, statistic relation ``R``,
``Y ⊆ attrs(R)``): ``s_{W∪Y} ≤ s_W + log2 deg(W ∩ Y, Y, R)``.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.catalog.degrees import DegreeCatalog
from repro.errors import EstimationError
from repro.query.pattern import QueryPattern

__all__ = ["molp_lp_bound"]

_MAX_LP_ATTRS = 14


def molp_lp_bound(
    query: QueryPattern,
    catalog: DegreeCatalog,
    include_projections: bool = False,
) -> float:
    """The MOLP optimum ``2^{s_A}`` solved numerically."""
    attrs = tuple(sorted(query.variables))
    n = len(attrs)
    if n > _MAX_LP_ATTRS:
        raise EstimationError(f"LP formulation limited to {_MAX_LP_ATTRS} attrs")
    relations = catalog.stat_relations(query)
    if any(relation.cardinality == 0 for relation in relations):
        return 0.0
    index_of = {attr: i for i, attr in enumerate(attrs)}

    def mask_of(subset) -> int:
        mask = 0
        for attr in subset:
            mask |= 1 << index_of[attr]
        return mask

    num_vars = 1 << n
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs: list[float] = []
    row = 0

    def add_row(greater: int, smaller: int, bound: float) -> None:
        nonlocal row
        rows.extend((row, row))
        cols.extend((greater, smaller))
        vals.extend((1.0, -1.0))
        rhs.append(bound)
        row += 1

    for relation in relations:
        rel_attrs = tuple(sorted(relation.attributes))
        for size in range(1, len(rel_attrs) + 1):
            for y in combinations(rel_attrs, size):
                y_set = frozenset(y)
                y_mask = mask_of(y_set)
                for w_mask in range(num_vars):
                    if y_mask & ~w_mask == 0:
                        continue  # Y ⊆ W: trivial inequality
                    x_set = frozenset(
                        a for a in y_set if w_mask >> index_of[a] & 1
                    )
                    degree = relation.deg(x_set, y_set)
                    if degree <= 0:
                        return 0.0
                    add_row(w_mask | y_mask, w_mask, math.log2(degree))
    if include_projections:
        for y_mask in range(num_vars):
            for bit in range(n):
                if y_mask >> bit & 1:
                    add_row(y_mask & ~(1 << bit), y_mask, 0.0)

    matrix = csr_matrix(
        (np.asarray(vals), (np.asarray(rows), np.asarray(cols))),
        shape=(row, num_vars),
    )
    objective = np.zeros(num_vars)
    objective[num_vars - 1] = -1.0  # maximise s_A
    bounds = [(0.0, 0.0)] + [(0.0, None)] * (num_vars - 1)
    result = linprog(
        objective,
        A_ub=matrix,
        b_ub=np.asarray(rhs),
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise EstimationError(f"MOLP LP failed: {result.message}")
    return float(2.0 ** (-result.fun))
