"""The DBPLP bound (reference [9], Appendix D).

DBPLP assigns one LP variable per attribute: for a cover ``C`` (a set of
``(R_j, A_j)`` pairs whose attribute sets jointly cover the query), it
minimises ``Σ_a v_a`` subject to, for every ``(R_j, A_j)`` and every
``A'_j ⊆ A_j``::

    Σ_{a ∈ A_j \\ A'_j} v_a  ≥  log2 deg(A'_j, A_j, R_j)

Corollary D.1 (MOLP ≤ DBPLP for every cover) is machine-checked in the
test suite by comparing this LP against :func:`repro.core.ceg_m.molp_bound`.
"""

from __future__ import annotations

import math
from itertools import combinations, product

import numpy as np
from scipy.optimize import linprog

from repro.catalog.degrees import DegreeCatalog
from repro.errors import EstimationError
from repro.query.pattern import QueryPattern

__all__ = ["dbplp_bound", "default_cover", "enumerate_covers", "best_dbplp_bound"]

Cover = list[tuple[int, frozenset[str]]]  # (atom index, covered attrs A_j)


def default_cover(query: QueryPattern) -> Cover:
    """Every atom covers all of its attributes (always a valid cover)."""
    return [
        (index, frozenset(edge.variables()))
        for index, edge in enumerate(query.edges)
    ]


def enumerate_covers(query: QueryPattern, limit: int = 5000) -> list[Cover]:
    """All covers built from per-atom attribute subsets (small queries).

    Each atom contributes one of: nothing, one endpoint, or both
    endpoints.  Combinations that fail to cover every variable are
    dropped.  ``limit`` caps the enumeration.
    """
    options: list[list[frozenset[str]]] = []
    for edge in query.edges:
        attrs = frozenset(edge.variables())
        atom_options = [frozenset()] + [frozenset({a}) for a in sorted(attrs)]
        atom_options.append(attrs)
        options.append(list(dict.fromkeys(atom_options)))
    covers: list[Cover] = []
    everything = set(query.variables)
    for combo in product(*options):
        covered = set().union(*combo) if combo else set()
        if covered != everything:
            continue
        covers.append(
            [(i, chosen) for i, chosen in enumerate(combo) if chosen]
        )
        if len(covers) >= limit:
            break
    return covers


def dbplp_bound(
    query: QueryPattern, catalog: DegreeCatalog, cover: Cover | None = None
) -> float:
    """The DBPLP bound ``2^{Σ v_a}`` for one cover."""
    if cover is None:
        cover = default_cover(query)
    variables = list(query.variables)
    index_of = {var: i for i, var in enumerate(variables)}
    rows: list[list[float]] = []
    rhs: list[float] = []
    for atom_index, covered in cover:
        relation = catalog.relation_for(query.subpattern([atom_index]))
        if relation.cardinality == 0:
            return 0.0
        covered_list = sorted(covered)
        for size in range(len(covered_list) + 1):
            for prime in combinations(covered_list, size):
                prime_set = frozenset(prime)
                payers = covered - prime_set
                if not payers:
                    continue
                degree = relation.deg(prime_set, covered)
                if degree <= 0:
                    return 0.0
                row = [0.0] * len(variables)
                for attr in payers:
                    row[index_of[attr]] = -1.0  # flip >= into <=
                rows.append(row)
                rhs.append(-math.log2(degree))
    result = linprog(
        np.ones(len(variables)),
        A_ub=np.asarray(rows),
        b_ub=np.asarray(rhs),
        bounds=[(None, None)] * len(variables),
        method="highs",
    )
    if not result.success:
        raise EstimationError(f"DBPLP LP failed: {result.message}")
    return float(2.0 ** result.fun)


def best_dbplp_bound(query: QueryPattern, catalog: DegreeCatalog) -> float:
    """Minimum DBPLP bound over the enumerable covers."""
    covers = enumerate_covers(query)
    if not covers:
        raise EstimationError("query admits no DBPLP cover")
    return min(dbplp_bound(query, catalog, cover) for cover in covers)
