"""The AGM bound (Atserias–Grohe–Marx, reference [4]).

The classic worst-case output-size bound using only relation
cardinalities: ``|Q| ≤ Π |R_i|^{x_i}`` minimised over fractional edge
covers ``x``.  Solved as a small LP.  Included as the baseline bound
that MOLP improves upon (§5).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import linprog

from repro.errors import EstimationError
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = ["agm_bound"]


def agm_bound(query: QueryPattern, graph: LabeledDiGraph) -> float:
    """``min_x Π |R_i|^{x_i}`` over fractional edge covers of the query."""
    cardinalities = [graph.cardinality(edge.label) for edge in query.edges]
    if any(c == 0 for c in cardinalities):
        return 0.0
    variables = list(query.variables)
    num_atoms = len(query)
    # Constraint per attribute: sum of x_i over covering atoms >= 1.
    matrix = np.zeros((len(variables), num_atoms))
    for column, edge in enumerate(query.edges):
        for row, var in enumerate(variables):
            if edge.touches(var):
                matrix[row, column] = -1.0
    objective = np.asarray([math.log2(c) for c in cardinalities])
    result = linprog(
        objective,
        A_ub=matrix,
        b_ub=-np.ones(len(variables)),
        bounds=[(0.0, None)] * num_atoms,
        method="highs",
    )
    if not result.success:
        raise EstimationError(f"AGM LP failed: {result.message}")
    return float(2.0 ** result.fun)
