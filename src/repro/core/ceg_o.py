"""``CEG_O`` — the CEG of optimistic estimators (§4.2), and its
cycle-closing-rate variant ``CEG_OCR`` (§4.3).

Vertices are connected subsets of the query's atoms.  An edge from ``S``
to ``S' = S ∪ D`` exists for every stored extension pattern ``E`` (a
connected Markov-table join) with ``D = E \\ S ≠ ∅`` and intersection
``I = E ∩ S ≠ ∅`` also stored; its rate is ``|E| / |I|`` — the average
number of ``E``-extensions per ``I``-match (the uniformity assumption).

Two rules from prior work shape the edge set:

* *size-h numerators*: extension patterns always have exactly
  ``min(h, |Q|)`` atoms when possible (largest stored join conditions on
  the most context), falling back to smaller ``E`` only when no size-h
  extension exists;
* *early cycle closing* (§4.2, from reference [20]): whenever some
  successor closes a cycle that ``S`` leaves open, only cycle-closing
  successors are kept.

``CEG_OCR`` replaces the rate of an edge whose single new atom completes
a cycle longer than ``h`` with the sampled cycle-closing probability
``P(E_{i-1} * E_{i+1} | E_i)`` (§4.3), falling back to the ``CEG_O``
rate when the statistic is unavailable.
"""

from __future__ import annotations

from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.markov import MarkovTable
from repro.core.ceg import CEG
from repro.errors import EstimationError
from repro.query.pattern import QueryPattern
from repro.query.shape import cycle_completions, cycles

__all__ = ["build_ceg_o", "build_ceg_ocr"]


def build_ceg_o(
    query: QueryPattern,
    markov: MarkovTable,
    cycle_rates: CycleClosingRates | None = None,
    size_h_rule: bool = True,
    early_cycle_closing: bool = True,
) -> CEG:
    """Build ``CEG_O`` (or ``CEG_OCR`` when ``cycle_rates`` is given).

    ``size_h_rule`` and ``early_cycle_closing`` toggle the two §4.2
    path-limiting rules (both on in the paper; off only for ablations).
    """
    if not query.is_connected():
        raise EstimationError("CEG_O requires a connected query")
    h = markov.h
    size = min(h, len(query))
    all_edges = frozenset(range(len(query)))
    stored = [
        subset
        for subset in query.connected_edge_subsets(max_size=h)
        if len(subset) == size or len(subset) < size
    ]
    by_size: dict[int, list[frozenset[int]]] = {}
    for subset in stored:
        by_size.setdefault(len(subset), []).append(subset)
    query_cycles = cycles(query)

    # Per-query caches: subset cardinalities and connectivity checks are
    # hit once per (node, extension) pair, so memoising by index set cuts
    # the dominant cost (canonical-key computation in the Markov table).
    card_cache: dict[frozenset[int], float] = {}
    conn_cache: dict[frozenset[int], bool] = {}

    def cardinality(subset: frozenset[int]) -> float:
        cached = card_cache.get(subset)
        if cached is None:
            cached = markov.cardinality(query.subpattern(subset))
            card_cache[subset] = cached
        return cached

    def connected(subset: frozenset[int]) -> bool:
        cached = conn_cache.get(subset)
        if cached is None:
            cached = query.is_connected_subset(subset)
            conn_cache[subset] = cached
        return cached

    ceg = CEG(source=frozenset(), target=all_edges)
    ceg.add_node(frozenset(), rank=0)
    seen: set[frozenset[int]] = {frozenset()}
    queue: list[frozenset[int]] = [frozenset()]
    while queue:
        node = queue.pop()
        if node == all_edges:
            continue
        for successor, rate, note in _successors(
            query, node, by_size, size, query_cycles,
            cardinality, connected, cycle_rates, h,
            size_h_rule, early_cycle_closing,
        ):
            if successor not in seen:
                seen.add(successor)
                ceg.add_node(successor, rank=len(successor))
                queue.append(successor)
            ceg.add_edge(node, successor, rate, note)
    if all_edges not in seen:
        raise EstimationError("CEG_O construction produced no complete path")
    return ceg


def _successors(
    query: QueryPattern,
    node: frozenset[int],
    by_size: dict[int, list[frozenset[int]]],
    size: int,
    query_cycles: list[frozenset[int]],
    cardinality,
    connected,
    cycle_rates: CycleClosingRates | None,
    h: int,
    size_h_rule: bool = True,
    early_cycle_closing: bool = True,
):
    candidates = _raw_candidates(
        query, node, by_size, size, cardinality, connected, size_h_rule
    )
    if cycle_rates is not None:
        # Must run before the early-cycle-closing filter: otherwise that
        # filter can leave only multi-atom closures, which would bypass
        # the rate-weighted k-1 -> k closing step.
        candidates = _drop_multi_atom_closures(
            node, candidates, query_cycles, h
        )
    if early_cycle_closing:
        candidates = _apply_early_cycle_closing(node, candidates, query_cycles)
    if cycle_rates is not None:
        candidates = _apply_cycle_rates(
            query, node, candidates, cycle_rates, h
        )
    return candidates


def _drop_multi_atom_closures(
    node: frozenset[int],
    candidates: list[tuple[frozenset[int], float, str]],
    query_cycles: list[frozenset[int]],
    h: int,
) -> list[tuple[frozenset[int], float, str]]:
    """Remove extensions that complete a large cycle with > 1 new atom.

    ``CEG_OCR`` prices cycle closure through the sampled probability of
    the single closing atom; a several-atoms-at-once completion would
    silently use the broken-open-path weights §4.3 warns about.  Falls
    back to the unfiltered list if nothing survives (degenerate shapes).
    """
    large_cycles = [c for c in query_cycles if len(c) > h]
    if not large_cycles:
        return candidates
    kept = [
        candidate
        for candidate in candidates
        if not any(
            cycle <= candidate[0] and len(cycle - node) > 1
            for cycle in large_cycles
        )
    ]
    return kept if kept else candidates


def _raw_candidates(
    query: QueryPattern,
    node: frozenset[int],
    by_size: dict[int, list[frozenset[int]]],
    size: int,
    cardinality,
    connected,
    size_h_rule: bool = True,
) -> list[tuple[frozenset[int], float, str]]:
    """(successor, rate, note) triples before rule filters."""
    result: list[tuple[frozenset[int], float, str]] = []
    if not node:
        for extension in by_size.get(size, []):
            result.append(
                (extension, cardinality(extension), f"|{sorted(extension)}|")
            )
        return result
    for want in range(size, 0, -1):
        for extension in by_size.get(want, []):
            difference = extension - node
            intersection = extension & node
            if not difference or not intersection:
                continue
            if not connected(intersection):
                continue
            numerator = cardinality(extension)
            denominator = cardinality(intersection)
            rate = numerator / denominator if denominator > 0 else 0.0
            note = f"|{sorted(extension)}|/|{sorted(intersection)}|"
            result.append((node | difference, rate, note))
        if result and size_h_rule:
            # Size-h numerator rule: only fall back to smaller extension
            # joins when no size-h extension exists at all.
            break
    return result


def _apply_early_cycle_closing(
    node: frozenset[int],
    candidates: list[tuple[frozenset[int], float, str]],
    query_cycles: list[frozenset[int]],
) -> list[tuple[frozenset[int], float, str]]:
    def closes_cycle(successor: frozenset[int]) -> bool:
        return any(
            cycle <= successor and not cycle <= node for cycle in query_cycles
        )

    closing = [c for c in candidates if closes_cycle(c[0])]
    return closing if closing else candidates


def _apply_cycle_rates(
    query: QueryPattern,
    node: frozenset[int],
    candidates: list[tuple[frozenset[int], float, str]],
    cycle_rates: CycleClosingRates,
    h: int,
) -> list[tuple[frozenset[int], float, str]]:
    """Swap closing-edge rates for sampled closing probabilities.

    When a single new atom would complete a large cycle, ``CEG_OCR``
    keeps only those single-atom closing extensions (with probability
    weights); other candidates would silently estimate the broken-open
    pattern that §4.3 shows overestimates.
    """
    completions = cycle_completions(query, node, h)
    if not completions:
        return candidates
    replaced: list[tuple[frozenset[int], float, str]] = []
    seen_closures: set[frozenset[int]] = set()
    for successor, rate, note in candidates:
        difference = successor - node
        if len(difference) == 1:
            (atom,) = tuple(difference)
            if atom in completions:
                if successor in seen_closures:
                    continue
                seen_closures.add(successor)
                probability = cycle_rates.rate(
                    query, completions[atom], atom
                )
                if probability is not None:
                    replaced.append(
                        (successor, probability, f"P(close {atom})")
                    )
                else:
                    replaced.append((successor, rate, note))
                continue
        replaced.append((successor, rate, note))
    only_closing = [
        c for c in replaced if any(a in completions for a in (c[0] - node))
    ]
    return only_closing if only_closing else replaced


def build_ceg_ocr(
    query: QueryPattern,
    markov: MarkovTable,
    cycle_rates: CycleClosingRates,
) -> CEG:
    """Build ``CEG_OCR`` (§4.3): ``CEG_O`` with cycle-closing rates."""
    return build_ceg_o(query, markov, cycle_rates=cycle_rates)
