"""``CEG_O`` — the CEG of optimistic estimators (§4.2), and its
cycle-closing-rate variant ``CEG_OCR`` (§4.3).

Vertices are connected subsets of the query's atoms.  An edge from ``S``
to ``S' = S ∪ D`` exists for every stored extension pattern ``E`` (a
connected Markov-table join) with ``D = E \\ S ≠ ∅`` and intersection
``I = E ∩ S ≠ ∅`` also stored; its rate is ``|E| / |I|`` — the average
number of ``E``-extensions per ``I``-match (the uniformity assumption).

Two rules from prior work shape the edge set:

* *size-h numerators*: extension patterns always have exactly
  ``min(h, |Q|)`` atoms when possible (largest stored join conditions on
  the most context), falling back to smaller ``E`` only when no size-h
  extension exists;
* *early cycle closing* (§4.2, from reference [20]): whenever some
  successor closes a cycle that ``S`` leaves open, only cycle-closing
  successors are kept.

``CEG_OCR`` replaces the rate of an edge whose single new atom completes
a cycle longer than ``h`` with the sampled cycle-closing probability
``P(E_{i-1} * E_{i+1} | E_i)`` (§4.3), falling back to the ``CEG_O``
rate when the statistic is unavailable.

Internally every atom subset is an int bitmask (bit ``i`` = atom ``i``),
so successor generation is bit arithmetic instead of frozenset algebra;
subsets are translated back to the frozenset vertex keys the rest of the
library (and the compiled CEG) sees only when a vertex or edge is
actually added.  The construction order — BFS stack, candidate order,
edge insertion order — is exactly the frozenset implementation's, so the
built CEG (and every estimate read off it) is unchanged bit for bit.
"""

from __future__ import annotations

from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.markov import MarkovTable
from repro.core.ceg import CEG
from repro.errors import EstimationError
from repro.query.pattern import QueryPattern
from repro.query.shape import cycles

__all__ = ["build_ceg_o", "build_ceg_ocr"]


def _mask_of(indexes) -> int:
    mask = 0
    for index in indexes:
        mask |= 1 << index
    return mask


def _bits(mask: int) -> list[int]:
    """Set bit positions of ``mask``, ascending."""
    result = []
    while mask:
        low = mask & -mask
        result.append(low.bit_length() - 1)
        mask ^= low
    return result


class _MaskContext:
    """Per-build caches keyed by atom bitmask.

    Subset cardinalities and connectivity checks are hit once per
    (node, extension) pair, so memoising by mask cuts the dominant cost
    (canonical-key computation in the Markov table) and skips all
    frozenset churn on the hot path.
    """

    def __init__(self, query: QueryPattern, markov: MarkovTable):
        self.query = query
        self.markov = markov
        # adjacent[i]: atoms sharing a variable with atom i (incl. i).
        self.adjacent = [0] * len(query)
        for var in query.variables:
            incident = query.edges_at(var)
            var_mask = _mask_of(incident)
            for index in incident:
                self.adjacent[index] |= var_mask
        self._frozen: dict[int, frozenset[int]] = {}
        self._cards: dict[int, float] = {}
        self._connected: dict[int, bool] = {}

    def frozen(self, mask: int) -> frozenset[int]:
        cached = self._frozen.get(mask)
        if cached is None:
            cached = frozenset(_bits(mask))
            self._frozen[mask] = cached
        return cached

    def cardinality(self, mask: int) -> float:
        cached = self._cards.get(mask)
        if cached is None:
            cached = self.markov.cardinality(self.query.subpattern(_bits(mask)))
            self._cards[mask] = cached
        return cached

    def connected(self, mask: int) -> bool:
        cached = self._connected.get(mask)
        if cached is None:
            reach = mask & -mask
            frontier = reach
            while frontier:
                grown = 0
                for index in _bits(frontier):
                    grown |= self.adjacent[index]
                grown &= mask
                frontier = grown & ~reach
                reach |= grown
            cached = reach == mask
            self._connected[mask] = cached
        return cached


def build_ceg_o(
    query: QueryPattern,
    markov: MarkovTable,
    cycle_rates: CycleClosingRates | None = None,
    size_h_rule: bool = True,
    early_cycle_closing: bool = True,
) -> CEG:
    """Build ``CEG_O`` (or ``CEG_OCR`` when ``cycle_rates`` is given).

    ``size_h_rule`` and ``early_cycle_closing`` toggle the two §4.2
    path-limiting rules (both on in the paper; off only for ablations).
    """
    if not query.is_connected():
        raise EstimationError("CEG_O requires a connected query")
    h = markov.h
    size = min(h, len(query))
    full_mask = (1 << len(query)) - 1
    by_size: dict[int, list[int]] = {}
    for subset in query.connected_edge_subsets(max_size=h):
        if len(subset) <= size:
            by_size.setdefault(len(subset), []).append(_mask_of(subset))
    # (mask, length) per simple cycle, in cycles()' (length, atoms) order.
    query_cycles = [(_mask_of(c), len(c)) for c in cycles(query)]
    context = _MaskContext(query, markov)

    ceg = CEG(source=frozenset(), target=context.frozen(full_mask))
    ceg.add_node(frozenset(), rank=0)
    seen: set[int] = {0}
    queue: list[int] = [0]
    while queue:
        node = queue.pop()
        if node == full_mask:
            continue
        node_key = context.frozen(node)
        for successor, rate, note in _successors(
            context, node, by_size, size, query_cycles,
            cycle_rates, h, size_h_rule, early_cycle_closing,
        ):
            if successor not in seen:
                seen.add(successor)
                ceg.add_node(
                    context.frozen(successor), rank=successor.bit_count()
                )
                queue.append(successor)
            ceg.add_edge(node_key, context.frozen(successor), rate, note)
    if full_mask not in seen:
        raise EstimationError("CEG_O construction produced no complete path")
    return ceg


def _successors(
    context: _MaskContext,
    node: int,
    by_size: dict[int, list[int]],
    size: int,
    query_cycles: list[tuple[int, int]],
    cycle_rates: CycleClosingRates | None,
    h: int,
    size_h_rule: bool = True,
    early_cycle_closing: bool = True,
) -> list[tuple[int, float, str]]:
    candidates = _raw_candidates(context, node, by_size, size, size_h_rule)
    if cycle_rates is not None:
        # Must run before the early-cycle-closing filter: otherwise that
        # filter can leave only multi-atom closures, which would bypass
        # the rate-weighted k-1 -> k closing step.
        candidates = _drop_multi_atom_closures(
            node, candidates, query_cycles, h
        )
    if early_cycle_closing:
        candidates = _apply_early_cycle_closing(node, candidates, query_cycles)
    if cycle_rates is not None:
        candidates = _apply_cycle_rates(
            context, node, candidates, query_cycles, cycle_rates, h
        )
    return candidates


def _raw_candidates(
    context: _MaskContext,
    node: int,
    by_size: dict[int, list[int]],
    size: int,
    size_h_rule: bool = True,
) -> list[tuple[int, float, str]]:
    """(successor, rate, note) triples before rule filters."""
    result: list[tuple[int, float, str]] = []
    if not node:
        for extension in by_size.get(size, []):
            result.append(
                (
                    extension,
                    context.cardinality(extension),
                    f"|{_bits(extension)}|",
                )
            )
        return result
    for want in range(size, 0, -1):
        for extension in by_size.get(want, []):
            difference = extension & ~node
            intersection = extension & node
            if not difference or not intersection:
                continue
            if not context.connected(intersection):
                continue
            numerator = context.cardinality(extension)
            denominator = context.cardinality(intersection)
            rate = numerator / denominator if denominator > 0 else 0.0
            note = f"|{_bits(extension)}|/|{_bits(intersection)}|"
            result.append((node | difference, rate, note))
        if result and size_h_rule:
            # Size-h numerator rule: only fall back to smaller extension
            # joins when no size-h extension exists at all.
            break
    return result


def _drop_multi_atom_closures(
    node: int,
    candidates: list[tuple[int, float, str]],
    query_cycles: list[tuple[int, int]],
    h: int,
) -> list[tuple[int, float, str]]:
    """Remove extensions that complete a large cycle with > 1 new atom.

    ``CEG_OCR`` prices cycle closure through the sampled probability of
    the single closing atom; a several-atoms-at-once completion would
    silently use the broken-open-path weights §4.3 warns about.  Falls
    back to the unfiltered list if nothing survives (degenerate shapes).
    """
    large_cycles = [c for c, length in query_cycles if length > h]
    if not large_cycles:
        return candidates
    kept = [
        candidate
        for candidate in candidates
        if not any(
            cycle & ~candidate[0] == 0 and (cycle & ~node).bit_count() > 1
            for cycle in large_cycles
        )
    ]
    return kept if kept else candidates


def _apply_early_cycle_closing(
    node: int,
    candidates: list[tuple[int, float, str]],
    query_cycles: list[tuple[int, int]],
) -> list[tuple[int, float, str]]:
    def closes_cycle(successor: int) -> bool:
        return any(
            cycle & ~successor == 0 and cycle & ~node != 0
            for cycle, _ in query_cycles
        )

    closing = [c for c in candidates if closes_cycle(c[0])]
    return closing if closing else candidates


def _cycle_completions(
    node: int, query_cycles: list[tuple[int, int]], h: int
) -> dict[int, int]:
    """Map each atom that would complete a large cycle to that cycle.

    The bitmask twin of :func:`repro.query.shape.cycle_completions`:
    ``{atom_index: cycle_mask}`` for every atom outside ``node`` that is
    the single missing atom of some cycle longer than ``h`` (smallest
    such cycle wins, ties by the cycle enumeration order).
    """
    result: dict[int, int] = {}
    lengths: dict[int, int] = {}
    for cycle, length in query_cycles:
        if length <= h:
            continue
        missing = cycle & ~node
        if missing and missing & (missing - 1) == 0:
            index = missing.bit_length() - 1
            if index not in result or length < lengths[index]:
                result[index] = cycle
                lengths[index] = length
    return result


def _apply_cycle_rates(
    context: _MaskContext,
    node: int,
    candidates: list[tuple[int, float, str]],
    query_cycles: list[tuple[int, int]],
    cycle_rates: CycleClosingRates,
    h: int,
) -> list[tuple[int, float, str]]:
    """Swap closing-edge rates for sampled closing probabilities.

    When a single new atom would complete a large cycle, ``CEG_OCR``
    keeps only those single-atom closing extensions (with probability
    weights); other candidates would silently estimate the broken-open
    pattern that §4.3 shows overestimates.
    """
    completions = _cycle_completions(node, query_cycles, h)
    if not completions:
        return candidates
    completion_mask = _mask_of(completions)
    replaced: list[tuple[int, float, str]] = []
    seen_closures: set[int] = set()
    for successor, rate, note in candidates:
        difference = successor & ~node
        if difference and difference & (difference - 1) == 0:
            atom = difference.bit_length() - 1
            if atom in completions:
                if successor in seen_closures:
                    continue
                seen_closures.add(successor)
                probability = cycle_rates.rate(
                    context.query, context.frozen(completions[atom]), atom
                )
                if probability is not None:
                    replaced.append(
                        (successor, probability, f"P(close {atom})")
                    )
                else:
                    replaced.append((successor, rate, note))
                continue
        replaced.append((successor, rate, note))
    only_closing = [
        c for c in replaced if (c[0] & ~node) & completion_mask
    ]
    return only_closing if only_closing else replaced


def build_ceg_ocr(
    query: QueryPattern,
    markov: MarkovTable,
    cycle_rates: CycleClosingRates,
) -> CEG:
    """Build ``CEG_OCR`` (§4.3): ``CEG_O`` with cycle-closing rates."""
    return build_ceg_o(query, markov, cycle_rates=cycle_rates)
