"""Path statistics over a CEG: the estimator heuristic space of §4.2.

Each (source, target) path is an estimate; an estimator picks a set of
paths by *path length* (max-hop / min-hop / all-hops) and aggregates
their estimates (max-aggr / min-aggr / avg-aggr).  Instead of
enumerating paths (their number explodes — the paper counts 252 formulas
for one query), a single dynamic program over the DAG keyed by
(vertex, hop-count) tracks the count, sum, minimum and maximum of path
products, which is exactly enough to answer all nine estimators.

Two interchangeable DPs compute the same table:
:func:`hop_statistics` is the dict-of-dicts reference implementation;
:func:`hop_statistics_compiled` runs one bottom-up NumPy pass per hop
level over the array-compiled CEG (:mod:`repro.core.compiled`), folding
every edge's contribution with sequential ufunc accumulation in the
reference order, so its sums are bit-identical — the serving default
(:func:`estimate_from_ceg`) uses it.

The P* oracle (§6.2.3) needs the full multiset of *distinct* path
estimates; :func:`distinct_estimates` runs a second DP over value sets
with a configurable cap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ceg import CEG
from repro.errors import EstimationError

__all__ = [
    "HopStats",
    "PATH_LENGTH_CHOICES",
    "AGGREGATOR_CHOICES",
    "hop_statistics",
    "hop_statistics_compiled",
    "estimate_from_ceg",
    "distinct_estimates",
    "min_weight_path",
]

PATH_LENGTH_CHOICES = ("max", "min", "all")
AGGREGATOR_CHOICES = ("max", "min", "avg")


@dataclass
class HopStats:
    """Aggregate over all paths reaching a vertex in a fixed hop count."""

    count: float = 0.0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def absorb(self, other: "HopStats", rate: float) -> None:
        """Fold in paths arriving through an edge with the given rate."""
        self.count += other.count
        self.total += other.total * rate
        self.minimum = min(self.minimum, other.minimum * rate)
        self.maximum = max(self.maximum, other.maximum * rate)


def hop_statistics(ceg: CEG) -> dict[int, HopStats]:
    """Per-hop-count path statistics at the CEG's target vertex."""
    table: dict[object, dict[int, HopStats]] = {
        ceg.source: {0: HopStats(count=1.0, total=1.0, minimum=1.0, maximum=1.0)}
    }
    for node in ceg.topological_order():
        at_node = table.get(node)
        if not at_node:
            continue
        for edge in ceg.out_edges(node):
            into = table.setdefault(edge.target, {})
            for hops, stats in at_node.items():
                slot = into.get(hops + 1)
                if slot is None:
                    slot = HopStats()
                    into[hops + 1] = slot
                slot.absorb(stats, edge.rate)
    return table.get(ceg.target, {})


def hop_statistics_compiled(compiled) -> dict[int, HopStats]:
    """Per-hop-count path statistics via the array-compiled CEG.

    One hop level at a time: ``stats_{k+1}[v]`` folds every in-edge
    contribution ``stats_k[u] ∘ rate`` with unbuffered ufunc
    accumulation (``np.add.at`` applies repeated indexes sequentially in
    array order).  The compiled in-edge order is (target, source
    topological position, insertion order) — the same per-vertex
    ordering :func:`hop_statistics` uses — so every float sum reproduces
    the reference DP bit for bit.
    """
    n = compiled.num_nodes
    count = np.zeros(n)
    total = np.zeros(n)
    minimum = np.full(n, np.inf)
    maximum = np.full(n, -np.inf)
    count[compiled.source] = 1.0
    total[compiled.source] = 1.0
    minimum[compiled.source] = 1.0
    maximum[compiled.source] = 1.0
    target = compiled.target
    result: dict[int, HopStats] = {}
    if target == compiled.source:
        result[0] = HopStats(count=1.0, total=1.0, minimum=1.0, maximum=1.0)
    sources = compiled.in_source
    targets = compiled.in_target
    rates = compiled.in_rate
    hops = 0
    while hops < n:
        live = count[sources] > 0.0
        if not live.any():
            break
        src = sources[live]
        tgt = targets[live]
        rate = rates[live]
        next_count = np.zeros(n)
        next_total = np.zeros(n)
        next_min = np.full(n, np.inf)
        next_max = np.full(n, -np.inf)
        np.add.at(next_count, tgt, count[src])
        np.add.at(next_total, tgt, total[src] * rate)
        np.minimum.at(next_min, tgt, minimum[src] * rate)
        np.maximum.at(next_max, tgt, maximum[src] * rate)
        count, total, minimum, maximum = (
            next_count, next_total, next_min, next_max,
        )
        hops += 1
        if count[target] > 0.0:
            result[hops] = HopStats(
                count=float(count[target]),
                total=float(total[target]),
                minimum=float(minimum[target]),
                maximum=float(maximum[target]),
            )
    return result


def estimate_from_ceg(
    ceg: CEG, path_length: str, aggregator: str, compiled: bool = True
) -> float:
    """One of the nine §4.2 estimates from a built CEG.

    ``compiled`` selects the NumPy DP over the array-compiled CEG (the
    default) or the dict-based reference DP; both produce bit-identical
    estimates.  Raises :class:`EstimationError` when the CEG has no
    (source, target) path — the estimator has no formula for the query.
    """
    if path_length not in PATH_LENGTH_CHOICES:
        raise ValueError(f"path_length must be one of {PATH_LENGTH_CHOICES}")
    if aggregator not in AGGREGATOR_CHOICES:
        raise ValueError(f"aggregator must be one of {AGGREGATOR_CHOICES}")
    if compiled:
        per_hop = hop_statistics_compiled(ceg.compiled())
    else:
        per_hop = hop_statistics(ceg)
    if not per_hop:
        raise EstimationError("CEG has no bottom-to-top path")
    if path_length == "max":
        chosen = [per_hop[max(per_hop)]]
    elif path_length == "min":
        chosen = [per_hop[min(per_hop)]]
    else:
        chosen = list(per_hop.values())
    if aggregator == "max":
        return max(s.maximum for s in chosen)
    if aggregator == "min":
        return min(s.minimum for s in chosen)
    count = sum(s.count for s in chosen)
    total = sum(s.total for s in chosen)
    return total / count


def distinct_estimates(ceg: CEG, cap: int = 50_000) -> list[float]:
    """All distinct path estimates (P* oracle input), capped.

    Values are deduplicated up to 12 significant digits to absorb float
    noise from different multiplication orders.
    """
    table: dict[object, set[float]] = {ceg.source: {1.0}}
    for node in ceg.topological_order():
        at_node = table.get(node)
        if not at_node:
            continue
        for edge in ceg.out_edges(node):
            into = table.setdefault(edge.target, set())
            if len(into) >= cap:
                continue
            for value in at_node:
                into.add(_round_sig(value * edge.rate))
    found = table.get(ceg.target, set())
    if not found:
        raise EstimationError("CEG has no bottom-to-top path")
    return sorted(found)


def _round_sig(value: float, digits: int = 12) -> float:
    if value == 0.0 or value != value or value in (float("inf"), float("-inf")):
        return value
    return float(f"%.{digits}e" % value)


def min_weight_path(ceg: CEG) -> tuple[float, list]:
    """Minimum-product path (as used by pessimistic estimators, §5).

    Returns ``(product, edges)``.  The DAG structure makes a simple
    topological relaxation sufficient (no Dijkstra needed); rates must be
    non-negative, and the relaxation works on products directly.
    """
    best: dict[object, float] = {ceg.source: 1.0}
    parent: dict[object, object] = {}
    via: dict[object, object] = {}
    for node in ceg.topological_order():
        if node not in best:
            continue
        for edge in ceg.out_edges(node):
            candidate = best[node] * edge.rate
            if candidate < best.get(edge.target, float("inf")):
                best[edge.target] = candidate
                parent[edge.target] = node
                via[edge.target] = edge
    if ceg.target not in best:
        raise EstimationError("CEG has no bottom-to-top path")
    edges = []
    node = ceg.target
    while node != ceg.source:
        edges.append(via[node])
        node = parent[node]
    edges.reverse()
    return best[ceg.target], edges
