"""Path statistics over a CEG: the estimator heuristic space of §4.2.

Each (source, target) path is an estimate; an estimator picks a set of
paths by *path length* (max-hop / min-hop / all-hops) and aggregates
their estimates (max-aggr / min-aggr / avg-aggr).  Instead of
enumerating paths (their number explodes — the paper counts 252 formulas
for one query), a single dynamic program over the DAG keyed by
(vertex, hop-count) tracks the count, sum, minimum and maximum of path
products, which is exactly enough to answer all nine estimators.

The P* oracle (§6.2.3) needs the full multiset of *distinct* path
estimates; :func:`distinct_estimates` runs a second DP over value sets
with a configurable cap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ceg import CEG
from repro.errors import EstimationError

__all__ = [
    "HopStats",
    "PATH_LENGTH_CHOICES",
    "AGGREGATOR_CHOICES",
    "hop_statistics",
    "estimate_from_ceg",
    "distinct_estimates",
    "min_weight_path",
]

PATH_LENGTH_CHOICES = ("max", "min", "all")
AGGREGATOR_CHOICES = ("max", "min", "avg")


@dataclass
class HopStats:
    """Aggregate over all paths reaching a vertex in a fixed hop count."""

    count: float = 0.0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def absorb(self, other: "HopStats", rate: float) -> None:
        """Fold in paths arriving through an edge with the given rate."""
        self.count += other.count
        self.total += other.total * rate
        self.minimum = min(self.minimum, other.minimum * rate)
        self.maximum = max(self.maximum, other.maximum * rate)


def hop_statistics(ceg: CEG) -> dict[int, HopStats]:
    """Per-hop-count path statistics at the CEG's target vertex."""
    table: dict[object, dict[int, HopStats]] = {
        ceg.source: {0: HopStats(count=1.0, total=1.0, minimum=1.0, maximum=1.0)}
    }
    for node in ceg.topological_order():
        at_node = table.get(node)
        if not at_node:
            continue
        for edge in ceg.out_edges(node):
            into = table.setdefault(edge.target, {})
            for hops, stats in at_node.items():
                slot = into.get(hops + 1)
                if slot is None:
                    slot = HopStats()
                    into[hops + 1] = slot
                slot.absorb(stats, edge.rate)
    return table.get(ceg.target, {})


def estimate_from_ceg(
    ceg: CEG, path_length: str, aggregator: str
) -> float:
    """One of the nine §4.2 estimates from a built CEG.

    Raises :class:`EstimationError` when the CEG has no (source, target)
    path — the estimator has no formula for the query.
    """
    if path_length not in PATH_LENGTH_CHOICES:
        raise ValueError(f"path_length must be one of {PATH_LENGTH_CHOICES}")
    if aggregator not in AGGREGATOR_CHOICES:
        raise ValueError(f"aggregator must be one of {AGGREGATOR_CHOICES}")
    per_hop = hop_statistics(ceg)
    if not per_hop:
        raise EstimationError("CEG has no bottom-to-top path")
    if path_length == "max":
        chosen = [per_hop[max(per_hop)]]
    elif path_length == "min":
        chosen = [per_hop[min(per_hop)]]
    else:
        chosen = list(per_hop.values())
    if aggregator == "max":
        return max(s.maximum for s in chosen)
    if aggregator == "min":
        return min(s.minimum for s in chosen)
    count = sum(s.count for s in chosen)
    total = sum(s.total for s in chosen)
    return total / count


def distinct_estimates(ceg: CEG, cap: int = 50_000) -> list[float]:
    """All distinct path estimates (P* oracle input), capped.

    Values are deduplicated up to 12 significant digits to absorb float
    noise from different multiplication orders.
    """
    table: dict[object, set[float]] = {ceg.source: {1.0}}
    for node in ceg.topological_order():
        at_node = table.get(node)
        if not at_node:
            continue
        for edge in ceg.out_edges(node):
            into = table.setdefault(edge.target, set())
            if len(into) >= cap:
                continue
            for value in at_node:
                into.add(_round_sig(value * edge.rate))
    found = table.get(ceg.target, set())
    if not found:
        raise EstimationError("CEG has no bottom-to-top path")
    return sorted(found)


def _round_sig(value: float, digits: int = 12) -> float:
    if value == 0.0 or value != value or value in (float("inf"), float("-inf")):
        return value
    return float(f"%.{digits}e" % value)


def min_weight_path(ceg: CEG) -> tuple[float, list]:
    """Minimum-product path (as used by pessimistic estimators, §5).

    Returns ``(product, edges)``.  The DAG structure makes a simple
    topological relaxation sufficient (no Dijkstra needed); rates must be
    non-negative, and the relaxation works on products directly.
    """
    best: dict[object, float] = {ceg.source: 1.0}
    parent: dict[object, object] = {}
    via: dict[object, object] = {}
    for node in ceg.topological_order():
        if node not in best:
            continue
        for edge in ceg.out_edges(node):
            candidate = best[node] * edge.rate
            if candidate < best.get(edge.target, float("inf")):
                best[edge.target] = candidate
                parent[edge.target] = node
                via[edge.target] = edge
    if ceg.target not in best:
        raise EstimationError("CEG has no bottom-to-top path")
    edges = []
    node = ceg.target
    while node != ceg.source:
        edges.append(via[node])
        node = parent[node]
    edges.reverse()
    return best[ceg.target], edges
