"""The CBS estimator of Cai, Balazinska and Suciu (§5.2, Appendix B/C).

CBS enumerates *coverages* — per-atom choices of covered attributes with
``|X_i| ∈ {0, |A_i|-1, |A_i|}`` whose union covers the query — and for
each builds a *bounding formula* ``Π_i deg(A_i \\ X_i, R_i)`` (atoms
covering nothing are ignored; full coverage contributes ``|R_i|``; a
one-short coverage contributes the max degree of the uncovered
attribute).  The estimate is the minimum formula value.

Appendix B proves CBS equals MOLP on acyclic queries over binary
relations and Appendix C shows its formulas can *under*-estimate on
cyclic queries (the identity-relations triangle) — both are
machine-checked in the test suite.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.catalog.degrees import DegreeCatalog
from repro.errors import EstimationError
from repro.query.pattern import QueryPattern

__all__ = ["cbs_bound", "enumerate_coverages", "bounding_formula_value"]

Coverage = tuple[frozenset[str], ...]  # per-atom covered attribute set

_MAX_ATOMS = 12


def enumerate_coverages(query: QueryPattern) -> Iterator[Coverage]:
    """All feasible coverage combinations (FCG, Algorithm 2 of [5])."""
    if len(query) > _MAX_ATOMS:
        raise EstimationError(
            f"CBS coverage enumeration limited to {_MAX_ATOMS} atoms"
        )
    per_atom: list[list[frozenset[str]]] = []
    for edge in query.edges:
        attrs = frozenset(edge.variables())
        options: list[frozenset[str]] = [frozenset(), attrs]
        if len(attrs) > 1:
            for dropped in sorted(attrs):
                options.append(attrs - {dropped})
        per_atom.append(list(dict.fromkeys(options)))
    everything = set(query.variables)
    for combo in product(*per_atom):
        covered: set[str] = set()
        for chosen in combo:
            covered |= chosen
        if covered == everything:
            yield combo


def bounding_formula_value(
    query: QueryPattern, catalog: DegreeCatalog, coverage: Coverage
) -> float:
    """``Π_i deg(A_i \\ X_i, A_i, R_i)`` for one coverage (BFG)."""
    value = 1.0
    for atom_index, covered in enumerate(coverage):
        if not covered:
            continue
        relation = catalog.relation_for(query.subpattern([atom_index]))
        attrs = relation.attributes
        uncovered = attrs - covered
        value *= relation.deg(uncovered, attrs)
    return value


def cbs_bound(query: QueryPattern, catalog: DegreeCatalog) -> float:
    """The CBS estimate: minimum bounding-formula value over coverages."""
    best: float | None = None
    for coverage in enumerate_coverages(query):
        value = bounding_formula_value(query, catalog, coverage)
        if best is None or value < best:
            best = value
    if best is None:
        raise EstimationError("query admits no CBS coverage")
    return best
