"""``CEG_M`` — the CEG of the MOLP pessimistic bound (§5.1).

Vertices are subsets of the query's attributes (variables); an extension
edge from ``W`` to ``W ∪ Y`` exists for every statistic relation ``R``
(base atom or stored small join, §5.1.1) and every ``Y ⊆ attrs(R)`` not
already inside ``W``, with rate ``deg(X, Y, R)`` where ``X = W ∩ Y``.
Using the maximal ``X`` is lossless: ``deg`` is antitone in ``X``, so a
minimum-weight path never benefits from a smaller conditioning set.

Theorem 5.1 (machine-checked in the test suite against the scipy LP of
:mod:`repro.core.molp`): the minimum-weight (∅, A) path equals the MOLP
optimum, so :func:`molp_bound` *is* the MOLP pessimistic estimator, and
every (∅, A) path is itself an upper bound (Observation 1).

Projection edges are omitted per Observation 3 / Appendix A (also
machine-checked: adding projection inequalities to the LP never changes
the optimum).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.catalog.degrees import DegreeCatalog, StatRelation
from repro.core.ceg import CEG
from repro.errors import EstimationError
from repro.query.pattern import QueryPattern

__all__ = ["MolpEdge", "molp_bound", "molp_min_path", "build_ceg_m"]


@dataclass(frozen=True)
class MolpEdge:
    """Metadata of one ``CEG_M`` extension edge."""

    source_attrs: frozenset[str]
    target_attrs: frozenset[str]
    x: frozenset[str]
    y: frozenset[str]
    relation: QueryPattern
    rate: float

    @property
    def is_bound(self) -> bool:
        """Bound edges condition on a non-empty ``X`` (§5.2.1)."""
        return bool(self.x)

    @property
    def extension_attrs(self) -> frozenset[str]:
        """Attributes introduced by this edge."""
        return self.target_attrs - self.source_attrs


def _subsets(items: tuple[str, ...]):
    n = len(items)
    for mask in range(1, 1 << n):
        yield frozenset(items[i] for i in range(n) if mask >> i & 1)


def _relation_moves(
    relations: list[StatRelation],
) -> list[tuple[StatRelation, frozenset[str]]]:
    moves: list[tuple[StatRelation, frozenset[str]]] = []
    for relation in relations:
        attrs = tuple(sorted(relation.attributes))
        for y in _subsets(attrs):
            moves.append((relation, y))
    return moves


def molp_min_path(
    query: QueryPattern, catalog: DegreeCatalog
) -> tuple[float, list[MolpEdge]]:
    """MOLP bound and the minimum-weight (∅, A) path realising it.

    Runs a lazy Dijkstra over attribute subsets with multiplicative
    weights (all rates ≥ 1 once empty relations are ruled out, so the
    product order is monotone).  Subsets are int bitmasks over the
    query's sorted attributes — successor generation is bit arithmetic
    — with the same move enumeration and relaxation order as the
    frozenset implementation, so bound and path are unchanged.
    """
    relations = catalog.stat_relations(query)
    if any(relation.cardinality == 0 for relation in relations):
        return 0.0, []
    attrs = tuple(sorted(query.variables))
    bit_of = {var: i for i, var in enumerate(attrs)}
    frozen_cache: dict[int, frozenset[str]] = {}

    def frozen(mask: int) -> frozenset[str]:
        cached = frozen_cache.get(mask)
        if cached is None:
            cached = frozenset(
                attrs[i] for i in range(len(attrs)) if mask >> i & 1
            )
            frozen_cache[mask] = cached
        return cached

    # One (y_mask, rate-cache, relation, y) tuple per legacy move, in
    # the legacy enumeration order.  deg(X, Y) values are memoised per
    # conditioning mask X: the Dijkstra relaxes every settled node
    # against every move, so the same (X, Y) pair recurs constantly and
    # the inlined int-keyed cache replaces frozenset hashing inside the
    # degree tables on the hot loop.
    moves = [
        (_mask_of(y, bit_of), {}, relation, y)
        for relation, y in _relation_moves(relations)
    ]
    all_mask = (1 << len(attrs)) - 1
    dist: dict[int, float] = {0: 1.0}
    via: dict[int, tuple[int, StatRelation, frozenset[str], int, float]] = {}
    counter = 0
    heap: list[tuple[float, int, int]] = [(1.0, counter, 0)]
    settled: set[int] = set()
    infinity = float("inf")
    while heap:
        weight, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == all_mask:
            break
        for y_mask, rates, relation, y in moves:
            if not y_mask & ~node:
                continue
            x_mask = node & y_mask
            rate = rates.get(x_mask)
            if rate is None:
                rate = relation.deg(frozen(x_mask), y)
                rates[x_mask] = rate
            candidate = weight * rate
            target = node | y_mask
            if candidate < dist.get(target, infinity):
                dist[target] = candidate
                via[target] = (node, relation, y, x_mask, rate)
                counter += 1
                heapq.heappush(heap, (candidate, counter, target))
    if all_mask not in dist:
        raise EstimationError("CEG_M has no (∅, A) path for this query")
    path: list[MolpEdge] = []
    node = all_mask
    while node != 0:
        source, relation, y, x_mask, rate = via[node]
        path.append(
            MolpEdge(
                source_attrs=frozen(source),
                target_attrs=frozen(node),
                x=frozen(x_mask),
                y=y,
                relation=relation.pattern,
                rate=rate,
            )
        )
        node = source
    path.reverse()
    return dist[all_mask], path


def _mask_of(variables: frozenset[str], bit_of: dict[str, int]) -> int:
    mask = 0
    for var in variables:
        mask |= 1 << bit_of[var]
    return mask


def molp_bound(query: QueryPattern, catalog: DegreeCatalog) -> float:
    """The MOLP pessimistic cardinality bound ``2^{m_A}`` for the query."""
    bound, _ = molp_min_path(query, catalog)
    return bound


def build_ceg_m(
    query: QueryPattern,
    catalog: DegreeCatalog,
    max_attributes: int = 14,
) -> CEG:
    """Materialise the full ``CEG_M`` (for path analysis and theory tests).

    Vertices are all ``2^n`` attribute subsets; edges carry
    :class:`MolpEdge` payloads.  Guarded by ``max_attributes`` because
    the explicit graph is exponential — estimation should go through
    :func:`molp_bound`, which explores lazily.
    """
    attrs = tuple(sorted(query.variables))
    if len(attrs) > max_attributes:
        raise EstimationError(
            f"explicit CEG_M limited to {max_attributes} attributes"
        )
    relations = catalog.stat_relations(query)
    moves = _relation_moves(relations)
    all_attrs = frozenset(attrs)
    ceg = CEG(source=frozenset(), target=all_attrs)
    for mask in range(1 << len(attrs)):
        node = frozenset(attrs[i] for i in range(len(attrs)) if mask >> i & 1)
        ceg.add_node(node, rank=len(node))
    for mask in range(1 << len(attrs)):
        node = frozenset(attrs[i] for i in range(len(attrs)) if mask >> i & 1)
        for relation, y in moves:
            if y <= node:
                continue
            x = node & y
            rate = relation.deg(x, y)
            edge = MolpEdge(
                source_attrs=node,
                target_attrs=node | y,
                x=x,
                y=y,
                relation=relation.pattern,
                rate=rate,
            )
            ceg.add_edge(
                node,
                node | y,
                rate,
                description=f"deg({sorted(x)},{sorted(y)})",
                payload=edge,
            )
    ceg.prune_unreachable()
    return ceg
