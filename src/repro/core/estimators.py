"""User-facing estimator objects.

* :class:`OptimisticEstimator` — the §4.2 space: a Markov table, a CEG
  (``CEG_O`` or, when cycle rates are supplied, ``CEG_OCR``), one of
  three path-length heuristics and one of three aggregators.  The
  paper's recommended configuration is ``max-hop-max``; prior work maps
  to ``max-hop`` (Markov tables [2]), ``min-hop`` (graph summaries [17])
  and ``min-hop-min`` (graph catalogue [20]).
* :class:`PStarOracle` — the §6.2.3 thought-experiment oracle that picks
  the most accurate path (needs the true cardinality).
* :class:`MolpEstimator` — the pessimistic MOLP/CBS bound via the
  ``CEG_M`` minimum-weight path, with optional bound sketch.
"""

from __future__ import annotations

from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.degrees import DegreeCatalog
from repro.catalog.markov import MarkovTable
from repro.core.bound_sketch import molp_sketch_bound
from repro.core.ceg import CEG
from repro.core.ceg_m import molp_bound
from repro.core.ceg_o import build_ceg_o
from repro.core.paths import (
    AGGREGATOR_CHOICES,
    PATH_LENGTH_CHOICES,
    distinct_estimates,
    estimate_from_ceg,
)
from repro.graph.digraph import LabeledDiGraph
from repro.query.canonical import canonical_key, canonical_pattern
from repro.query.pattern import QueryPattern

__all__ = [
    "OptimisticEstimator",
    "PStarOracle",
    "MolpEstimator",
    "all_nine_estimators",
    "estimators_from_store",
]


class OptimisticEstimator:
    """One point of the §4.2 heuristic space over ``CEG_O``/``CEG_OCR``."""

    def __init__(
        self,
        markov: MarkovTable,
        path_length: str = "max",
        aggregator: str = "max",
        cycle_rates: CycleClosingRates | None = None,
    ):
        if path_length not in PATH_LENGTH_CHOICES:
            raise ValueError(f"path_length must be one of {PATH_LENGTH_CHOICES}")
        if aggregator not in AGGREGATOR_CHOICES:
            raise ValueError(f"aggregator must be one of {AGGREGATOR_CHOICES}")
        self.markov = markov
        self.path_length = path_length
        self.aggregator = aggregator
        self.cycle_rates = cycle_rates
        self._ceg_cache: dict[tuple, CEG] = {}

    @property
    def name(self) -> str:
        """Paper-style label, e.g. ``max-hop-max`` or ``all-hops-avg``."""
        hop = "all-hops" if self.path_length == "all" else f"{self.path_length}-hop"
        return f"{hop}-{self.aggregator}"

    def build_ceg(self, query: QueryPattern) -> CEG:
        """The (cached) CEG for a query, shared across variable renamings.

        The CEG is built from the query's *canonical* pattern and cached
        under its canonical key, so every renaming of the same shape maps
        to one CEG and one estimate.  Estimates therefore depend only on
        the query's shape, which is what lets :mod:`repro.service` serve
        shape-cached results that are bit-identical to fresh ones (float
        summation order in the path DP would otherwise differ between two
        edge orderings of the same query).
        """
        key = canonical_key(query)
        cached = self._ceg_cache.get(key)
        if cached is None:
            cached = build_ceg_o(
                canonical_pattern(query), self.markov, cycle_rates=self.cycle_rates
            )
            if len(self._ceg_cache) > 256:
                self._ceg_cache.clear()
            self._ceg_cache[key] = cached
        return cached

    def estimate(self, query: QueryPattern) -> float:
        """Cardinality estimate for a connected query."""
        return estimate_from_ceg(
            self.build_ceg(query), self.path_length, self.aggregator
        )


class PStarOracle:
    """The P* oracle: the path estimate closest to the true cardinality."""

    def __init__(
        self,
        markov: MarkovTable,
        cycle_rates: CycleClosingRates | None = None,
        cap: int = 50_000,
    ):
        self.markov = markov
        self.cycle_rates = cycle_rates
        self.cap = cap

    def estimate(self, query: QueryPattern, true_cardinality: float) -> float:
        """Best achievable estimate among all CEG paths."""
        ceg = build_ceg_o(query, self.markov, cycle_rates=self.cycle_rates)
        estimates = distinct_estimates(ceg, cap=self.cap)
        return min(
            estimates,
            key=lambda e: _q_error(e, true_cardinality),
        )


def _q_error(estimate: float, truth: float) -> float:
    if truth <= 0 and estimate <= 0:
        return 1.0
    if truth <= 0 or estimate <= 0:
        return float("inf")
    return max(estimate / truth, truth / estimate)


class MolpEstimator:
    """The MOLP pessimistic estimator (≡ CBS on acyclic binary queries).

    ``catalog`` injects a prebuilt (possibly graph-free)
    :class:`~repro.catalog.degrees.DegreeCatalog`; a graph is then only
    required for the bound sketch (``budget > 1``), which re-partitions
    base relations.
    """

    def __init__(
        self,
        graph: LabeledDiGraph | None,
        h: int = 2,
        budget: int = 1,
        max_rows: int | None = 5_000_000,
        catalog: DegreeCatalog | None = None,
    ):
        if graph is None and catalog is None:
            raise ValueError("MolpEstimator needs a graph or a degree catalog")
        if budget > 1 and graph is None:
            raise ValueError(
                "the bound sketch partitions base relations and needs a graph"
            )
        self.graph = graph
        self.h = catalog.h if catalog is not None else h
        self.budget = budget
        self.max_rows = max_rows
        self._catalog = (
            catalog
            if catalog is not None
            else DegreeCatalog(graph, h=h, max_rows=max_rows)
        )

    @property
    def name(self) -> str:
        """Display name used in reports (includes the sketch budget)."""
        if self.budget > 1:
            return f"MOLP-sketch{self.budget}"
        return "MOLP"

    def estimate(self, query: QueryPattern) -> float:
        """Upper bound on the query's cardinality."""
        if self.budget > 1:
            return molp_sketch_bound(
                self.graph,
                query,
                self.budget,
                h=self.h,
                max_rows=self.max_rows,
                catalog=self._catalog,
            )
        return molp_bound(query, self._catalog)


def all_nine_estimators(
    markov: MarkovTable,
    cycle_rates: CycleClosingRates | None = None,
) -> dict[str, OptimisticEstimator]:
    """The full §4.2 space, keyed by paper-style names."""
    estimators: dict[str, OptimisticEstimator] = {}
    for path_length in PATH_LENGTH_CHOICES:
        for aggregator in AGGREGATOR_CHOICES:
            estimator = OptimisticEstimator(
                markov, path_length, aggregator, cycle_rates=cycle_rates
            )
            estimators[estimator.name] = estimator
    return estimators


def estimators_from_store(
    store,
    use_cycle_rates: bool = False,
    include_molp: bool = True,
) -> dict[str, OptimisticEstimator | MolpEstimator]:
    """The estimator suite reading every statistic from one store.

    ``store`` is a :class:`repro.stats.StatisticsStore` (duck-typed to
    keep this module import-light).  The nine §4.2 heuristics share the
    store's Markov table (and its cycle rates when ``use_cycle_rates``);
    MOLP shares its degree catalog.  A graph-free store yields a suite
    that never touches a base graph.
    """
    rates = store.cycle_rates if use_cycle_rates else None
    if use_cycle_rates and rates is None:
        raise ValueError("the store holds no cycle-closing rates")
    suite: dict[str, OptimisticEstimator | MolpEstimator] = dict(
        all_nine_estimators(store.markov, cycle_rates=rates)
    )
    if include_molp:
        molp = MolpEstimator(store.graph, catalog=store.degrees)
        suite[molp.name] = molp
    return suite
