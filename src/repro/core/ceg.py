"""The generic Cardinality Estimation Graph (§3).

A CEG is a DAG whose vertices are sub-queries and whose edges carry
*extension rates*: the estimated (or bounded) cardinality of the larger
sub-query relative to the smaller one.  Every bottom-to-top path from the
``source`` (∅) to the ``target`` (the full query) yields one estimate —
the product of the extension rates along it.

This module is agnostic to what vertices mean: ``CEG_O`` uses frozensets
of query-edge indexes, ``CEG_M`` uses frozensets of attributes.  The only
structural requirement is acyclicity with a rank function (vertex "size")
that strictly increases along edges, which all the paper's CEGs satisfy
once projection edges are removed (Observation 3 / Appendix A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

__all__ = ["CEGEdge", "CEG"]

NodeKey = Hashable


@dataclass(frozen=True)
class CEGEdge:
    """One extension edge of a CEG.

    ``payload`` optionally carries builder-specific metadata (e.g. which
    statistic relation and attribute sets produced the edge) for
    consumers like the bound sketch that must re-interpret paths.
    """

    source: NodeKey
    target: NodeKey
    rate: float
    description: str = ""
    payload: object = None


@dataclass
class CEG:
    """A cardinality estimation graph with a single source and target."""

    source: NodeKey
    target: NodeKey
    _out: dict[NodeKey, list[CEGEdge]] = field(default_factory=dict)
    _rank: dict[NodeKey, int] = field(default_factory=dict)
    _compiled: object = field(default=None, repr=False, compare=False)

    def add_node(self, key: NodeKey, rank: int) -> None:
        """Register a vertex with its topological rank (sub-query size)."""
        existing = self._rank.get(key)
        if existing is not None and existing != rank:
            raise ValueError(f"node {key!r} re-registered with rank {rank}")
        self._rank[key] = rank
        self._out.setdefault(key, [])
        self._compiled = None

    def add_edge(
        self,
        source: NodeKey,
        target: NodeKey,
        rate: float,
        description: str = "",
        payload: object = None,
    ) -> None:
        """Add an extension edge; both endpoints must be registered."""
        if source not in self._rank or target not in self._rank:
            raise ValueError("register nodes before adding edges")
        if self._rank[target] <= self._rank[source]:
            raise ValueError(
                f"edge {source!r} -> {target!r} does not increase rank"
            )
        self._out[source].append(
            CEGEdge(source, target, float(rate), description, payload)
        )
        self._compiled = None

    def compiled(self):
        """The array-compiled form of this CEG (cached until mutated).

        See :func:`repro.core.compiled.compile_ceg`; mutating the CEG
        through :meth:`add_node` / :meth:`add_edge` /
        :meth:`prune_unreachable` drops the cache.
        """
        if self._compiled is None:
            from repro.core.compiled import compile_ceg

            self._compiled = compile_ceg(self)
        return self._compiled

    @property
    def nodes(self) -> list[NodeKey]:
        """All registered vertices."""
        return list(self._rank)

    @property
    def num_edges(self) -> int:
        """Total number of extension edges."""
        return sum(len(edges) for edges in self._out.values())

    def out_edges(self, key: NodeKey) -> list[CEGEdge]:
        """Extension edges leaving a vertex."""
        return self._out.get(key, [])

    def rank(self, key: NodeKey) -> int:
        """The registered topological rank of a vertex."""
        return self._rank[key]

    def topological_order(self) -> list[NodeKey]:
        """Vertices sorted by rank (a valid topological order)."""
        return sorted(self._rank, key=lambda k: (self._rank[k], repr(k)))

    def iter_edges(self) -> Iterable[CEGEdge]:
        """Iterate every edge of the CEG."""
        for edges in self._out.values():
            yield from edges

    def prune_unreachable(self) -> None:
        """Drop vertices that cannot lie on a (source, target) path."""
        forward: set[NodeKey] = set()
        stack = [self.source]
        while stack:
            node = stack.pop()
            if node in forward:
                continue
            forward.add(node)
            for edge in self.out_edges(node):
                stack.append(edge.target)
        incoming: dict[NodeKey, list[NodeKey]] = {}
        for edge in self.iter_edges():
            incoming.setdefault(edge.target, []).append(edge.source)
        backward: set[NodeKey] = set()
        stack = [self.target]
        while stack:
            node = stack.pop()
            if node in backward:
                continue
            backward.add(node)
            stack.extend(incoming.get(node, []))
        keep = forward & backward
        self._rank = {k: r for k, r in self._rank.items() if k in keep}
        self._out = {
            k: [e for e in edges if e.target in keep]
            for k, edges in self._out.items()
            if k in keep
        }
        self._compiled = None
