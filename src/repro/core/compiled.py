"""Array-compiled CEGs.

A built :class:`~repro.core.ceg.CEG` keys vertices by hashable objects
(frozensets of atom indexes for ``CEG_O``, frozensets of attributes for
``CEG_M``) and stores edges in per-vertex Python lists — convenient to
build, slow to traverse.  :func:`compile_ceg` interns the vertices to
dense ints in topological order and lays the edges out as a CSR-style
in-edge array, so the path aggregations of :mod:`repro.core.paths` run
as one bottom-up NumPy DP instead of nested dict loops.

Bit-identity contract: the in-edge list of every vertex is ordered by
(source topological position, edge insertion order) — exactly the order
in which the reference Python DP (:func:`repro.core.paths.hop_statistics`)
folds contributions into a vertex's accumulator.  Sequential ufunc
accumulation over that ordering therefore reproduces the reference
float sums bit for bit, which the golden regression relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CompiledCEG", "compile_ceg"]


@dataclass(frozen=True)
class CompiledCEG:
    """A CEG interned to dense ints with CSR-shaped in-edges.

    ``keys[i]`` is the original vertex key of the vertex at topological
    position ``i`` (position order == ``CEG.topological_order()``).
    Edge ``e`` runs from position ``in_source[e]`` to position
    ``in_target[e]`` with rate ``in_rate[e]``; edges are sorted by
    (target, source position, insertion order), with ``in_indptr``
    delimiting each target's slice.
    """

    keys: tuple
    ranks: np.ndarray  # int64 per position
    source: int  # position of the CEG source
    target: int  # position of the CEG target
    in_indptr: np.ndarray  # int64, len num_nodes + 1
    in_source: np.ndarray  # int64 per edge (topological position)
    in_target: np.ndarray  # int64 per edge (topological position)
    in_rate: np.ndarray  # float64 per edge

    @property
    def num_nodes(self) -> int:
        """Number of interned vertices."""
        return len(self.keys)

    @property
    def num_edges(self) -> int:
        """Number of extension edges."""
        return int(len(self.in_rate))

    def position(self, key) -> int:
        """Topological position of an original vertex key."""
        return self.keys.index(key)


def compile_ceg(ceg) -> CompiledCEG:
    """Intern a built CEG into its array form.

    ``ceg`` is duck-typed (anything with ``topological_order`` /
    ``out_edges`` / ``rank`` / ``source`` / ``target``), so this module
    stays import-cycle-free below :mod:`repro.core.ceg`.
    """
    order = ceg.topological_order()
    position = {key: i for i, key in enumerate(order)}
    sources: list[int] = []
    targets: list[int] = []
    rates: list[float] = []
    # Iterating vertices in topological order makes the emission index
    # itself the (source position, insertion order) sort key; the stable
    # sort by target below then yields the bit-identity ordering.
    for key in order:
        src_pos = position[key]
        for edge in ceg.out_edges(key):
            sources.append(src_pos)
            targets.append(position[edge.target])
            rates.append(edge.rate)
    in_source = np.asarray(sources, dtype=np.int64)
    in_target = np.asarray(targets, dtype=np.int64)
    in_rate = np.asarray(rates, dtype=np.float64)
    if len(in_target):
        by_target = np.argsort(in_target, kind="stable")
        in_source = in_source[by_target]
        in_target = in_target[by_target]
        in_rate = in_rate[by_target]
    counts = np.bincount(in_target, minlength=len(order))
    in_indptr = np.concatenate(
        ([0], np.cumsum(counts, dtype=np.int64))
    )
    return CompiledCEG(
        keys=tuple(order),
        ranks=np.asarray([ceg.rank(key) for key in order], dtype=np.int64),
        source=position[ceg.source],
        target=position[ceg.target],
        in_indptr=in_indptr,
        in_source=in_source,
        in_target=in_target,
        in_rate=in_rate,
    )
