"""Statistics catalogs: Markov tables, degree stats, cycle rates, sketches."""

from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.degrees import DegreeCatalog, StatRelation, group_max_distinct
from repro.catalog.entropy import EntropyCatalog, degree_irregularity
from repro.catalog.markov import MarkovTable
from repro.catalog.partitioned import (
    BoundSketchPartitioner,
    buckets_per_attribute,
    hash_bucket,
)

__all__ = [
    "MarkovTable",
    "DegreeCatalog",
    "StatRelation",
    "group_max_distinct",
    "CycleClosingRates",
    "EntropyCatalog",
    "degree_irregularity",
    "BoundSketchPartitioner",
    "buckets_per_attribute",
    "hash_bucket",
]
