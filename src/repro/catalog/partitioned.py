"""Relation partitioning for the bound-sketch optimization (§5.2.1).

Given a partitioning budget ``K`` and a set ``S`` of join attributes, the
bound sketch hash-partitions every relation on its attributes in ``S``
(``K^(1/|S|)`` buckets per attribute) and splits the query into ``K``
subqueries, one per bucket combination.  Each subquery sees only the
tuples whose partition-attribute hashes match its bucket indices.

Because the same edge label can appear on several query atoms with
different partition attributes, each subquery is materialised as a small
:class:`LabeledDiGraph` whose labels are *per-atom* (``label#atomIndex``)
with a correspondingly rewritten query pattern — estimators then run
unchanged against the filtered graph.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryEdge, QueryPattern

__all__ = ["hash_bucket", "BoundSketchPartitioner", "buckets_per_attribute"]

_MIX = np.int64(0x9E3779B1)


def hash_bucket(values: np.ndarray, buckets: int, salt: int = 0) -> np.ndarray:
    """Deterministic bucket index for each vertex id."""
    mixed = (values.astype(np.int64) + np.int64(salt + 1)) * _MIX
    mixed ^= mixed >> np.int64(16)
    return np.abs(mixed) % np.int64(buckets)


def buckets_per_attribute(budget: int, num_attrs: int) -> int:
    """``K^(1/|S|)`` rounded down to at least 1."""
    if num_attrs <= 0:
        return 1
    per = int(round(budget ** (1.0 / num_attrs)))
    return max(per, 1)


class BoundSketchPartitioner:
    """Splits (graph, query) into bucket-combination subproblems."""

    def __init__(self, graph: LabeledDiGraph, budget: int):
        if budget < 1:
            raise ValueError("partitioning budget must be >= 1")
        self.graph = graph
        self.budget = budget

    def subqueries(
        self, query: QueryPattern, partition_attrs: frozenset[str]
    ) -> list[tuple[LabeledDiGraph, QueryPattern]]:
        """All ``(filtered_graph, rewritten_query)`` subproblems.

        ``partition_attrs`` is the path-dependent set ``S`` of §5.2.1.
        With an empty ``S`` or budget 1 the original problem is returned
        (with per-atom labels for uniformity).
        """
        attrs = sorted(partition_attrs & set(query.variables))
        per = buckets_per_attribute(self.budget, len(attrs)) if attrs else 1
        rewritten = QueryPattern(
            QueryEdge(e.src, e.dst, f"{e.label}#{i}")
            for i, e in enumerate(query.edges)
        )
        result: list[tuple[LabeledDiGraph, QueryPattern]] = []
        assignments = (
            product(range(per), repeat=len(attrs)) if attrs else [()]
        )
        for combo in assignments:
            bucket_of = dict(zip(attrs, combo))
            filtered = self._filter(query, bucket_of, per)
            result.append((filtered, rewritten))
        return result

    def _filter(
        self,
        query: QueryPattern,
        bucket_of: dict[str, int],
        per: int,
    ) -> LabeledDiGraph:
        arrays: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for index, edge in enumerate(query.edges):
            if edge.label in self.graph:
                relation = self.graph.relation(edge.label)
                src = relation.src_by_src
                dst = relation.dst_by_src
            else:
                src = np.empty(0, dtype=np.int64)
                dst = np.empty(0, dtype=np.int64)
            mask = np.ones(len(src), dtype=bool)
            if edge.src in bucket_of and len(src):
                mask &= hash_bucket(src, per, salt=0) == bucket_of[edge.src]
            if edge.dst in bucket_of and len(src):
                mask &= hash_bucket(dst, per, salt=0) == bucket_of[edge.dst]
            arrays[f"{edge.label}#{index}"] = (src[mask], dst[mask])
        return LabeledDiGraph(self.graph.num_vertices, arrays)
