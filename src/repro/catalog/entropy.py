"""Degree-irregularity statistics for the entropy-weighted CEG (§8).

The paper's future-work sketch proposes using "entropies of the
distributions of small-size joins as edge weights ... and pick the
minimum-weight, e.g. 'lowest entropy', paths, assuming that degrees are
more regular in lower entropy edges".

We instantiate that idea with the KL divergence from uniform of the
extension-degree distribution of a CEG edge ``(E, I)``: if the ``n_I``
matches of ``I`` extend to ``c_1 .. c_n`` matches of ``E`` (zeros
included), the irregularity is ``log2(n_I) - H(c / Σc)`` — exactly 0
when every ``I``-match extends equally often (the uniformity assumption
is then *exact*) and growing with skew.  Summing it along a path scores
how much trust the path's uniformity assumptions deserve.
"""

from __future__ import annotations

import math

import numpy as np

from repro.catalog.degrees import _encode_columns, _isomorphism
from repro.engine.counter import count_pattern
from repro.engine.join import extend_by_edge, start_table
from repro.errors import MissingStatisticError, check_format_version
from repro.graph.digraph import LabeledDiGraph
from repro.query.canonical import canonical_key, canonical_pattern
from repro.query.pattern import QueryPattern
from repro.query.shape import spanning_tree_and_closures

__all__ = ["EntropyCatalog", "degree_irregularity", "ENTROPY_FORMAT_VERSION"]

# Version 2: cache entries are keyed by *canonical* variable names (see
# _canonical_vars) so they are recomputable from the key alone.  Version-1
# artifacts keyed entries by request variable names; loading one would
# silently miss on every lookup, so the version check rejects them with
# the standard "rebuild the artifact" error instead.
ENTROPY_FORMAT_VERSION = 2


def degree_irregularity(counts: np.ndarray, num_groups: float) -> float:
    """``log2(n) - H(counts / total)``: KL divergence from uniform.

    ``counts`` are the non-zero extension counts; ``num_groups`` is the
    total number of groups including those with zero extensions.
    """
    total = float(counts.sum())
    if total <= 0 or num_groups <= 1:
        return 0.0
    probabilities = counts / total
    entropy = float(-(probabilities * np.log2(probabilities)).sum())
    return max(math.log2(num_groups) - entropy, 0.0)


def _canonical_vars(
    extension: QueryPattern, intersection_vars: frozenset[str]
) -> tuple[str, ...]:
    """The intersection variables translated to canonical names.

    Entries are keyed by ``(canonical pattern key, canonical variable
    names)`` so the cache is purely shape-addressed: isomorphic
    requests under different variable namings share one entry
    (irregularity is renaming-invariant), and the dynamic-graph
    maintainer can recompute any stored entry from its key alone.
    """
    canon = canonical_pattern(extension)
    if canon == extension:
        return tuple(sorted(intersection_vars))
    mapping = _isomorphism(extension, canon)
    return tuple(sorted(mapping.get(v, v) for v in intersection_vars))


class EntropyCatalog:
    """Cached per-(E, I) degree-irregularity statistics.

    ``graph`` may be None for a catalog loaded from an artifact; a
    statistic absent from the artifact then raises
    :class:`MissingStatisticError` rather than silently scoring 0.
    """

    def __init__(
        self,
        graph: LabeledDiGraph | None,
        max_rows: int | None = 5_000_000,
    ):
        self.graph = graph
        self.max_rows = max_rows
        self._cache: dict[tuple, float] = {}

    def irregularity(
        self, extension: QueryPattern, intersection_vars: frozenset[str]
    ) -> float:
        """Irregularity of extending ``intersection_vars`` to ``extension``.

        ``intersection_vars`` must be a subset of the extension pattern's
        variables; an empty set (the CEG's first hop uses the exact
        cardinality) scores 0.
        """
        if not intersection_vars:
            return 0.0
        key = (
            canonical_key(extension),
            _canonical_vars(extension, intersection_vars),
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.graph is None:
            raise MissingStatisticError(
                "statistics artifact does not cover entropy for "
                f"{extension!r} on {sorted(intersection_vars)}"
            )
        value = self._compute(extension, intersection_vars)
        self._cache[key] = value
        return value

    def _compute(
        self, extension: QueryPattern, intersection_vars: frozenset[str]
    ) -> float:
        tree, closures = spanning_tree_and_closures(extension)
        order = tree + closures
        try:
            table = start_table(self.graph, extension.edges[order[0]])
            for index in order[1:]:
                table = extend_by_edge(
                    self.graph, table, extension.edges[index],
                    max_rows=self.max_rows,
                )
        except Exception:
            return 0.0
        if table.size == 0:
            return 0.0
        columns = [
            table.variables.index(var)
            for var in sorted(intersection_vars)
            if var in table.variables
        ]
        if not columns:
            return 0.0
        keys = _encode_columns(table.rows[:, columns], self.graph.num_vertices)
        _, counts = np.unique(keys, return_counts=True)
        # Number of groups: all distinct bindings of the intersection
        # variables that have at least one match of the *intersection*
        # pattern itself (zero-extension groups dilute the uniform
        # reference distribution).
        groups = self._group_count(extension, intersection_vars)
        groups = max(groups, float(len(counts)))
        return degree_irregularity(counts.astype(np.float64), groups)

    def _group_count(
        self, extension: QueryPattern, intersection_vars: frozenset[str]
    ) -> float:
        """Distinct bindings of the intersection vars in the data."""
        # Use the projection of any single atom touching the vars as a
        # cheap proxy domain; exact group counting would require the
        # intersection pattern, which the CEG builder supplies only as a
        # variable set here.
        for edge in extension.edges:
            if edge.src in intersection_vars and edge.dst in intersection_vars:
                return float(count_pattern(self.graph, QueryPattern([edge])))
        best = 0.0
        for edge in extension.edges:
            if edge.src in intersection_vars:
                best = max(best, float(self.graph.distinct_sources(edge.label)))
            if edge.dst in intersection_vars:
                best = max(
                    best, float(self.graph.distinct_destinations(edge.label))
                )
        return best

    @property
    def num_entries(self) -> int:
        """Number of cached irregularity statistics."""
        return len(self._cache)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_artifact(self) -> dict:
        """JSON-serialisable snapshot of the cached irregularities."""
        return {
            "format_version": ENTROPY_FORMAT_VERSION,
            "kind": "entropy",
            "entries": [
                {
                    "key": [list(atom) for atom in pattern_key],
                    "vars": list(variables),
                    "value": value,
                }
                for (pattern_key, variables), value in sorted(
                    self._cache.items()
                )
            ],
        }

    @classmethod
    def from_artifact(
        cls,
        payload: dict,
        graph: LabeledDiGraph | None = None,
        max_rows: int | None = 5_000_000,
    ) -> "EntropyCatalog":
        """Rebuild a catalog from :meth:`to_artifact` output."""
        check_format_version(payload, ENTROPY_FORMAT_VERSION, "entropy catalog")
        catalog = cls(graph, max_rows=max_rows)
        for entry in payload["entries"]:
            pattern_key = tuple(
                (int(src), int(dst), str(label))
                for src, dst, label in entry["key"]
            )
            catalog._cache[
                (pattern_key, tuple(str(v) for v in entry["vars"]))
            ] = float(entry["value"])
        return catalog
