"""Maximum-degree statistics for pessimistic estimators (§5.1).

MOLP's inputs are the statistics ``deg(X, Y, R_i)`` — the maximum, over
values ``v`` of attribute set ``X``, of the number of distinct
``Y``-tuples in ``π_Y R_i`` whose ``X``-part equals ``v`` — for every
relation ``R_i`` and every ``X ⊆ Y ⊆ attrs(R_i)``.

§5.1.1 extends this to the outputs of small joins: a stored 2-join is
treated as an additional ternary relation.  :class:`StatRelation` wraps
either kind (a subpattern of the query) by materialising its match table
once and answering every ``deg(X, Y)`` from grouped distinct counts.

:class:`DegreeCatalog` caches :class:`StatRelation` objects per
canonical pattern so a workload shares statistics across queries, and
enforces that MOLP uses joins of at most the Markov-table size ``h``
(the "strict superset of the statistics used by optimistic estimators"
guarantee of §6.4).
"""

from __future__ import annotations

import numpy as np

from repro.engine.join import extend_by_edge, start_table
from repro.errors import MissingStatisticError, check_format_version
from repro.graph.digraph import LabeledDiGraph
from repro.query.canonical import canonical_key
from repro.query.pattern import QueryPattern
from repro.query.shape import spanning_tree_and_closures

__all__ = [
    "StatRelation",
    "DegreeCatalog",
    "group_max_distinct",
    "all_degree_pairs",
    "materialise_table",
    "DEGREES_FORMAT_VERSION",
]

DEGREES_FORMAT_VERSION = 1


def materialise_table(graph, pattern: QueryPattern, max_rows: int | None):
    """The full match table of a pattern (spanning tree, then closures).

    The one join-order recipe shared by the lazy :class:`StatRelation`
    and the offline bulk builder — both planes must produce the same
    rows or bit-identity between them breaks.
    """
    tree, closures = spanning_tree_and_closures(pattern)
    order = tree + closures
    table = start_table(graph, pattern.edges[order[0]])
    for index in order[1:]:
        table = extend_by_edge(
            graph, table, pattern.edges[index], max_rows=max_rows
        )
    return table


def _encode_columns(rows: np.ndarray, num_vertices: int) -> np.ndarray:
    """Pack row tuples into scalar keys (or structured fallback)."""
    if rows.shape[1] == 0:
        return np.zeros(rows.shape[0], dtype=np.int64)
    width = rows.shape[1]
    # Check the radix encoding fits in int64.
    if num_vertices ** width < 2 ** 62:
        keys = rows[:, 0].astype(np.int64)
        for column in range(1, width):
            keys = keys * np.int64(num_vertices) + rows[:, column]
        return keys
    # Fallback: lexicographic unique on the raw rows via void view.
    packed = np.ascontiguousarray(rows.astype(np.int64))
    return packed.view([("", np.int64)] * width).reshape(-1)


def group_max_distinct(
    rows: np.ndarray,
    x_cols: list[int],
    y_cols: list[int],
    num_vertices: int,
) -> float:
    """``max_v |{distinct Y-tuples with X-part == v}|`` over a match table.

    ``x_cols ⊆ y_cols``.  Empty ``x_cols`` returns the total number of
    distinct ``Y``-tuples (this is ``deg(∅, Y, R) = |π_Y R|``).
    """
    if rows.shape[0] == 0:
        return 0.0
    y_keys = _encode_columns(rows[:, y_cols], num_vertices)
    y_unique_idx = np.unique(y_keys, return_index=True)[1]
    if not x_cols:
        return float(len(y_unique_idx))
    distinct_rows = rows[y_unique_idx]
    x_keys = _encode_columns(distinct_rows[:, x_cols], num_vertices)
    _, counts = np.unique(x_keys, return_counts=True)
    return float(counts.max())


def all_degree_pairs(
    rows: np.ndarray,
    columns: tuple[str, ...],
    num_vertices: int,
) -> dict[tuple[frozenset[str], frozenset[str]], float]:
    """Every ``deg(X, Y)`` with ``X ⊆ Y ⊆ columns`` from one match table.

    Vectorised bulk extraction for the offline statistics builder: the
    distinct-``Y`` reduction is computed once per ``Y`` and shared by all
    ``X ⊆ Y`` (instead of once per pair as the lazy
    :meth:`StatRelation.deg` path does).  Values are exact tuple counts,
    so they are bit-identical to the lazily computed ones.
    """
    col_of = {var: i for i, var in enumerate(columns)}
    names = tuple(sorted(columns))
    n = len(names)
    result: dict[tuple[frozenset[str], frozenset[str]], float] = {}
    for y_mask in range(1 << n):
        y_names = sorted(names[i] for i in range(n) if y_mask >> i & 1)
        y_set = frozenset(y_names)
        if rows.shape[0] == 0:
            for x_set in _masked_subsets(y_names):
                result[(x_set, y_set)] = 0.0
            continue
        y_keys = _encode_columns(
            rows[:, [col_of[v] for v in y_names]], num_vertices
        )
        y_unique_idx = np.unique(y_keys, return_index=True)[1]
        distinct_rows = rows[y_unique_idx]
        for x_set in _masked_subsets(y_names):
            if not x_set:
                result[(x_set, y_set)] = float(len(y_unique_idx))
                continue
            x_keys = _encode_columns(
                distinct_rows[:, [col_of[v] for v in sorted(x_set)]],
                num_vertices,
            )
            _, counts = np.unique(x_keys, return_counts=True)
            result[(x_set, y_set)] = float(counts.max())
    return result


def _masked_subsets(names: list[str]):
    for mask in range(1 << len(names)):
        yield frozenset(names[i] for i in range(len(names)) if mask >> i & 1)


class StatRelation:
    """A query subpattern viewed as a relation with degree statistics.

    Two modes back the same interface: a graph-backed relation
    materialises its match table once and answers ``deg`` lazily; a
    *stored* relation (:meth:`from_artifact`) carries only precomputed
    degrees and its cardinality — no rows, no graph — and raises
    :class:`MissingStatisticError` for pairs the artifact lacks.
    """

    def __init__(
        self,
        graph: LabeledDiGraph,
        pattern: QueryPattern,
        max_rows: int | None = 5_000_000,
    ):
        self.pattern = pattern
        self.attributes = frozenset(pattern.variables)
        self._num_vertices = graph.num_vertices
        self._degrees: dict[tuple[frozenset[str], frozenset[str]], float] = {}
        self._columns: tuple[str, ...]
        self._rows: np.ndarray | None
        self._cardinality: float
        self._empty = False
        # Renamed views delegate deg() through (base relation, view-var
        # -> base-var mapping) so all isomorphic uses share one degree
        # cache; see DegreeCatalog._renamed_view.
        self._base: tuple["StatRelation", dict[str, str]] | None = None
        self._materialise(graph, max_rows)

    def _materialise(self, graph: LabeledDiGraph, max_rows: int | None) -> None:
        table = materialise_table(graph, self.pattern, max_rows)
        self._columns = table.variables
        self._rows = table.rows
        self._cardinality = float(table.rows.shape[0])

    @property
    def cardinality(self) -> float:
        """Number of tuples (matches) in the relation."""
        return self._cardinality

    def deg(self, x: frozenset[str], y: frozenset[str]) -> float:
        """``deg(X, Y)`` with ``X ⊆ Y ⊆ attrs`` (set-projection semantics)."""
        if not x <= y or not y <= self.attributes:
            raise MissingStatisticError(
                f"deg requires X ⊆ Y ⊆ {set(self.attributes)}; "
                f"got X={set(x)}, Y={set(y)}"
            )
        key = (x, y)
        cached = self._degrees.get(key)
        if cached is None:
            if self._base is not None:
                # Degree values are renaming-invariant, so delegating to
                # the canonical base relation reads (and fills) the one
                # shared cache — bit-identical to recomputing from the
                # shared match table.
                base, to_base = self._base
                cached = base.deg(
                    frozenset(to_base[v] for v in x),
                    frozenset(to_base[v] for v in y),
                )
                self._degrees[key] = cached
                return cached
            if self._rows is None:
                if self._empty:
                    # A known-empty relation: every degree is 0, exactly
                    # what group_max_distinct returns on zero rows.
                    return 0.0
                raise MissingStatisticError(
                    f"stored relation for {self.pattern!r} lacks "
                    f"deg(X={set(x)}, Y={set(y)})"
                )
            col_of = {var: i for i, var in enumerate(self._columns)}
            cached = group_max_distinct(
                self._rows,
                x_cols=[col_of[v] for v in sorted(x)],
                y_cols=[col_of[v] for v in sorted(y)],
                num_vertices=self._num_vertices,
            )
            self._degrees[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_artifact(self) -> dict:
        """JSON-serialisable snapshot: pattern, cardinality, all degrees.

        Graph-backed relations first complete their degree set (every
        ``X ⊆ Y ⊆ attrs`` pair — at most ``3^|attrs|`` values) through
        the vectorised bulk path, so the artifact can answer everything
        the lazy relation could; stored relations dump what they have.
        """
        if self._rows is not None:
            self._degrees = all_degree_pairs(
                self._rows, self._columns, self._num_vertices
            )
        return {
            "pattern": [list(edge) for edge in (
                (e.src, e.dst, e.label) for e in self.pattern.edges
            )],
            "cardinality": self._cardinality,
            "degrees": [
                [sorted(x), sorted(y), value]
                for (x, y), value in sorted(
                    self._degrees.items(),
                    key=lambda item: (sorted(item[0][1]), sorted(item[0][0])),
                )
            ],
        }

    @classmethod
    def from_artifact(cls, payload: dict) -> "StatRelation":
        """A rows-free relation serving the artifact's degrees only."""
        pattern = QueryPattern(
            (str(src), str(dst), str(label))
            for src, dst, label in payload["pattern"]
        )
        return cls._stored(
            pattern,
            cardinality=float(payload["cardinality"]),
            degrees={
                (frozenset(x), frozenset(y)): float(value)
                for x, y, value in payload["degrees"]
            },
        )

    @classmethod
    def _stored(
        cls,
        pattern: QueryPattern,
        cardinality: float,
        degrees: dict[tuple[frozenset[str], frozenset[str]], float],
        num_vertices: int = 0,
        columns: tuple[str, ...] | None = None,
    ) -> "StatRelation":
        """The one constructor for rows-free relations (no graph, no table)."""
        relation = cls.__new__(cls)
        relation.pattern = pattern
        relation.attributes = frozenset(pattern.variables)
        relation._num_vertices = num_vertices
        relation._columns = columns if columns is not None else pattern.variables
        relation._rows = None
        relation._cardinality = float(cardinality)
        relation._empty = cardinality == 0.0
        relation._degrees = degrees
        relation._base = None
        return relation

    @classmethod
    def from_table(
        cls,
        pattern: QueryPattern,
        table,
        num_vertices: int,
        columns: tuple[str, ...] | None = None,
    ) -> "StatRelation":
        """A rows-free relation with every degree pair bulk-extracted.

        Used by the offline builder: the match table is consumed for its
        degrees and row count, not retained.  ``columns`` renames the
        table's variables positionally (degree values are
        renaming-invariant), letting builders store relations under
        canonical variable names regardless of how the table was grown.
        """
        columns = table.variables if columns is None else columns
        return cls._stored(
            pattern,
            cardinality=float(table.rows.shape[0]),
            degrees=all_degree_pairs(table.rows, columns, num_vertices),
            num_vertices=num_vertices,
            columns=columns,
        )

    @classmethod
    def canonical_from_table(
        cls, pattern: QueryPattern, table, num_vertices: int
    ) -> "StatRelation":
        """:meth:`from_table` stored under canonical variable names.

        The one constructor every statistics *builder* (bulk and
        incremental alike) uses, so two builds of the same canonical
        pattern — however its match table was grown — serialize to
        byte-identical artifacts.
        """
        from repro.query.canonical import canonical_pattern

        canon = canonical_pattern(pattern)
        if canon == pattern:
            # Same variable names, but store `canon` anyway: equality is
            # edge-order-insensitive, and the serialized atom order must
            # be the canonical-key order, not the growth-path order.
            return cls.from_table(canon, table, num_vertices)
        mapping = _isomorphism(pattern, canon)
        return cls.from_table(
            canon,
            table,
            num_vertices,
            columns=tuple(mapping[v] for v in table.variables),
        )

    @classmethod
    def empty(cls, pattern: QueryPattern) -> "StatRelation":
        """A rows-free relation known to have no matches (all degrees 0)."""
        return cls._stored(pattern, cardinality=0.0, degrees={})


class DegreeCatalog:
    """Per-query provider of the relations MOLP may use.

    For a query ``Q`` and join-statistics size ``h``, the available
    relations are every connected subpattern of ``Q`` with at most ``h``
    atoms (base atoms for ``h = 1``).  StatRelations are cached across
    queries by canonical pattern, with variables mapped back to the
    query's own names on the way out.
    """

    def __init__(
        self,
        graph: LabeledDiGraph | None,
        h: int = 1,
        max_rows: int | None = 5_000_000,
        complete: bool = False,
    ):
        if h < 1:
            raise ValueError("degree catalog needs h >= 1")
        self.graph = graph
        self.h = h
        self.max_rows = max_rows
        self.complete = complete
        self._cache: dict[tuple, StatRelation] = {}
        # Optional lazy array backing (repro.stats.flatpack.FlatDegrees):
        # cache misses binary-search it before the lazy/complete paths,
        # and materialize() must fold it into _cache before any mutation.
        self._flat = None

    def relation_for(self, pattern: QueryPattern) -> StatRelation:
        """The StatRelation of a (connected, ≤ h atoms) subpattern."""
        if len(pattern) > self.h or not pattern.is_connected():
            raise MissingStatisticError(
                f"no stored statistics for pattern of size {len(pattern)}"
            )
        key = canonical_key(pattern)
        cached = self._cache.get(key)
        if cached is None:
            flat = self._flat
            if flat is not None:
                cached = flat.lookup(key)
                if cached is not None:
                    # Memoise the decoded relation so repeat lookups (and
                    # the renamed-view path below) behave exactly as if it
                    # had been loaded eagerly.
                    self._cache[key] = cached
        if cached is None:
            if self.graph is None:
                if self.complete:
                    # Bulk enumeration stored every non-empty pattern,
                    # so a miss can only be an empty relation (exactly
                    # what a graph-backed catalog would materialise).
                    cached = StatRelation.empty(pattern)
                    self._cache[key] = cached
                    return cached
                raise MissingStatisticError(
                    f"statistics artifact does not cover pattern {pattern!r} "
                    "(graph-free degree catalog)"
                )
            cached = StatRelation(self.graph, pattern, self.max_rows)
            self._cache[key] = cached
            return cached
        if cached.pattern == pattern:
            return cached
        # Cache canonical stats but expose the caller's variable names:
        # rebuild a view with the same match table under renaming.  The
        # view is required whenever the stored pattern is not *exactly*
        # the requested one — matching variable name tuples are not
        # enough, because two isomorphic patterns can reuse the same
        # names in different structural roles (e.g. the two L-labeled
        # atoms of ``a-L->b-L->a``), and serving the stored columns
        # directly would then read degrees of the wrong attribute.
        return self._renamed_view(cached, pattern)

    def _renamed_view(
        self, relation: StatRelation, pattern: QueryPattern
    ) -> StatRelation:
        """A StatRelation for ``pattern`` sharing ``relation``'s table.

        For rows-free stored relations the precomputed degrees are
        translated through the isomorphism instead (degree values are
        renaming-invariant, so the translated entries are exact).
        """
        mapping = _isomorphism(relation.pattern, pattern)
        view = StatRelation.__new__(StatRelation)
        view.pattern = pattern
        view.attributes = frozenset(pattern.variables)
        view._num_vertices = relation._num_vertices
        view._columns = tuple(mapping[v] for v in relation._columns)
        view._rows = relation._rows
        view._cardinality = relation._cardinality
        view._empty = relation._empty
        view._base = (relation, {v: k for k, v in mapping.items()})
        if relation._rows is None:
            view._degrees = {
                (
                    frozenset(mapping[v] for v in x),
                    frozenset(mapping[v] for v in y),
                ): value
                for (x, y), value in relation._degrees.items()
            }
        else:
            view._degrees = {}
        return view

    def stat_relations(self, query: QueryPattern) -> list[StatRelation]:
        """All stored relations usable for ``query`` (atoms + small joins)."""
        result = []
        for subset in query.connected_edge_subsets(max_size=self.h):
            result.append(self.relation_for(query.subpattern(subset)))
        return result

    def materialize(self) -> None:
        """Decode any flat array backing into the ordinary relation dict.

        Mandatory before mutating ``_cache`` (delta replay, maintenance,
        re-serialisation); idempotent and cheap when the catalog has no
        flat backing.
        """
        flat = self._flat
        if flat is None:
            return
        for key, relation in flat.items():
            self._cache.setdefault(key, relation)
        self._flat = None

    @property
    def num_entries(self) -> int:
        """Number of canonical relations stored (flat backing included)."""
        if self._flat is not None:
            extras = sum(
                1 for key in self._cache if self._flat.index.find(key) is None
            )
            return self._flat.count + extras
        return len(self._cache)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_artifact(self) -> dict:
        """JSON-serialisable snapshot of every cached relation."""
        self.materialize()
        return {
            "format_version": DEGREES_FORMAT_VERSION,
            "kind": "degrees",
            "h": self.h,
            "complete": self.complete,
            "relations": [
                relation.to_artifact()
                for _, relation in sorted(self._cache.items())
            ],
        }

    @classmethod
    def from_artifact(
        cls,
        payload: dict,
        graph: LabeledDiGraph | None = None,
        max_rows: int | None = 5_000_000,
    ) -> "DegreeCatalog":
        """Rebuild a catalog from :meth:`to_artifact` output.

        With a graph, uncovered patterns fall back to lazy
        materialisation; without one they serve empty relations (when the
        artifact is ``complete``) or raise
        :class:`MissingStatisticError`.
        """
        check_format_version(payload, DEGREES_FORMAT_VERSION, "degree catalog")
        catalog = cls(
            graph,
            h=int(payload["h"]),
            max_rows=max_rows,
            complete=bool(payload.get("complete", False)),
        )
        for entry in payload["relations"]:
            relation = StatRelation.from_artifact(entry)
            catalog._cache[canonical_key(relation.pattern)] = relation
        return catalog


def _isomorphism(source: QueryPattern, target: QueryPattern) -> dict[str, str]:
    """A variable mapping turning ``source`` into ``target``.

    Both patterns are small (≤ h atoms) and known to share a canonical
    key, so a backtracking search over atom correspondences terminates
    immediately.
    """
    target_edges = list(target.edges)

    def backtrack(
        index: int, mapping: dict[str, str], used: set[int]
    ) -> dict[str, str] | None:
        if index == len(source.edges):
            return dict(mapping)
        edge = source.edges[index]
        for position, candidate in enumerate(target_edges):
            if position in used or candidate.label != edge.label:
                continue
            bound_src = mapping.get(edge.src)
            bound_dst = mapping.get(edge.dst)
            if bound_src not in (None, candidate.src):
                continue
            if bound_dst not in (None, candidate.dst):
                continue
            if bound_src is None and candidate.src in mapping.values():
                if edge.src not in mapping:
                    conflict = any(
                        mapping.get(k) == candidate.src for k in mapping
                    )
                    if conflict:
                        continue
            mapping2 = dict(mapping)
            mapping2[edge.src] = candidate.src
            mapping2[edge.dst] = candidate.dst
            if len(set(mapping2.values())) != len(mapping2):
                continue
            used.add(position)
            found = backtrack(index + 1, mapping2, used)
            if found is not None:
                return found
            used.discard(position)
        return None

    found = backtrack(0, {}, set())
    if found is None:
        raise MissingStatisticError(
            "internal error: cached pattern is not isomorphic to request"
        )
    return found
