"""Maximum-degree statistics for pessimistic estimators (§5.1).

MOLP's inputs are the statistics ``deg(X, Y, R_i)`` — the maximum, over
values ``v`` of attribute set ``X``, of the number of distinct
``Y``-tuples in ``π_Y R_i`` whose ``X``-part equals ``v`` — for every
relation ``R_i`` and every ``X ⊆ Y ⊆ attrs(R_i)``.

§5.1.1 extends this to the outputs of small joins: a stored 2-join is
treated as an additional ternary relation.  :class:`StatRelation` wraps
either kind (a subpattern of the query) by materialising its match table
once and answering every ``deg(X, Y)`` from grouped distinct counts.

:class:`DegreeCatalog` caches :class:`StatRelation` objects per
canonical pattern so a workload shares statistics across queries, and
enforces that MOLP uses joins of at most the Markov-table size ``h``
(the "strict superset of the statistics used by optimistic estimators"
guarantee of §6.4).
"""

from __future__ import annotations

import numpy as np

from repro.engine.join import extend_by_edge, start_table
from repro.errors import MissingStatisticError
from repro.graph.digraph import LabeledDiGraph
from repro.query.canonical import canonical_key
from repro.query.pattern import QueryPattern
from repro.query.shape import spanning_tree_and_closures

__all__ = ["StatRelation", "DegreeCatalog", "group_max_distinct"]


def _encode_columns(rows: np.ndarray, num_vertices: int) -> np.ndarray:
    """Pack row tuples into scalar keys (or structured fallback)."""
    if rows.shape[1] == 0:
        return np.zeros(rows.shape[0], dtype=np.int64)
    width = rows.shape[1]
    # Check the radix encoding fits in int64.
    if num_vertices ** width < 2 ** 62:
        keys = rows[:, 0].astype(np.int64)
        for column in range(1, width):
            keys = keys * np.int64(num_vertices) + rows[:, column]
        return keys
    # Fallback: lexicographic unique on the raw rows via void view.
    packed = np.ascontiguousarray(rows.astype(np.int64))
    return packed.view([("", np.int64)] * width).reshape(-1)


def group_max_distinct(
    rows: np.ndarray,
    x_cols: list[int],
    y_cols: list[int],
    num_vertices: int,
) -> float:
    """``max_v |{distinct Y-tuples with X-part == v}|`` over a match table.

    ``x_cols ⊆ y_cols``.  Empty ``x_cols`` returns the total number of
    distinct ``Y``-tuples (this is ``deg(∅, Y, R) = |π_Y R|``).
    """
    if rows.shape[0] == 0:
        return 0.0
    y_keys = _encode_columns(rows[:, y_cols], num_vertices)
    y_unique_idx = np.unique(y_keys, return_index=True)[1]
    if not x_cols:
        return float(len(y_unique_idx))
    distinct_rows = rows[y_unique_idx]
    x_keys = _encode_columns(distinct_rows[:, x_cols], num_vertices)
    _, counts = np.unique(x_keys, return_counts=True)
    return float(counts.max())


class StatRelation:
    """A query subpattern viewed as a relation with degree statistics."""

    def __init__(
        self,
        graph: LabeledDiGraph,
        pattern: QueryPattern,
        max_rows: int | None = 5_000_000,
    ):
        self.pattern = pattern
        self.attributes = frozenset(pattern.variables)
        self._num_vertices = graph.num_vertices
        self._degrees: dict[tuple[frozenset[str], frozenset[str]], float] = {}
        self._columns: tuple[str, ...]
        self._rows: np.ndarray
        self._materialise(graph, max_rows)

    def _materialise(self, graph: LabeledDiGraph, max_rows: int | None) -> None:
        tree, closures = spanning_tree_and_closures(self.pattern)
        order = tree + closures
        table = start_table(graph, self.pattern.edges[order[0]])
        for index in order[1:]:
            table = extend_by_edge(
                graph, table, self.pattern.edges[index], max_rows=max_rows
            )
        self._columns = table.variables
        self._rows = table.rows

    @property
    def cardinality(self) -> float:
        """Number of tuples (matches) in the relation."""
        return float(self._rows.shape[0])

    def deg(self, x: frozenset[str], y: frozenset[str]) -> float:
        """``deg(X, Y)`` with ``X ⊆ Y ⊆ attrs`` (set-projection semantics)."""
        if not x <= y or not y <= self.attributes:
            raise MissingStatisticError(
                f"deg requires X ⊆ Y ⊆ {set(self.attributes)}; "
                f"got X={set(x)}, Y={set(y)}"
            )
        key = (x, y)
        cached = self._degrees.get(key)
        if cached is None:
            col_of = {var: i for i, var in enumerate(self._columns)}
            cached = group_max_distinct(
                self._rows,
                x_cols=[col_of[v] for v in sorted(x)],
                y_cols=[col_of[v] for v in sorted(y)],
                num_vertices=self._num_vertices,
            )
            self._degrees[key] = cached
        return cached


class DegreeCatalog:
    """Per-query provider of the relations MOLP may use.

    For a query ``Q`` and join-statistics size ``h``, the available
    relations are every connected subpattern of ``Q`` with at most ``h``
    atoms (base atoms for ``h = 1``).  StatRelations are cached across
    queries by canonical pattern, with variables mapped back to the
    query's own names on the way out.
    """

    def __init__(
        self,
        graph: LabeledDiGraph,
        h: int = 1,
        max_rows: int | None = 5_000_000,
    ):
        if h < 1:
            raise ValueError("degree catalog needs h >= 1")
        self.graph = graph
        self.h = h
        self.max_rows = max_rows
        self._cache: dict[tuple, StatRelation] = {}

    def relation_for(self, pattern: QueryPattern) -> StatRelation:
        """The StatRelation of a (connected, ≤ h atoms) subpattern."""
        if len(pattern) > self.h or not pattern.is_connected():
            raise MissingStatisticError(
                f"no stored statistics for pattern of size {len(pattern)}"
            )
        key = canonical_key(pattern)
        cached = self._cache.get(key)
        if cached is None:
            cached = StatRelation(self.graph, pattern, self.max_rows)
            self._cache[key] = cached
            return cached
        if cached.pattern == pattern:
            return cached
        # Cache canonical stats but expose the caller's variable names:
        # rebuild a view with the same match table under renaming.  The
        # view is required whenever the stored pattern is not *exactly*
        # the requested one — matching variable name tuples are not
        # enough, because two isomorphic patterns can reuse the same
        # names in different structural roles (e.g. the two L-labeled
        # atoms of ``a-L->b-L->a``), and serving the stored columns
        # directly would then read degrees of the wrong attribute.
        return self._renamed_view(cached, pattern)

    def _renamed_view(
        self, relation: StatRelation, pattern: QueryPattern
    ) -> StatRelation:
        """A StatRelation for ``pattern`` sharing ``relation``'s table."""
        mapping = _isomorphism(relation.pattern, pattern)
        view = StatRelation.__new__(StatRelation)
        view.pattern = pattern
        view.attributes = frozenset(pattern.variables)
        view._num_vertices = relation._num_vertices
        view._degrees = {}
        view._columns = tuple(mapping[v] for v in relation._columns)
        view._rows = relation._rows
        return view

    def stat_relations(self, query: QueryPattern) -> list[StatRelation]:
        """All stored relations usable for ``query`` (atoms + small joins)."""
        result = []
        for subset in query.connected_edge_subsets(max_size=self.h):
            result.append(self.relation_for(query.subpattern(subset)))
        return result


def _isomorphism(source: QueryPattern, target: QueryPattern) -> dict[str, str]:
    """A variable mapping turning ``source`` into ``target``.

    Both patterns are small (≤ h atoms) and known to share a canonical
    key, so a backtracking search over atom correspondences terminates
    immediately.
    """
    target_edges = list(target.edges)

    def backtrack(
        index: int, mapping: dict[str, str], used: set[int]
    ) -> dict[str, str] | None:
        if index == len(source.edges):
            return dict(mapping)
        edge = source.edges[index]
        for position, candidate in enumerate(target_edges):
            if position in used or candidate.label != edge.label:
                continue
            bound_src = mapping.get(edge.src)
            bound_dst = mapping.get(edge.dst)
            if bound_src not in (None, candidate.src):
                continue
            if bound_dst not in (None, candidate.dst):
                continue
            if bound_src is None and candidate.src in mapping.values():
                if edge.src not in mapping:
                    conflict = any(
                        mapping.get(k) == candidate.src for k in mapping
                    )
                    if conflict:
                        continue
            mapping2 = dict(mapping)
            mapping2[edge.src] = candidate.src
            mapping2[edge.dst] = candidate.dst
            if len(set(mapping2.values())) != len(mapping2):
                continue
            used.add(position)
            found = backtrack(index + 1, mapping2, used)
            if found is not None:
                return found
            used.discard(position)
        return None

    found = backtrack(0, {}, set())
    if found is None:
        raise MissingStatisticError(
            "internal error: cached pattern is not isomorphic to request"
        )
    return found
