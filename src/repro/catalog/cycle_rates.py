"""Cycle-closing-rate statistics for ``CEG_OCR`` (§4.3).

For a query cycle ``C`` of length ``k > h`` whose last missing atom is
``E_i`` (between cycle neighbours ``E_{i-1}`` and ``E_{i+1}``), the
paper stores ``P(E_{i-1} * E_{i+1} | E_i)``: the probability that a path
starting with an ``E_{i+1}``-labeled edge and ending with an
``E_{i-1}``-labeled edge is closed into a cycle by an ``E_i`` edge.  The
statistic is estimated by sampling random walks (the paper's own
implementation choice) and cached per label triple plus the walk's
direction signature, keeping the table within the paper's ``O(L^3)``
budget times a constant number of direction patterns.
"""

from __future__ import annotations

from repro.errors import MissingStatisticError, check_format_version

from repro.engine.sampler import PatternSampler
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = ["CycleClosingRates", "CYCLE_RATES_FORMAT_VERSION"]

CYCLE_RATES_FORMAT_VERSION = 1


class CycleClosingRates:
    """Sampled ``P(prev * next | closing)`` statistics.

    ``graph`` may be None for a table loaded from an artifact: stored
    rates (including a stored None, meaning sampling completed no walks
    — the CEG builder then falls back to the ``CEG_O`` weight, exactly
    as graph-backed serving would) are served as usual, while a spec
    absent from the artifact raises
    :class:`~repro.errors.MissingStatisticError` rather than silently
    estimating with different weights than the graph-backed path.
    """

    def __init__(
        self,
        graph: LabeledDiGraph | None,
        seed: int = 0,
        samples: int = 1000,
    ):
        self.graph = graph
        self.seed = seed
        self.samples = samples
        self._sampler = (
            PatternSampler(graph, seed=seed) if graph is not None else None
        )
        self._cache: dict[tuple, float | None] = {}

    def rate(
        self,
        pattern: QueryPattern,
        cycle: frozenset[int],
        closing_index: int,
    ) -> float | None:
        """Closing probability for ``closing_index`` completing ``cycle``.

        Returns None when no walk completed (statistic unavailable); the
        CEG builder then falls back to the ``CEG_O`` weight.
        """
        spec = _walk_spec(pattern, cycle, closing_index)
        if spec is None:
            return None
        cached_key = spec
        if cached_key in self._cache:
            return self._cache[cached_key]
        if self._sampler is None:
            # Graph-free table: a *stored* None (sampling completed no
            # walks at build time) is served above and keeps the same
            # CEG_O-weight fallback the graph-backed path uses — but an
            # unstored spec must fail loudly, or the served estimate
            # would silently diverge from the graph-backed one.
            raise MissingStatisticError(
                "statistics artifact does not cover the cycle-closing "
                f"rate for labels ({spec[0]!r}, {spec[1]!r}, {spec[2]!r}); "
                "rebuild with a workload containing this cyclic shape"
            )
        first_label, last_label, closing_label, directions, closing_forward = spec
        closed, completed = self._sampler.random_walk_closure(
            first_label=first_label,
            last_label=last_label,
            closing_label=closing_label,
            directions=directions,
            closing_forward=closing_forward,
            samples=self.samples,
        )
        if completed == 0:
            rate: float | None = None
        elif closed == 0:
            # Laplace-style floor: an estimate of exactly zero would give
            # infinite q-error on any non-empty instance.
            rate = 0.5 / completed
        else:
            rate = closed / completed
        self._cache[cached_key] = rate
        return rate

    @property
    def num_entries(self) -> int:
        """Number of cached closing-rate statistics."""
        return len(self._cache)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_artifact(self) -> dict:
        """JSON-serialisable snapshot of the sampled rates."""
        return {
            "format_version": CYCLE_RATES_FORMAT_VERSION,
            "kind": "cycle_rates",
            "seed": self.seed,
            "samples": self.samples,
            "entries": [
                {
                    "first": first,
                    "last": last,
                    "closing": closing,
                    "directions": list(directions),
                    "closing_forward": closing_forward,
                    "rate": rate,
                }
                for (
                    first, last, closing, directions, closing_forward
                ), rate in sorted(self._cache.items())
            ],
        }

    @classmethod
    def from_artifact(
        cls, payload: dict, graph: LabeledDiGraph | None = None
    ) -> "CycleClosingRates":
        """Rebuild a rate table from :meth:`to_artifact` output."""
        check_format_version(
            payload, CYCLE_RATES_FORMAT_VERSION, "cycle-closing rates"
        )
        table = cls(
            graph,
            seed=int(payload.get("seed", 0)),
            samples=int(payload.get("samples", 1000)),
        )
        for entry in payload["entries"]:
            key = (
                str(entry["first"]),
                str(entry["last"]),
                str(entry["closing"]),
                tuple(bool(d) for d in entry["directions"]),
                bool(entry["closing_forward"]),
            )
            rate = entry["rate"]
            table._cache[key] = None if rate is None else float(rate)
        return table


def _walk_spec(
    pattern: QueryPattern,
    cycle: frozenset[int],
    closing_index: int,
) -> tuple[str, str, str, tuple[bool, ...], bool] | None:
    """Derive the sampling walk from the query cycle.

    The open path runs from the closing atom's destination variable back
    to its source variable through the remaining cycle atoms.  Returns
    ``(first_label, last_label, closing_label, directions,
    closing_forward)`` for :meth:`PatternSampler.random_walk_closure`,
    or None if the cycle cannot be linearised (degenerate shapes).
    """
    if closing_index not in cycle:
        return None
    closing = pattern.edges[closing_index]
    remaining = [i for i in cycle if i != closing_index]
    if not remaining:
        return None
    # Walk from closing.dst around to closing.src.
    start = closing.dst
    goal = closing.src
    current = start
    unused = set(remaining)
    directions: list[bool] = []
    labels: list[str] = []
    while unused:
        step = None
        for index in sorted(unused):
            if pattern.edges[index].touches(current):
                step = index
                break
        if step is None:
            return None
        edge = pattern.edges[step]
        forward = edge.src == current
        directions.append(forward)
        labels.append(edge.label)
        current = edge.dst if forward else edge.src
        unused.discard(step)
    if current != goal:
        return None
    # The walk ends at closing.src; the closing edge runs src -> dst,
    # i.e. from the walk's last vertex to its first.
    return (labels[0], labels[-1], closing.label, tuple(directions), True)
