"""Markov tables: exact cardinalities of small joins (§4.1).

A Markov table of size ``h`` stores the true cardinality of every
connected join pattern with at most ``h`` atoms.  §6 builds
*workload-specific* tables ("we worked backwards from the queries to
find the necessary subqueries"); a graph-backed table mirrors that by
populating entries lazily — a pattern's count is computed through the
exact engine on first request and cached under its canonical key.

Tables are persistable through the uniform artifact protocol
(:meth:`MarkovTable.to_artifact` / :meth:`MarkovTable.from_artifact`,
with :meth:`save` / :meth:`load` as file-level conveniences): in a
deployment the statistics are computed offline by
:mod:`repro.stats.build` and shipped to the optimizer, exactly as the
paper's sub-MB tables are.  A table loaded *without* a graph serves
purely from its stored entries: a miss returns 0 when the table is
``complete`` over a known label universe (bulk enumeration stores every
non-empty pattern, so absence means emptiness) and raises
:class:`MissingStatisticError` otherwise — it never silently scans a
base graph at estimation time.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.engine.backtracking import COUNT_IMPLS
from repro.engine.counter import count_pattern
from repro.errors import (
    DatasetError,
    MissingStatisticError,
    check_format_version,
)
from repro.graph.digraph import LabeledDiGraph
from repro.query.canonical import canonical_key
from repro.query.pattern import QueryPattern

__all__ = ["MarkovTable", "MARKOV_FORMAT_VERSION"]

MARKOV_FORMAT_VERSION = 1


class MarkovTable:
    """Cardinalities of connected joins with at most ``h`` atoms.

    ``graph`` may be None for a table served purely from stored entries
    (see the module docstring); ``labels`` is the label universe such a
    table was built over and ``complete`` asserts that every non-empty
    pattern of at most ``h`` atoms over those labels has an entry.
    """

    def __init__(
        self,
        graph: LabeledDiGraph | None,
        h: int = 2,
        count_budget: int | None = None,
        labels: tuple[str, ...] | None = None,
        complete: bool = False,
        count_impl: str | None = None,
    ):
        if h < 1:
            raise ValueError("Markov table size h must be >= 1")
        if count_impl is not None and count_impl not in COUNT_IMPLS:
            # Fail at construction, not on the first lazy miss mid-batch.
            raise ValueError(
                f"count_impl must be one of {COUNT_IMPLS}, got {count_impl!r}"
            )
        if graph is None and labels is None:
            raise ValueError(
                "a graph-free Markov table needs its label universe"
            )
        self.graph = graph
        self.h = h
        self.count_budget = count_budget
        # Which cyclic-core counter lazy misses use (None = engine
        # default).  A runtime knob, not part of the persisted artifact.
        self.count_impl = count_impl
        self.labels = tuple(labels) if labels is not None else None
        self.complete = complete
        self._cache: dict[tuple, float] = {}
        # Optional lazy array backing (repro.stats.flatpack.FlatMarkov):
        # cache misses binary-search it before falling back to _on_miss,
        # and materialize() must fold it into _cache before any mutation.
        self._flat = None

    def contains(self, pattern: QueryPattern) -> bool:
        """Whether the table covers this pattern (size and connectivity)."""
        return len(pattern) <= self.h and pattern.is_connected()

    def cardinality(self, pattern: QueryPattern) -> float:
        """Exact cardinality of a stored pattern.

        Raises :class:`MissingStatisticError` if the pattern is larger
        than ``h`` or disconnected — estimators must never peek beyond
        the summary they are allowed.
        """
        if not self.contains(pattern):
            raise MissingStatisticError(
                f"pattern with {len(pattern)} atoms not covered by "
                f"Markov table of size h={self.h}"
            )
        key = canonical_key(pattern)
        cached = self._cache.get(key)
        if cached is None:
            flat = self._flat
            if flat is not None:
                cached = flat.lookup(key)
            if cached is None:
                cached = self._on_miss(pattern)
            self._cache[key] = cached
        return cached

    def materialize(self) -> None:
        """Decode any flat array backing into the ordinary entry dict.

        Mandatory before mutating ``_cache`` (delta replay, maintenance,
        re-serialisation): flat-backed entries are otherwise still
        visible behind a ``pop``/``del``.  Idempotent and cheap when the
        table has no flat backing.
        """
        flat = self._flat
        if flat is None:
            return
        for key, value in flat.items():
            self._cache.setdefault(key, value)
        self._flat = None

    def _on_miss(self, pattern: QueryPattern) -> float:
        if self.graph is not None:
            return float(
                count_pattern(
                    self.graph,
                    pattern,
                    budget=self.count_budget,
                    impl=self.count_impl,
                )
            )
        assert self.labels is not None
        known = set(self.labels)
        if any(label not in known for label in pattern.labels):
            # A label absent from the dataset: the relation is empty, so
            # the join is too (matches the graph-backed count of 0).
            return 0.0
        if self.complete:
            # Bulk enumeration stored every non-empty pattern, so a
            # known-label miss can only be an empty join.
            return 0.0
        raise MissingStatisticError(
            "statistics artifact does not cover pattern "
            f"{pattern!r} (workload-directed table without a graph)"
        )

    @property
    def num_entries(self) -> int:
        """Number of distinct patterns stored (flat backing included)."""
        if self._flat is not None:
            extras = sum(
                1 for key in self._cache if self._flat.lookup(key) is None
            )
            return self._flat.count + extras
        return len(self._cache)

    def estimated_size_bytes(self) -> int:
        """Rough memory footprint of the materialised entries.

        Each entry is one canonical pattern key (≈ 24 bytes per atom)
        plus an 8-byte float; the paper reports tables under 0.9 MB and
        this estimate lets benches confirm the same order of magnitude.
        """
        per_entry = 8
        for key in self._cache:
            per_entry += 24 * len(key) + 8
        return per_entry

    def prime(self, patterns: list[QueryPattern]) -> None:
        """Precompute entries for the given patterns (bench warm-up)."""
        for pattern in patterns:
            if self.contains(pattern):
                self.cardinality(pattern)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_artifact(self) -> dict:
        """A JSON-serialisable snapshot of the table.

        Canonical keys are tuples of ``(src_index, dst_index, label)``
        triples; they serialise as nested lists.
        """
        self.materialize()
        labels = self.labels
        if labels is None and self.graph is not None:
            labels = self.graph.labels
        return {
            "format_version": MARKOV_FORMAT_VERSION,
            "kind": "markov",
            "h": self.h,
            "complete": self.complete,
            "labels": list(labels) if labels is not None else None,
            "entries": [
                {"key": [list(atom) for atom in key], "count": value}
                for key, value in sorted(self._cache.items())
            ],
        }

    @classmethod
    def from_artifact(
        cls,
        payload: dict,
        graph: LabeledDiGraph | None = None,
        count_budget: int | None = None,
    ) -> "MarkovTable":
        """Rebuild a table from :meth:`to_artifact` output.

        With a graph, entries absent from the artifact are computed
        lazily as usual, so an artifact from a narrower workload remains
        usable; without one the table serves purely from its entries.
        """
        check_format_version(payload, MARKOV_FORMAT_VERSION, "Markov table")
        try:
            h = int(payload["h"])
            entries = payload["entries"]
            labels = payload.get("labels")
            complete = bool(payload.get("complete", False))
        except (ValueError, KeyError, TypeError) as error:
            raise DatasetError(f"invalid Markov table artifact: {error}")
        table = cls(
            graph,
            h=h,
            count_budget=count_budget,
            labels=tuple(labels) if labels is not None else None,
            complete=complete,
        )
        for entry in entries:
            key = tuple(
                (int(src), int(dst), str(label))
                for src, dst, label in entry["key"]
            )
            table._cache[key] = float(entry["count"])
        return table

    def save(self, path: str | Path) -> None:
        """Write the materialised entries as versioned JSON."""
        Path(path).write_text(json.dumps(self.to_artifact()), encoding="utf-8")

    @classmethod
    def load(
        cls,
        path: str | Path,
        graph: LabeledDiGraph | None = None,
        count_budget: int | None = None,
    ) -> "MarkovTable":
        """Rebuild a table from :meth:`save` output."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise DatasetError(f"invalid Markov table file {path}: {error}")
        if not isinstance(payload, dict):
            raise DatasetError(
                f"invalid Markov table file {path}: expected a JSON object"
            )
        try:
            return cls.from_artifact(payload, graph, count_budget=count_budget)
        except DatasetError as error:
            raise DatasetError(f"{path}: {error}") from None
