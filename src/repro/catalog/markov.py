"""Markov tables: exact cardinalities of small joins (§4.1).

A Markov table of size ``h`` stores the true cardinality of every
connected join pattern with at most ``h`` atoms.  §6 builds
*workload-specific* tables ("we worked backwards from the queries to
find the necessary subqueries"); this implementation mirrors that by
populating entries lazily — a pattern's count is computed through the
exact engine on first request and cached under its canonical key, so
only statistics actually touched by a workload are ever materialised.

Tables are persistable (:meth:`MarkovTable.save` /
:meth:`MarkovTable.load`): in a deployment the statistics are computed
offline and shipped to the optimizer, exactly as the paper's sub-MB
tables are.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.engine.counter import count_pattern
from repro.errors import DatasetError, MissingStatisticError
from repro.graph.digraph import LabeledDiGraph
from repro.query.canonical import canonical_key
from repro.query.pattern import QueryPattern

__all__ = ["MarkovTable"]


class MarkovTable:
    """Cardinalities of connected joins with at most ``h`` atoms."""

    def __init__(
        self,
        graph: LabeledDiGraph,
        h: int = 2,
        count_budget: int | None = None,
    ):
        if h < 1:
            raise ValueError("Markov table size h must be >= 1")
        self.graph = graph
        self.h = h
        self.count_budget = count_budget
        self._cache: dict[tuple, float] = {}

    def contains(self, pattern: QueryPattern) -> bool:
        """Whether the table covers this pattern (size and connectivity)."""
        return len(pattern) <= self.h and pattern.is_connected()

    def cardinality(self, pattern: QueryPattern) -> float:
        """Exact cardinality of a stored pattern.

        Raises :class:`MissingStatisticError` if the pattern is larger
        than ``h`` or disconnected — estimators must never peek beyond
        the summary they are allowed.
        """
        if not self.contains(pattern):
            raise MissingStatisticError(
                f"pattern with {len(pattern)} atoms not covered by "
                f"Markov table of size h={self.h}"
            )
        key = canonical_key(pattern)
        cached = self._cache.get(key)
        if cached is None:
            cached = float(
                count_pattern(self.graph, pattern, budget=self.count_budget)
            )
            self._cache[key] = cached
        return cached

    @property
    def num_entries(self) -> int:
        """Number of distinct patterns materialised so far."""
        return len(self._cache)

    def estimated_size_bytes(self) -> int:
        """Rough memory footprint of the materialised entries.

        Each entry is one canonical pattern key (≈ 24 bytes per atom)
        plus an 8-byte float; the paper reports tables under 0.9 MB and
        this estimate lets benches confirm the same order of magnitude.
        """
        per_entry = 8
        for key in self._cache:
            per_entry += 24 * len(key) + 8
        return per_entry

    def prime(self, patterns: list[QueryPattern]) -> None:
        """Precompute entries for the given patterns (bench warm-up)."""
        for pattern in patterns:
            if self.contains(pattern):
                self.cardinality(pattern)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the materialised entries as JSON.

        Canonical keys are tuples of ``(src_index, dst_index, label)``
        triples; they serialise as nested lists.
        """
        payload = {
            "h": self.h,
            "entries": [
                {"key": [list(atom) for atom in key], "count": value}
                for key, value in sorted(self._cache.items())
            ],
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(
        cls,
        path: str | Path,
        graph: LabeledDiGraph,
        count_budget: int | None = None,
    ) -> "MarkovTable":
        """Rebuild a table from :meth:`save` output.

        The graph is still required: entries absent from the file are
        computed lazily as usual, so a file from a narrower workload
        remains usable.
        """
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
            h = int(payload["h"])
            entries = payload["entries"]
        except (OSError, ValueError, KeyError) as error:
            raise DatasetError(f"invalid Markov table file {path}: {error}")
        table = cls(graph, h=h, count_budget=count_budget)
        for entry in entries:
            key = tuple(
                (int(src), int(dst), str(label))
                for src, dst, label in entry["key"]
            )
            table._cache[key] = float(entry["count"])
        return table
