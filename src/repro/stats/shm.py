"""Shared-memory statistics plane: one parsed image per host.

An N-worker fleet serving the same artifact used to pay N disk parses
per reload — N JSON decodes, N NPZ inflations, N private copies of the
same arrays.  This module makes the parse a per-*host* cost: the first
process to need a statistics generation encodes it once (via
:func:`repro.stats.flatpack.store_to_image`) into a shared segment under
``/dev/shm``; every sibling worker attaches the same pages zero-copy and
rebuilds its store from numpy views over the mapping.  Served floats are
bit-identical to a disk load because float64 arrays pass through the
image codec untouched.

Implementation notes — the plane is built directly on ``/dev/shm``
files (``os.open`` + ``mmap``), *not* :mod:`multiprocessing.shared_memory`:
the stdlib helper drags in a resource-tracker sidecar process whose
at-exit chatter lands on stderr, and the serving tier asserts clean
stderr.  The kernel mechanism is identical (tmpfs-backed pages shared
across processes); doing it by hand buys exact control of naming,
lifecycle, and teardown.

Per segment there are two files:

``repro-img-<digest>``
    The image: a 4 KiB header (magic, READY flag written last,
    creator pid, meta length, and a 128-slot pid refcount table), the
    JSON-encoded meta, then the arrays 64-byte aligned, indexed by an
    offset table inside the meta.
``repro-clm-<digest>``
    The build claim: created ``O_EXCL`` by the publishing process and
    removed once the image is READY.  Attachers finding a claim poll
    for READY; if the claimant pid is dead they steal the claim and
    rebuild (crash-safe publishing).

Lifecycle is pid-refcounted: every process using a segment registers
its pid in the header table (under ``flock`` on the image file), a
fork's child re-registers itself (:meth:`SegmentHandle.reattach`), and
whichever process deregisters last unlinks the file — dead pids found
in the table are pruned, so a SIGKILL'd worker cannot leak a segment.
"""

from __future__ import annotations

import errno
import fcntl
import hashlib
import json
import mmap
import os
import struct
import time
from pathlib import Path

import numpy as np

from repro.errors import DatasetError

__all__ = ["SharedArtifactPlane", "SegmentHandle", "shm_root"]

SEGMENT_MAGIC = b"RPROSHM1"
#: Header layout: magic(8) state(8) creator_pid(8) meta_len(8), then the
#: pid table at PID_TABLE_OFFSET, data from HEADER_BYTES.
HEADER_BYTES = 4096
PID_TABLE_OFFSET = 1024
PID_SLOTS = 128
_STATE_BUILDING = 0
_STATE_READY = 1
_ALIGN = 64

#: How long an attacher waits for a claimed build before giving up and
#: parsing from disk itself (seconds).
READY_TIMEOUT = 30.0
_POLL_INTERVAL = 0.005


def shm_root() -> Path:
    """Where segments live (``REPRO_SHM_DIR`` overrides, for tests)."""
    return Path(os.environ.get("REPRO_SHM_DIR", "/dev/shm"))


def _digest(artifact_path: str | Path) -> str:
    """Content key of one artifact generation, tenant-agnostic.

    Hashes the resolved directory path plus the manifest bytes, so two
    tenants pointing at the same artifact share one image while a
    compaction/delta rewrite (new manifest) gets a fresh segment.
    """
    directory = Path(artifact_path).resolve()
    digest = hashlib.sha1(str(directory).encode("utf-8"))
    manifest = directory / "manifest.json"
    try:
        digest.update(b"\x00" + manifest.read_bytes())
    except OSError:
        pass
    return digest.hexdigest()[:24]


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    return True


class SegmentHandle:
    """One process's registered mapping of a READY segment.

    Holds the ``mmap`` the store's arrays view into, so it must stay
    referenced as long as the store is served; :meth:`close` deregisters
    this process's pid and unlinks the segment when the table empties.
    """

    def __init__(
        self,
        path: Path,
        fd: int,
        buf: mmap.mmap,
        meta: dict,
        on_prune=None,
    ):
        self.path = path
        self._fd = fd
        self._buf = buf
        self.meta = meta
        self.registered_pid = 0
        self._closed = False
        #: Called with the number of dead pids swept from the refcount
        #: table (the owning plane counts them for its stats/metrics).
        self._on_prune = on_prune

    @property
    def name(self) -> str:
        return self.path.name

    def arrays(self) -> dict[str, np.ndarray]:
        """Zero-copy numpy views over the shared pages."""
        out: dict[str, np.ndarray] = {}
        for entry in self.meta["__arrays__"]:
            array = np.frombuffer(
                self._buf,
                dtype=np.dtype(entry["dtype"]),
                count=int(np.prod(entry["shape"], dtype=np.int64))
                if entry["shape"]
                else 1,
                offset=entry["offset"],
            )
            out[entry["name"]] = array.reshape(entry["shape"])
        return out

    # -- refcount -----------------------------------------------------
    def _mutate_pids(self, mutate) -> int:
        """Run ``mutate(pids) -> pids`` on the table under flock."""
        pruned = 0
        fcntl.flock(self._fd, fcntl.LOCK_EX)
        try:
            table = self._buf[
                PID_TABLE_OFFSET : PID_TABLE_OFFSET + 8 * PID_SLOTS
            ]
            pids = []
            for pid in struct.unpack(f"<{PID_SLOTS}q", table):
                if pid <= 0:
                    continue
                if _pid_alive(pid):
                    pids.append(pid)
                else:
                    pruned += 1
            pids = mutate(pids)
            if len(pids) > PID_SLOTS:  # pragma: no cover - 128 procs/host
                pids = pids[:PID_SLOTS]
            packed = struct.pack(
                f"<{PID_SLOTS}q", *pids, *([0] * (PID_SLOTS - len(pids)))
            )
            self._buf[PID_TABLE_OFFSET : PID_TABLE_OFFSET + 8 * PID_SLOTS] = (
                packed
            )
            return len(pids)
        finally:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            if pruned and self._on_prune is not None:
                self._on_prune(pruned)

    def register(self) -> None:
        """Add one reference for this process to the refcount table.

        The table holds one entry per *registration*, not per distinct
        pid: a process serving two tenants off one artifact holds two
        handles, and closing one must not strip the other's reference.
        """
        me = os.getpid()
        self._mutate_pids(lambda pids: pids + [me])
        self.registered_pid = me

    def reattach(self) -> None:
        """Re-register after ``fork()``: the child counts as a new user."""
        if self.registered_pid != os.getpid():
            self.register()

    def close(self) -> None:
        """Deregister; the last process out unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        me = os.getpid()

        def drop_one(pids: list[int]) -> list[int]:
            out = list(pids)
            try:
                out.remove(me)
            except ValueError:
                pass
            if not out:
                # Unlink while still holding the flock so a peer that
                # just opened the path cannot register between our
                # zero-count read and the unlink — and only if the path
                # still names this mapping's inode: a rename-over
                # republish may have put a newer image at this name
                # that other processes rely on.
                try:
                    here = os.stat(self.path)
                    mine = os.fstat(self._fd)
                    if (here.st_ino, here.st_dev) == (
                        mine.st_ino,
                        mine.st_dev,
                    ):
                        self.path.unlink()
                except OSError:
                    pass
            return out

        try:
            self._mutate_pids(drop_one)
        except (OSError, ValueError):  # pragma: no cover - racing unlink
            pass
        try:
            self._buf.close()
        except BufferError:
            # numpy views are still alive (store still referenced
            # somewhere); the mapping is freed when they are collected.
            pass
        try:
            os.close(self._fd)
        except OSError:  # pragma: no cover
            pass


class SharedArtifactPlane:
    """Publish/attach statistics images keyed by artifact generation."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else shm_root()
        self.publishes = 0
        self.attaches = 0
        self.steals = 0
        self.prunes = 0

    @classmethod
    def create(cls) -> "SharedArtifactPlane | None":
        """A plane if shared memory is usable here, else None."""
        plane = cls()
        return plane if plane.available() else None

    def available(self) -> bool:
        root = self.root
        return root.is_dir() and os.access(root, os.W_OK)

    # -- naming -------------------------------------------------------
    def store_key(self, artifact_path: str | Path) -> str:
        return _digest(artifact_path)

    def _image_path(self, key: str) -> Path:
        return self.root / f"repro-img-{key}"

    def _claim_path(self, key: str) -> Path:
        return self.root / f"repro-clm-{key}"

    def segments(self) -> list[str]:
        """Names of this plane's live segments (test/bench teardown)."""
        return sorted(
            path.name for path in self.root.glob("repro-img-*")
        ) + sorted(path.name for path in self.root.glob("repro-clm-*"))

    def segment_usage(self) -> tuple[int, int]:
        """``(count, bytes)`` of the READY/published images on this host.

        Counts ``repro-img-*`` files only (claims are transient and
        tiny); in-flight ``.tmp<pid>`` spills are excluded.
        """
        count = 0
        total = 0
        for path in self.root.glob("repro-img-*"):
            if ".tmp" in path.name:
                continue
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
        return count, total

    def stats(self) -> dict:
        count, total = self.segment_usage()
        return {
            "publishes": self.publishes,
            "attaches": self.attaches,
            "steals": self.steals,
            "prunes": self.prunes,
            "segments": count,
            "segment_bytes": total,
        }

    # -- attach -------------------------------------------------------
    def try_attach(self, key: str) -> SegmentHandle | None:
        """Map an existing READY segment, or None if there is none.

        Waits out an in-progress build by a live claimant; a dead
        claimant's partial image is removed so the caller rebuilds.
        """
        deadline = time.monotonic() + READY_TIMEOUT
        while True:
            handle = self._open_ready(key)
            if handle is not None:
                self.attaches += 1
                return handle
            claim_pid = self._claimant(key)
            if claim_pid is None:
                return None
            if not _pid_alive(claim_pid):
                self._steal_claim(key, claim_pid)
                self.steals += 1
                return None
            if time.monotonic() > deadline:  # pragma: no cover - hung peer
                return None
            time.sleep(_POLL_INTERVAL)

    def _open_ready(self, key: str) -> SegmentHandle | None:
        path = self._image_path(key)
        try:
            fd = os.open(path, os.O_RDWR)
        except OSError:
            return None
        buf = None
        try:
            size = os.fstat(fd).st_size
            if size < HEADER_BYTES:
                os.close(fd)
                return None
            buf = mmap.mmap(fd, size)
            magic, state, creator, meta_len = struct.unpack_from(
                "<8sqqq", buf, 0
            )
            if magic != SEGMENT_MAGIC or state != _STATE_READY:
                buf.close()
                os.close(fd)
                return None
            meta = json.loads(
                bytes(buf[HEADER_BYTES : HEADER_BYTES + meta_len]).decode(
                    "utf-8"
                )
            )
            handle = SegmentHandle(
                path, fd, buf, meta, on_prune=self._note_prunes
            )
            handle.register()
            return handle
        except (OSError, ValueError, struct.error):
            if buf is not None:
                try:
                    buf.close()
                except (BufferError, ValueError):  # pragma: no cover
                    pass
            os.close(fd)
            return None

    def _note_prunes(self, count: int) -> None:
        self.prunes += count

    def _claimant(self, key: str) -> int | None:
        try:
            text = self._claim_path(key).read_text(encoding="utf-8")
            return int(text.strip() or "0")
        except (OSError, ValueError):
            return None

    def _steal_claim(self, key: str, dead_pid: int) -> None:
        """Remove a dead builder's claim and any half-written temp file.

        Publishing renames a complete temp file into place, so the image
        path itself is never partial — only the claim and the dead
        builder's ``.tmp*`` need sweeping before the caller rebuilds.
        """
        for pattern in (
            f"repro-img-{key}.tmp*",
            f"repro-clm-{key}.tmp*",
        ):
            for path in self.root.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        try:
            self._claim_path(key).unlink()
        except OSError:
            pass

    # -- publish ------------------------------------------------------
    def acquire(self, key: str, build):
        """Attach the segment for ``key``, building it if first in.

        ``build()`` must return ``(meta, arrays)`` — typically
        :func:`repro.stats.flatpack.store_to_image` output.  Returns
        ``(meta, arrays, handle)`` where the arrays are shared-memory
        views (publisher and attachers alike serve the same pages).
        Exactly one process per host runs ``build()`` per key; the rest
        attach.  On any shared-memory failure the caller should fall
        back to a plain disk parse.
        """
        handle = self.try_attach(key)
        if handle is not None:
            return handle.meta, handle.arrays(), handle
        claim = self._claim_path(key)
        # The claim must appear with its builder pid already inside —
        # a peer reading a half-written (empty) claim would take the
        # "0" for a dead builder, steal the claim, and pay a duplicate
        # parse.  Write a private temp file, then `link(2)` it into
        # place: atomic full-content publication AND exclusive (link
        # fails EEXIST when a peer claimed first).
        tmp_claim = claim.with_name(claim.name + f".tmp{os.getpid()}")
        try:
            tmp_claim.write_text(str(os.getpid()), encoding="utf-8")
        except OSError as error:
            raise DatasetError(
                f"shared statistics plane unavailable at {claim}: {error}"
            )
        try:
            try:
                os.link(tmp_claim, claim)
            except OSError as error:
                if error.errno != errno.EEXIST:
                    raise DatasetError(
                        f"shared statistics plane unavailable at {claim}: "
                        f"{error}"
                    )
                # Lost the race: someone else is building right now.
                handle = self.try_attach(key)
                if handle is not None:
                    return handle.meta, handle.arrays(), handle
                raise DatasetError(
                    f"shared statistics segment for {key} never became ready"
                )
        finally:
            try:
                tmp_claim.unlink()
            except OSError:  # pragma: no cover
                pass
        try:
            meta, arrays = build()
            handle = self._publish(key, meta, arrays)
        except BaseException:
            try:
                self._image_path(key).unlink()
            except OSError:
                pass
            raise
        finally:
            try:
                claim.unlink()
            except OSError:  # pragma: no cover
                pass
        self.publishes += 1
        return handle.meta, handle.arrays(), handle

    def _publish(
        self, key: str, meta: dict, arrays: dict[str, np.ndarray]
    ) -> SegmentHandle:
        """Write one segment: header, meta JSON, aligned arrays."""
        index = []
        offset = 0  # relative to data start, patched below
        plans = []
        for name in sorted(arrays):
            array = np.ascontiguousarray(arrays[name])
            plans.append((name, array))
        meta_blob = b""
        # Array offsets depend on the meta length, which includes the
        # offsets themselves.  Re-render until the meta stops growing:
        # offsets are monotonically nondecreasing in the meta length, so
        # this converges (usually in two rounds).  A render that comes
        # back no longer than the length the offsets were computed from
        # is safe as-is — the data region can only start at or past
        # where it was planned.
        while True:
            index = []
            data_start = HEADER_BYTES + len(meta_blob)
            data_start += -data_start % _ALIGN
            offset = data_start
            for name, array in plans:
                offset += -offset % _ALIGN
                index.append(
                    {
                        "name": name,
                        "dtype": array.dtype.str,
                        "shape": list(array.shape),
                        "offset": offset,
                        "nbytes": int(array.nbytes),
                    }
                )
                offset += int(array.nbytes)
            payload = dict(meta)
            payload["__arrays__"] = index
            rendered = json.dumps(payload, sort_keys=True).encode("utf-8")
            converged = len(rendered) <= len(meta_blob)
            meta_blob = rendered
            if converged:
                break
        total = offset
        if index and HEADER_BYTES + len(meta_blob) > index[0]["offset"]:
            raise DatasetError(
                "shared statistics meta overlaps array data"
            )  # pragma: no cover - guarded by the convergence loop
        path = self._image_path(key)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        fd = os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        try:
            os.ftruncate(fd, total)
            buf = mmap.mmap(fd, total)
            struct.pack_into(
                "<8sqqq",
                buf,
                0,
                SEGMENT_MAGIC,
                _STATE_BUILDING,
                os.getpid(),
                len(meta_blob),
            )
            buf[HEADER_BYTES : HEADER_BYTES + len(meta_blob)] = meta_blob
            for entry, (_, array) in zip(index, plans):
                start = entry["offset"]
                buf[start : start + entry["nbytes"]] = array.tobytes()
            # READY is written last; attachers only trust a READY image.
            struct.pack_into("<q", buf, 8, _STATE_READY)
            buf.flush()
            os.rename(tmp, path)
        except BaseException:
            os.close(fd)
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        handle = SegmentHandle(
            path,
            fd,
            buf,
            json.loads(meta_blob.decode("utf-8")),
            on_prune=self._note_prunes,
        )
        handle.register()
        return handle
