"""Versioned on-disk layout for statistics artifacts.

One artifact directory holds everything the serving plane needs.  The
default ``layout: "flat"`` keeps the array-heavy catalogs columnar and
mmap-able::

    <dir>/
      manifest.json             # format version, fingerprint, layout, config
      catalogs.npz              # markov/degrees/sumrdf as aligned arrays
      catalogs.meta.json        # vocabularies, flags, irregular fallbacks
      cycle_rates.json          # optional: CycleClosingRates.to_artifact()
      entropy.json              # optional: EntropyCatalog.to_artifact()
      characteristic_sets.json  # CharacteristicSetsEstimator.to_artifact()

The legacy ``layout: "json"`` spells the same catalogs as one file each
(``markov.json`` / ``degrees.json`` / ``sumrdf.npz``); loads accept
both, ``repro stats repack`` converts old artifacts in place.

The manifest carries a *dataset fingerprint* — a content hash of the
graph's relations — so a serving process can refuse statistics built
from a different dataset, and a ``format_version`` checked with the same
friendly :class:`~repro.errors.DatasetError` the per-catalog artifacts
use.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import DatasetError, check_format_version
from repro.graph.digraph import LabeledDiGraph

__all__ = [
    "STORE_FORMAT_VERSION",
    "CHECKPOINT_FORMAT_VERSION",
    "MANIFEST_FILE",
    "CATALOG_FILES",
    "CATALOG_ARRAYS_FILE",
    "CATALOG_META_FILE",
    "SIDECAR_CATALOGS",
    "DELTAS_DIR",
    "BUILD_STATE_DIR",
    "CHECKPOINT_FILE",
    "delta_file_name",
    "StoreManifest",
    "dataset_fingerprint",
]

STORE_FORMAT_VERSION = 1

#: Format of the mid-build resume checkpoint under BUILD_STATE_DIR.
CHECKPOINT_FORMAT_VERSION = 1

MANIFEST_FILE = "manifest.json"

#: Subdirectory holding the versioned delta files of a dynamic artifact.
DELTAS_DIR = "deltas"

#: Subdirectory (under the build output dir) holding resume state of an
#: in-progress bulk build; removed when the build completes.
BUILD_STATE_DIR = "build_state"

#: The per-level checkpoint file inside BUILD_STATE_DIR.
CHECKPOINT_FILE = "checkpoint.json"


def delta_file_name(generation: int) -> str:
    """Relative path of one delta generation's patch file."""
    return f"{DELTAS_DIR}/{generation:04d}.json"

CATALOG_FILES = {
    "markov": "markov.json",
    "degrees": "degrees.json",
    "cycle_rates": "cycle_rates.json",
    "entropy": "entropy.json",
    "characteristic_sets": "characteristic_sets.json",
    "sumrdf": "sumrdf.npz",
}

#: The ``layout: "flat"`` files replacing markov/degrees/sumrdf: one
#: uncompressed, mmap-able NPZ of columnar arrays plus its JSON metadata
#: (vocabularies, completeness flags, irregular-entry fallbacks).
CATALOG_ARRAYS_FILE = "catalogs.npz"
CATALOG_META_FILE = "catalogs.meta.json"

#: Small dict-shaped catalogs that stay lazy JSON sidecar files in both
#: layouts (they are dwarfed by the array-backed ones).
SIDECAR_CATALOGS = frozenset(
    {"cycle_rates", "entropy", "characteristic_sets"}
)


def dataset_fingerprint(graph: LabeledDiGraph) -> str:
    """A content hash of the graph's relations.

    Stable across processes and platforms: hashes the vertex count plus
    every label's sorted ``(src, dst)`` arrays (relations are stored
    sorted and deduplicated, so equal graphs hash equal).
    """
    digest = hashlib.sha256()
    digest.update(f"v{graph.num_vertices}".encode("utf-8"))
    for label in graph.labels:
        relation = graph.relation(label)
        digest.update(b"\x00" + label.encode("utf-8") + b"\x00")
        digest.update(relation.src_by_src.astype("<i8").tobytes())
        digest.update(relation.dst_by_src.astype("<i8").tobytes())
    return digest.hexdigest()[:20]


@dataclass
class StoreManifest:
    """Metadata of one statistics artifact directory.

    The delta-lineage fields make an artifact *dynamic*: ``generation``
    counts applied update generations, ``base_fingerprint`` is the
    dataset the base catalog files were built from, ``deltas`` lists one
    entry per applied generation (file name, parent/child fingerprints,
    update counts, timestamp), and ``compacted_generation`` marks how
    many of those generations are already folded into the base files —
    :meth:`repro.stats.store.StatisticsStore.load` replays only the
    rest.  ``dataset_fingerprint`` always names the *current* (post-
    delta) dataset, so fingerprint validation works against the mutated
    graph.
    """

    dataset_fingerprint: str
    h: int
    molp_h: int
    dataset_name: str = ""
    graph_summary: dict = field(default_factory=dict)
    build_config: dict = field(default_factory=dict)
    catalogs: list[str] = field(default_factory=list)
    complete: bool = False
    #: On-disk encoding: "json" (one JSON/NPZ file per catalog, the
    #: pre-flat layout) or "flat" (columnar catalogs.npz + meta, the
    #: mmap-able default).  Absent from old manifests -> "json".
    layout: str = "json"
    generation: int = 0
    base_fingerprint: str = ""
    compacted_generation: int = 0
    deltas: list[dict] = field(default_factory=list)
    last_delta_at: str | None = None

    def __post_init__(self) -> None:
        if not self.base_fingerprint:
            self.base_fingerprint = self.dataset_fingerprint

    def to_payload(self) -> dict:
        """The JSON body written as ``manifest.json``."""
        return {
            "format_version": STORE_FORMAT_VERSION,
            "kind": "statistics_store",
            "dataset_fingerprint": self.dataset_fingerprint,
            "dataset_name": self.dataset_name,
            "graph_summary": self.graph_summary,
            "h": self.h,
            "molp_h": self.molp_h,
            "complete": self.complete,
            "build_config": self.build_config,
            "catalogs": sorted(self.catalogs),
            "layout": self.layout,
            "generation": self.generation,
            "base_fingerprint": self.base_fingerprint,
            "compacted_generation": self.compacted_generation,
            "deltas": list(self.deltas),
            "last_delta_at": self.last_delta_at,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "StoreManifest":
        """Parse and version-check a ``manifest.json`` body."""
        check_format_version(
            payload, STORE_FORMAT_VERSION, "statistics store manifest"
        )
        try:
            last_delta_at = payload.get("last_delta_at")
            return cls(
                dataset_fingerprint=str(payload["dataset_fingerprint"]),
                dataset_name=str(payload.get("dataset_name", "")),
                graph_summary=dict(payload.get("graph_summary", {})),
                h=int(payload["h"]),
                molp_h=int(payload["molp_h"]),
                complete=bool(payload.get("complete", False)),
                build_config=dict(payload.get("build_config", {})),
                catalogs=list(payload.get("catalogs", [])),
                layout=str(payload.get("layout", "json")),
                generation=int(payload.get("generation", 0)),
                base_fingerprint=str(payload.get("base_fingerprint", "")),
                compacted_generation=int(
                    payload.get("compacted_generation", 0)
                ),
                deltas=[dict(entry) for entry in payload.get("deltas", [])],
                last_delta_at=(
                    str(last_delta_at) if last_delta_at is not None else None
                ),
            )
        except (KeyError, ValueError, TypeError) as error:
            raise DatasetError(f"invalid statistics manifest: {error}")

    def save(self, directory: str | Path) -> None:
        """Write ``manifest.json`` into the artifact directory."""
        path = Path(directory) / MANIFEST_FILE
        path.write_text(
            json.dumps(self.to_payload(), indent=2), encoding="utf-8"
        )

    @classmethod
    def load(cls, directory: str | Path) -> "StoreManifest":
        """Read ``manifest.json`` from an artifact directory."""
        path = Path(directory) / MANIFEST_FILE
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise DatasetError(
                f"not a statistics artifact directory (no readable "
                f"{MANIFEST_FILE}): {error}"
            )
        except ValueError as error:
            raise DatasetError(f"corrupt {path}: {error}")
        if not isinstance(payload, dict):
            raise DatasetError(f"corrupt {path}: expected a JSON object")
        return cls.from_payload(payload)
