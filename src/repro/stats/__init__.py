"""Offline statistics pipeline: build plane vs serve plane.

The paper's deployment story (§6) computes all summaries *offline* —
sub-MB Markov tables, degree statistics, cycle-closing rates — and
ships them to the optimizer, which never touches the base graph at
estimation time.  This package is that separation:

* :func:`build_statistics` — the **build plane**: bulk-enumerate and
  batch-count every summary a configured estimator suite needs;
* :class:`StatisticsStore` — the artifact facade: one versioned
  directory (`manifest.json` + JSON/NPZ per catalog) written by
  :meth:`~StatisticsStore.save` and reloaded by
  :meth:`~StatisticsStore.load`;
* the **serve plane**: ``store.session()`` (or
  ``EstimationSession(store=...)``) serves estimates bit-identical to
  the graph-backed path, with zero engine calls after startup when the
  store is loaded graph-free.
"""

from repro.stats.artifact import (
    STORE_FORMAT_VERSION,
    StoreManifest,
    dataset_fingerprint,
)
from repro.stats.build import (
    StatsBuildConfig,
    build_statistics,
    ensure_baselines,
    extend_statistics,
)
from repro.stats.store import StatisticsStore, inspect_artifact

__all__ = [
    "STORE_FORMAT_VERSION",
    "StoreManifest",
    "dataset_fingerprint",
    "StatsBuildConfig",
    "build_statistics",
    "ensure_baselines",
    "extend_statistics",
    "StatisticsStore",
    "inspect_artifact",
]
