"""Flat columnar catalog images: one codec, two transports.

The serving plane wants every catalog as a handful of contiguous numpy
arrays so a statistics generation can be (a) written as an uncompressed,
64-byte-aligned NPZ that :func:`repro.graph.io._mmap_npz_arrays` opens
zero-copy, and (b) published once per host into a shared-memory segment
that sibling workers attach instead of re-parsing (see
:mod:`repro.stats.shm`).  This module is the codec both transports
share:

* **Canonical keys** — a Markov/degree canonical key (a tuple of
  ``(src_index, dst_index, label)`` triples) packs into a fixed-width
  byte string, 6 bytes per atom (``>HHH`` with every component stored
  ``+1`` so no atom is all-zero), labels interned through a sorted
  vocabulary.  Keys sort and binary-search directly as a numpy ``S``
  array; entries that do not fit the fixed-width form (a component over
  :data:`MAX_COMPONENT`, a non-canonical stored pattern) fall back to a
  JSON ``irregular`` list in the metadata and are decoded eagerly.
* **Lazy backings** — :class:`FlatMarkov` / :class:`FlatDegrees` hold
  the arrays and decode single entries on demand; the owning catalog
  memoises decoded values in its ordinary ``_cache`` and calls
  ``materialize()`` before any mutation.
* **Deterministic NPZ** — :func:`write_stored_npz` emits a byte-stable
  uncompressed archive (fixed timestamps, sorted members, aligned data)
  because CI byte-compares serial vs parallel vs resumed builds.
* **Store images** — :func:`store_to_image` / :func:`store_from_image`
  round-trip a whole :class:`~repro.stats.store.StatisticsStore` through
  ``(meta dict, named float/byte arrays)``, the unit both the flat disk
  layout and the shm plane move around.  Floats pass through untouched
  (float64 in, float64 out), so served estimates stay bit-identical.
"""

from __future__ import annotations

import io
import json
import struct
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import DatasetError

__all__ = [
    "IMAGE_FORMAT_VERSION",
    "MAX_COMPONENT",
    "FlatMarkov",
    "FlatDegrees",
    "encode_canonical_key",
    "decode_canonical_key",
    "markov_to_flat",
    "markov_from_flat",
    "degrees_to_flat",
    "degrees_from_flat",
    "sumrdf_to_flat",
    "sumrdf_from_flat",
    "catalogs_to_flat",
    "store_to_image",
    "store_from_image",
    "write_stored_npz",
]

IMAGE_FORMAT_VERSION = 1

ATOM_BYTES = 6
#: Largest vertex index / label id a packed atom can carry (u16, +1 bias).
MAX_COMPONENT = 0xFFFE


# ----------------------------------------------------------------------
# Canonical-key packing
# ----------------------------------------------------------------------
def encode_canonical_key(key: tuple, label_ids: dict[str, int]) -> bytes | None:
    """Pack a canonical key into 6 bytes per atom, or None if it can't.

    Components are stored ``+1`` so no real atom starts with a zero
    ``u16`` — which is how :func:`decode_canonical_key` tells content
    from the trailing null padding numpy's ``S`` dtype strips and
    re-adds.
    """
    out = bytearray()
    for src, dst, label in key:
        label_id = label_ids.get(label)
        if (
            label_id is None
            or src < 0
            or dst < 0
            or src > MAX_COMPONENT
            or dst > MAX_COMPONENT
            or label_id > MAX_COMPONENT
        ):
            return None
        out += struct.pack(">HHH", src + 1, dst + 1, label_id + 1)
    return bytes(out)


def decode_canonical_key(raw: bytes, vocab: list[str]) -> tuple:
    """Inverse of :func:`encode_canonical_key` on a stripped ``S`` item.

    numpy strips trailing nulls from ``S`` items; real content is a
    multiple of :data:`ATOM_BYTES` whose final atom loses at most one
    null byte (a ``u16`` low byte), so re-padding to the next atom
    boundary restores it exactly.
    """
    raw += b"\x00" * (-len(raw) % ATOM_BYTES)
    key = []
    for offset in range(0, len(raw), ATOM_BYTES):
        src, dst, label_id = struct.unpack_from(">HHH", raw, offset)
        if src == 0:
            break
        key.append((src - 1, dst - 1, vocab[label_id - 1]))
    return tuple(key)


def _canonical_pattern_of(key: tuple):
    """The pattern :func:`repro.query.canonical.canonical_pattern` builds."""
    from repro.query.pattern import QueryPattern

    return QueryPattern(
        (f"v{src}", f"v{dst}", label) for src, dst, label in key
    )


class _KeyIndex:
    """Sorted packed keys plus the label vocabulary they intern."""

    def __init__(self, keys: np.ndarray, vocab: list[str]):
        self.keys = keys
        self.vocab = list(vocab)
        self.label_ids = {label: i for i, label in enumerate(self.vocab)}
        self.width = int(keys.dtype.itemsize)

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    def find(self, key: tuple) -> int | None:
        """Position of a canonical key, or None when absent."""
        if not len(self):
            return None
        probe = encode_canonical_key(key, self.label_ids)
        if probe is None or len(probe) > self.width:
            return None
        position = int(np.searchsorted(self.keys, probe))
        # numpy hands back ``S`` items with trailing nulls stripped (an
        # ``np.bytes_``, whose ``==`` against raw bytes is strict), so a
        # probe whose final atom ends in 0x00 (label_id+1 divisible by
        # 256) would never compare equal to its own stored form.  Strip
        # the probe the same way: valid encodings lose at most one
        # content null (see :func:`decode_canonical_key`), so stripped
        # forms are still unique.
        if position < len(self) and bytes(self.keys[position]) == probe.rstrip(
            b"\x00"
        ):
            return position
        return None

    def key_at(self, position: int) -> tuple:
        return decode_canonical_key(bytes(self.keys[position]), self.vocab)


def _pack_sorted(encoded: list[bytes]) -> tuple[np.ndarray, np.ndarray]:
    """Encoded keys as one sorted ``S`` array plus the sort permutation."""
    width = max((len(raw) for raw in encoded), default=ATOM_BYTES)
    keys = np.array(encoded, dtype=f"S{width}")
    if keys.shape[0] == 0:
        keys = np.empty(0, dtype=f"S{width}")
    order = np.argsort(keys, kind="stable")
    return keys[order], order


def _key_vocab(keys) -> list[str]:
    return sorted({label for key in keys for _, _, label in key})


# ----------------------------------------------------------------------
# Markov table <-> flat arrays
# ----------------------------------------------------------------------
class FlatMarkov:
    """Lazy array backing for a :class:`~repro.catalog.markov.MarkovTable`."""

    def __init__(self, keys: np.ndarray, counts: np.ndarray, vocab: list[str]):
        self.index = _KeyIndex(keys, vocab)
        self.counts = counts

    @property
    def count(self) -> int:
        return len(self.index)

    def lookup(self, key: tuple) -> float | None:
        position = self.index.find(key)
        if position is None:
            return None
        return float(self.counts[position])

    def items(self):
        for position in range(len(self.index)):
            yield self.index.key_at(position), float(self.counts[position])


def markov_to_flat(markov) -> tuple[dict, dict[str, np.ndarray]]:
    """``(meta, arrays)`` snapshot of a (materialised) Markov table."""
    markov.materialize()
    entries = sorted(markov._cache.items())
    vocab = _key_vocab(key for key, _ in entries)
    label_ids = {label: i for i, label in enumerate(vocab)}
    encoded: list[bytes] = []
    counts: list[float] = []
    irregular: list[dict] = []
    for key, count in entries:
        raw = encode_canonical_key(key, label_ids)
        if raw is None:
            irregular.append(
                {"key": [list(atom) for atom in key], "count": count}
            )
        else:
            encoded.append(raw)
            counts.append(count)
    keys, order = _pack_sorted(encoded)
    values = np.asarray(counts, dtype=np.float64)[order]
    labels = markov.labels
    if labels is None and markov.graph is not None:
        labels = markov.graph.labels
    meta = {
        "h": markov.h,
        "complete": markov.complete,
        "labels": list(labels) if labels is not None else None,
        "vocab": vocab,
        "entries": int(keys.shape[0]),
        "irregular": irregular,
    }
    return meta, {"markov::keys": keys, "markov::counts": values}


def markov_from_flat(meta: dict, arrays: dict, graph=None):
    """A flat-backed Markov table over ``markov::*`` arrays."""
    from repro.catalog.markov import MarkovTable

    labels = meta.get("labels")
    table = MarkovTable.__new__(MarkovTable)
    table.graph = graph
    table.h = int(meta["h"])
    table.count_budget = None
    table.count_impl = None
    table.labels = tuple(labels) if labels is not None else None
    table.complete = bool(meta.get("complete", False))
    table._cache = {}
    table._flat = FlatMarkov(
        arrays["markov::keys"],
        arrays["markov::counts"],
        list(meta.get("vocab", [])),
    )
    for entry in meta.get("irregular", []):
        key = tuple(
            (int(src), int(dst), str(label))
            for src, dst, label in entry["key"]
        )
        table._cache[key] = float(entry["count"])
    return table


# ----------------------------------------------------------------------
# Degree catalog <-> flat arrays
# ----------------------------------------------------------------------
def _degree_entries(relation) -> list[tuple[frozenset, frozenset, float]]:
    """A relation's degrees, completed and in artifact order."""
    from repro.catalog.degrees import all_degree_pairs

    if relation._rows is not None:
        relation._degrees = all_degree_pairs(
            relation._rows, relation._columns, relation._num_vertices
        )
    return [
        (x, y, float(value))
        for (x, y), value in sorted(
            relation._degrees.items(),
            key=lambda item: (sorted(item[0][1]), sorted(item[0][0])),
        )
    ]


def _encodable_relation(relation, key: tuple) -> bool:
    """Whether a StatRelation round-trips through the packed form.

    Requires the stored pattern to be *exactly* the canonical
    reconstruction of its key (atom order and variable names included),
    default stored columns, and at most 32 variables for the masks.
    """
    canon = _canonical_pattern_of(key)
    if tuple(
        (e.src, e.dst, e.label) for e in relation.pattern.edges
    ) != tuple((e.src, e.dst, e.label) for e in canon.edges):
        return False
    if relation._columns != relation.pattern.variables:
        return False
    return len(relation.pattern.variables) <= 32


def degrees_to_flat(degrees) -> tuple[dict, dict[str, np.ndarray]]:
    """``(meta, arrays)`` snapshot of a (materialised) degree catalog."""
    degrees.materialize()
    entries = sorted(degrees._cache.items())
    vocab = _key_vocab(key for key, _ in entries)
    label_ids = {label: i for i, label in enumerate(vocab)}
    encoded: list[bytes] = []
    regular: list = []
    irregular: list[dict] = []
    for key, relation in entries:
        raw = encode_canonical_key(key, label_ids)
        if raw is None or not _encodable_relation(relation, key):
            irregular.append(
                {
                    "key": [list(atom) for atom in key],
                    "relation": relation.to_artifact(),
                }
            )
        else:
            encoded.append(raw)
            regular.append(relation)
    keys, order = _pack_sorted(encoded)
    regular = [regular[i] for i in order]
    cardinality = np.asarray(
        [relation.cardinality for relation in regular], dtype=np.float64
    )
    offsets = np.zeros(len(regular) + 1, dtype=np.int64)
    x_masks: list[int] = []
    y_masks: list[int] = []
    values: list[float] = []
    for position, relation in enumerate(regular):
        names = sorted(relation.pattern.variables)
        bit_of = {name: 1 << i for i, name in enumerate(names)}
        for x, y, value in _degree_entries(relation):
            x_masks.append(sum(bit_of[name] for name in x))
            y_masks.append(sum(bit_of[name] for name in y))
            values.append(value)
        offsets[position + 1] = len(values)
    meta = {
        "h": degrees.h,
        "complete": degrees.complete,
        "vocab": vocab,
        "entries": int(keys.shape[0]),
        "irregular": irregular,
    }
    arrays = {
        "degrees::keys": keys,
        "degrees::cardinality": cardinality,
        "degrees::offsets": offsets,
        "degrees::deg_x": np.asarray(x_masks, dtype=np.uint32),
        "degrees::deg_y": np.asarray(y_masks, dtype=np.uint32),
        "degrees::deg_value": np.asarray(values, dtype=np.float64),
    }
    return meta, arrays


class FlatDegrees:
    """Lazy array backing for a :class:`~repro.catalog.degrees.DegreeCatalog`."""

    def __init__(self, arrays: dict, vocab: list[str]):
        self.index = _KeyIndex(arrays["degrees::keys"], vocab)
        self.cardinality = arrays["degrees::cardinality"]
        self.offsets = arrays["degrees::offsets"]
        self.deg_x = arrays["degrees::deg_x"]
        self.deg_y = arrays["degrees::deg_y"]
        self.deg_value = arrays["degrees::deg_value"]

    @property
    def count(self) -> int:
        return len(self.index)

    def _decode(self, position: int):
        from repro.catalog.degrees import StatRelation

        key = self.index.key_at(position)
        pattern = _canonical_pattern_of(key)
        names = sorted(pattern.variables)
        start = int(self.offsets[position])
        stop = int(self.offsets[position + 1])
        degrees = {}
        for row in range(start, stop):
            x_mask = int(self.deg_x[row])
            y_mask = int(self.deg_y[row])
            x = frozenset(
                name for i, name in enumerate(names) if x_mask >> i & 1
            )
            y = frozenset(
                name for i, name in enumerate(names) if y_mask >> i & 1
            )
            degrees[(x, y)] = float(self.deg_value[row])
        return StatRelation._stored(
            pattern,
            cardinality=float(self.cardinality[position]),
            degrees=degrees,
        )

    def lookup(self, key: tuple):
        position = self.index.find(key)
        if position is None:
            return None
        return self._decode(position)

    def items(self):
        for position in range(len(self.index)):
            yield self.index.key_at(position), self._decode(position)


def degrees_from_flat(meta: dict, arrays: dict, graph=None, max_rows=5_000_000):
    """A flat-backed degree catalog over ``degrees::*`` arrays."""
    from repro.catalog.degrees import DegreeCatalog, StatRelation
    from repro.query.canonical import canonical_key

    catalog = DegreeCatalog(
        graph,
        h=int(meta["h"]),
        max_rows=max_rows,
        complete=bool(meta.get("complete", False)),
    )
    catalog._flat = FlatDegrees(arrays, list(meta.get("vocab", [])))
    for entry in meta.get("irregular", []):
        relation = StatRelation.from_artifact(entry["relation"])
        catalog._cache[canonical_key(relation.pattern)] = relation
    return catalog


# ----------------------------------------------------------------------
# SumRDF <-> flat arrays
# ----------------------------------------------------------------------
def sumrdf_to_flat(sumrdf) -> tuple[dict, dict[str, np.ndarray]]:
    """``(meta, arrays)`` split of the SumRDF artifact payload."""
    payload = sumrdf.to_artifact()
    meta = {
        "format_version": int(payload["format_version"]),
        "kind": str(payload["kind"]),
        "num_buckets": int(payload["num_buckets"]),
        "labels": [str(label) for label in payload["labels"]],
    }
    arrays = {
        "sumrdf::sizes": np.asarray(payload["sizes"], dtype=np.float64),
        "sumrdf::matrices": np.asarray(payload["matrices"], dtype=np.float64),
    }
    return meta, arrays


def sumrdf_from_flat(meta: dict, arrays: dict):
    """Rebuild the estimator; stored arrays are served as-is (zero-copy)."""
    from repro.baselines.sumrdf import SumRdfEstimator

    return SumRdfEstimator.from_artifact(
        {
            **meta,
            "sizes": arrays["sumrdf::sizes"],
            "matrices": arrays["sumrdf::matrices"],
        }
    )


# ----------------------------------------------------------------------
# Whole-store images
# ----------------------------------------------------------------------
def catalogs_to_flat(store) -> tuple[dict, dict[str, np.ndarray]]:
    """The array-backed catalogs (markov/degrees/sumrdf) of a store.

    This is the ``catalogs.meta.json`` / ``catalogs.npz`` content of the
    flat disk layout; the small dict-shaped catalogs stay JSON sidecars.
    """
    markov_meta, arrays = markov_to_flat(store.markov)
    degrees_meta, degree_arrays = degrees_to_flat(store.degrees)
    arrays.update(degree_arrays)
    meta = {
        "format_version": IMAGE_FORMAT_VERSION,
        "kind": "flat_catalogs",
        "markov": markov_meta,
        "degrees": degrees_meta,
        "sumrdf": None,
    }
    if store.sumrdf is not None:
        sumrdf_meta, sumrdf_arrays = sumrdf_to_flat(store.sumrdf)
        meta["sumrdf"] = sumrdf_meta
        arrays.update(sumrdf_arrays)
    return meta, arrays


def store_to_image(store) -> tuple[dict, dict[str, np.ndarray]]:
    """One ``(meta, arrays)`` image of a whole store, shm-publishable.

    Unlike the disk layout, the image carries *everything* — manifest and
    small catalogs included — so an attaching worker reconstructs the
    store without touching the artifact directory at all.
    """
    meta, arrays = catalogs_to_flat(store)
    meta["kind"] = "statistics_image"
    meta["manifest"] = store.manifest.to_payload()
    meta["characteristic_sets"] = (
        store.characteristic_sets.to_artifact()
        if store.characteristic_sets is not None
        else None
    )
    meta["cycle_rates"] = (
        store.cycle_rates.to_artifact()
        if store.cycle_rates is not None
        else None
    )
    meta["entropy"] = (
        store.entropy.to_artifact() if store.entropy is not None else None
    )
    return meta, arrays


def store_from_image(meta: dict, arrays: dict, max_rows=5_000_000):
    """Rebuild a graph-free store from :func:`store_to_image` output."""
    from repro.baselines.characteristic_sets import CharacteristicSetsEstimator
    from repro.catalog.cycle_rates import CycleClosingRates
    from repro.catalog.entropy import EntropyCatalog
    from repro.stats.artifact import StoreManifest
    from repro.stats.store import StatisticsStore

    if meta.get("kind") != "statistics_image":
        raise DatasetError(
            f"not a statistics image (kind={meta.get('kind')!r})"
        )
    manifest = StoreManifest.from_payload(meta["manifest"])
    store = StatisticsStore(
        manifest=manifest,
        markov=markov_from_flat(meta["markov"], arrays),
        degrees=degrees_from_flat(meta["degrees"], arrays, max_rows=max_rows),
    )
    if meta.get("sumrdf") is not None:
        store.sumrdf = sumrdf_from_flat(meta["sumrdf"], arrays)
    if meta.get("characteristic_sets") is not None:
        store.characteristic_sets = CharacteristicSetsEstimator.from_artifact(
            meta["characteristic_sets"]
        )
    if meta.get("cycle_rates") is not None:
        store.cycle_rates = CycleClosingRates.from_artifact(
            meta["cycle_rates"], None
        )
    if meta.get("entropy") is not None:
        store.entropy = EntropyCatalog.from_artifact(
            meta["entropy"], None, max_rows=max_rows
        )
    return store


# ----------------------------------------------------------------------
# Deterministic uncompressed NPZ
# ----------------------------------------------------------------------
_FIXED_DATE = (1980, 1, 1, 0, 0, 0)
_ALIGN = 64
_LOCAL_HEADER_BYTES = 30
#: Private extra-field id carrying alignment padding (any id works; zip
#: readers skip records they don't know).
_PAD_EXTRA_ID = 0x5250  # "RP"


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.lib.format.write_array(
        buffer, np.ascontiguousarray(array), version=(1, 0), allow_pickle=False
    )
    return buffer.getvalue()


def _alignment_extra(offset: int, name_length: int) -> bytes:
    """A zip extra field padding the member's data to a 64-byte boundary.

    numpy's own ``.npy`` header pads array data to a 64-byte boundary
    *within* the member, so aligning the member start aligns the data.
    """
    data_start = offset + _LOCAL_HEADER_BYTES + name_length
    pad = -data_start % _ALIGN
    if pad == 0:
        return b""
    if pad < 4:
        pad += _ALIGN
    return struct.pack("<HH", _PAD_EXTRA_ID, pad - 4) + b"\x00" * (pad - 4)


def write_stored_npz(path: str | Path, arrays: dict[str, np.ndarray]) -> Path:
    """Write a byte-deterministic uncompressed NPZ, members 64B-aligned.

    ``np.savez`` stamps the current time into every member header, which
    would break the repo's byte-identity gates (serial vs parallel vs
    resumed builds are ``cmp``-ed in CI); this writer fixes the
    timestamps, stores members in sorted name order, and pads each local
    header so the array data — hence every mmap — is 64-byte aligned.
    """
    path = Path(path)
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        offset = 0
        for name in sorted(arrays):
            member = name + ".npy"
            payload = _npy_bytes(arrays[name])
            encoded_name = member.encode("utf-8")
            extra = _alignment_extra(offset, len(encoded_name))
            info = zipfile.ZipInfo(member, date_time=_FIXED_DATE)
            info.compress_type = zipfile.ZIP_STORED
            info.create_system = 3  # byte-stable across host platforms
            info.external_attr = 0o600 << 16
            info.extra = extra
            archive.writestr(info, payload)
            offset += (
                _LOCAL_HEADER_BYTES
                + len(encoded_name)
                + len(extra)
                + len(payload)
            )
    return path


def read_npz_arrays(path: str | Path, mmap: bool = False) -> dict:
    """Every array of an NPZ, optionally memory-mapped zero-copy."""
    from repro.graph.io import _mmap_npz_arrays

    path = Path(path)
    if mmap:
        return _mmap_npz_arrays(path)
    try:
        with np.load(path) as data:
            return {name: data[name] for name in data.files}
    except (OSError, ValueError, zipfile.BadZipFile) as error:
        raise DatasetError(f"corrupt statistics arrays {path}: {error}")
