"""The :class:`StatisticsStore` facade: one object, every summary.

A store bundles everything the estimation plane reads — Markov table,
MOLP degree catalog, optional cycle-closing rates and entropy weights,
plus the Characteristic Sets and SumRDF baseline summaries — behind a
single save/load surface.  The build plane produces it
(:func:`repro.stats.build.build_statistics`), :meth:`StatisticsStore.save`
writes one versioned artifact directory, and
:meth:`StatisticsStore.load` rebuilds it at service startup — with or
without the base graph.  A store loaded without a graph serves
estimates from its artifacts alone: no ``count_pattern`` call, no match
-table materialisation, no base-graph scan can happen after startup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.baselines.characteristic_sets import CharacteristicSetsEstimator
from repro.baselines.sumrdf import SumRdfEstimator
from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.degrees import DegreeCatalog
from repro.catalog.entropy import EntropyCatalog
from repro.catalog.markov import MarkovTable
from repro.errors import DatasetError
from repro.graph.digraph import LabeledDiGraph
from repro.stats.artifact import (
    CATALOG_ARRAYS_FILE,
    CATALOG_FILES,
    CATALOG_META_FILE,
    MANIFEST_FILE,
    SIDECAR_CATALOGS,
    StoreManifest,
    dataset_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.session import EstimationSession

__all__ = [
    "StatisticsStore",
    "inspect_artifact",
    "human_bytes",
    "parse_count",
]

#: How many full artifact parses this process has paid (every
#: StatisticsStore.load from disk).  Shared-plane attaches don't count —
#: which is exactly what the fleet benchmarks assert: one parse per host
#: per reload, not one per worker.
_PARSE_COUNT = 0


def parse_count() -> int:
    """This process's cumulative disk-parse counter (see above)."""
    return _PARSE_COUNT


@dataclass
class StatisticsStore:
    """Every summary one dataset's estimator suite serves from."""

    manifest: StoreManifest
    markov: MarkovTable
    degrees: DegreeCatalog
    characteristic_sets: CharacteristicSetsEstimator | None = None
    sumrdf: SumRdfEstimator | None = None
    cycle_rates: CycleClosingRates | None = None
    entropy: EntropyCatalog | None = None
    graph: LabeledDiGraph | None = None

    @property
    def graph_free(self) -> bool:
        """Whether serving can touch a base graph at all."""
        return self.graph is None

    @property
    def h(self) -> int:
        """Markov-table size the optimistic estimators use."""
        return self.markov.h

    @property
    def molp_h(self) -> int:
        """Join-statistics size of the MOLP degree catalog."""
        return self.degrees.h

    def session(self, **kwargs) -> "EstimationSession":
        """An :class:`EstimationSession` serving from this store."""
        from repro.service.session import EstimationSession

        return EstimationSession(self.graph, store=self, **kwargs)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path, layout: str = "flat") -> Path:
        """Write the versioned artifact directory; returns its path.

        ``layout="flat"`` (the default) writes the array-backed catalogs
        as one deterministic, uncompressed, mmap-able ``catalogs.npz``
        plus ``catalogs.meta.json``; ``layout="json"`` writes the legacy
        one-file-per-catalog form.  Both layouts keep the small
        dict-shaped catalogs as JSON sidecars and byte-stable output
        (CI byte-compares serial/parallel/resumed builds).
        """
        if layout not in ("flat", "json"):
            raise ValueError(f"unknown artifact layout {layout!r}")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        catalogs = ["markov", "degrees"]
        if layout == "flat":
            from repro.stats.flatpack import catalogs_to_flat, write_stored_npz

            if self.sumrdf is not None:
                catalogs.append("sumrdf")
            meta, arrays = catalogs_to_flat(self)
            write_stored_npz(directory / CATALOG_ARRAYS_FILE, arrays)
            (directory / CATALOG_META_FILE).write_text(
                json.dumps(meta, sort_keys=True), encoding="utf-8"
            )
        else:
            _write_json(
                directory / CATALOG_FILES["markov"], self.markov.to_artifact()
            )
            _write_json(
                directory / CATALOG_FILES["degrees"],
                self.degrees.to_artifact(),
            )
            if self.sumrdf is not None:
                catalogs.append("sumrdf")
                np.savez_compressed(
                    directory / CATALOG_FILES["sumrdf"],
                    **self.sumrdf.to_artifact(),
                )
        if self.characteristic_sets is not None:
            catalogs.append("characteristic_sets")
            _write_json(
                directory / CATALOG_FILES["characteristic_sets"],
                self.characteristic_sets.to_artifact(),
            )
        if self.cycle_rates is not None:
            catalogs.append("cycle_rates")
            _write_json(
                directory / CATALOG_FILES["cycle_rates"],
                self.cycle_rates.to_artifact(),
            )
        if self.entropy is not None:
            catalogs.append("entropy")
            _write_json(
                directory / CATALOG_FILES["entropy"], self.entropy.to_artifact()
            )
        self.manifest.catalogs = sorted(catalogs)
        self.manifest.layout = layout
        self.manifest.save(directory)
        return directory

    @classmethod
    def load(
        cls,
        directory: str | Path,
        graph: LabeledDiGraph | None = None,
        max_rows: int | None = 5_000_000,
        mmap: bool = False,
    ) -> "StatisticsStore":
        """Rebuild a store from :meth:`save` output.

        Passing the graph re-attaches the lazy fallback paths *and*
        verifies the artifact was built from that exact dataset (its
        fingerprint must match); without one the store is strictly
        graph-free.  ``mmap=True`` memory-maps a flat-layout artifact's
        catalog arrays zero-copy (and refuses the legacy JSON layout
        with a pointer at ``repro stats repack``).
        """
        global _PARSE_COUNT
        directory = Path(directory)
        if not directory.is_dir():
            raise DatasetError(
                f"statistics artifact directory {directory} does not exist "
                "(build one with 'repro stats build --out DIR')"
            )
        if not (directory / MANIFEST_FILE).is_file():
            raise DatasetError(
                f"{directory} is not a statistics artifact directory: it has "
                f"no {MANIFEST_FILE} (build one with 'repro stats build')"
            )
        manifest = StoreManifest.load(directory)
        if graph is not None:
            fingerprint = dataset_fingerprint(graph)
            if fingerprint != manifest.dataset_fingerprint:
                raise DatasetError(
                    f"statistics artifact {directory} was built from a "
                    f"different dataset (fingerprint "
                    f"{manifest.dataset_fingerprint}, graph {fingerprint})"
                )
        if mmap and manifest.layout != "flat":
            raise DatasetError(
                f"statistics artifact {directory} uses the legacy "
                f"'{manifest.layout}' layout, which cannot be memory-"
                "mapped; convert it once with 'repro stats repack DIR' "
                "(new builds write the mmap-able flat layout by default)"
            )
        _PARSE_COUNT += 1
        if manifest.layout == "flat":
            markov, degrees, sumrdf = cls._load_flat_catalogs(
                directory, manifest, graph, max_rows, mmap
            )
        else:
            markov = MarkovTable.from_artifact(
                _read_json(directory / CATALOG_FILES["markov"]), graph
            )
            degrees = DegreeCatalog.from_artifact(
                _read_json(directory / CATALOG_FILES["degrees"]),
                graph,
                max_rows=max_rows,
            )
            sumrdf = None
            if "sumrdf" in manifest.catalogs:
                try:
                    with np.load(directory / CATALOG_FILES["sumrdf"]) as data:
                        sumrdf = SumRdfEstimator.from_artifact(
                            dict(data.items())
                        )
                except OSError as error:
                    raise DatasetError(
                        f"statistics artifact is missing or has a corrupt "
                        f"{CATALOG_FILES['sumrdf']}: {error}"
                    )
        characteristic_sets = None
        if "characteristic_sets" in manifest.catalogs:
            characteristic_sets = CharacteristicSetsEstimator.from_artifact(
                _read_json(directory / CATALOG_FILES["characteristic_sets"])
            )
        cycle_rates = None
        if "cycle_rates" in manifest.catalogs:
            cycle_rates = CycleClosingRates.from_artifact(
                _read_json(directory / CATALOG_FILES["cycle_rates"]), graph
            )
        entropy = None
        if "entropy" in manifest.catalogs:
            entropy = EntropyCatalog.from_artifact(
                _read_json(directory / CATALOG_FILES["entropy"]),
                graph,
                max_rows=max_rows,
            )
        store = cls(
            manifest=manifest,
            markov=markov,
            degrees=degrees,
            characteristic_sets=characteristic_sets,
            sumrdf=sumrdf,
            cycle_rates=cycle_rates,
            entropy=entropy,
            graph=graph,
        )
        _replay_deltas(store, directory)
        return store

    @classmethod
    def _load_flat_catalogs(cls, directory, manifest, graph, max_rows, mmap):
        """The array-backed catalogs of a ``layout: "flat"`` artifact."""
        from repro.stats.flatpack import (
            IMAGE_FORMAT_VERSION,
            degrees_from_flat,
            markov_from_flat,
            read_npz_arrays,
            sumrdf_from_flat,
        )

        meta_path = directory / CATALOG_META_FILE
        arrays_path = directory / CATALOG_ARRAYS_FILE
        if not meta_path.is_file() or not arrays_path.is_file():
            raise DatasetError(
                f"statistics artifact {directory} declares layout 'flat' "
                f"but is missing {CATALOG_ARRAYS_FILE} or {CATALOG_META_FILE}"
            )
        meta = _read_json(meta_path)
        if meta.get("kind") != "flat_catalogs" or (
            int(meta.get("format_version", 0)) != IMAGE_FORMAT_VERSION
        ):
            raise DatasetError(
                f"corrupt statistics artifact {meta_path}: unexpected "
                f"kind/format_version"
            )
        try:
            arrays = read_npz_arrays(arrays_path, mmap=mmap)
            markov = markov_from_flat(meta["markov"], arrays, graph)
            degrees = degrees_from_flat(
                meta["degrees"], arrays, graph, max_rows=max_rows
            )
            sumrdf = None
            if "sumrdf" in manifest.catalogs:
                if meta.get("sumrdf") is None:
                    raise DatasetError(
                        f"statistics artifact {directory} lists the sumrdf "
                        f"catalog but {CATALOG_META_FILE} has no sumrdf entry"
                    )
                sumrdf = sumrdf_from_flat(meta["sumrdf"], arrays)
        except KeyError as error:
            raise DatasetError(
                f"corrupt statistics artifact {arrays_path}: missing "
                f"member/field {error}"
            )
        return markov, degrees, sumrdf


def _replay_deltas(store: "StatisticsStore", directory: Path) -> None:
    """Replay a dynamic artifact's delta chain onto a just-loaded store.

    Generations already folded into the base files (``≤
    compacted_generation``) are skipped; the rest are fingerprint-chain
    checked and applied in order, so the returned store always reflects
    the manifest's current ``dataset_fingerprint`` — graph-free.
    """
    manifest = store.manifest
    if not manifest.deltas:
        return
    # Lazy import: repro.delta builds on this module.
    from repro.delta.deltafile import replay_delta_chain

    try:
        replay_delta_chain(
            store,
            manifest,
            directory,
            from_generation=manifest.compacted_generation,
        )
    except DatasetError as error:
        raise DatasetError(f"statistics artifact {directory}: {error}")


def _write_json(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload), encoding="utf-8")


def _read_json(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise DatasetError(f"statistics artifact is missing {path.name}: {error}")
    except ValueError as error:
        raise DatasetError(f"corrupt statistics artifact {path}: {error}")
    if not isinstance(payload, dict):
        raise DatasetError(f"corrupt statistics artifact {path}")
    return payload


def human_bytes(size: int) -> str:
    """``1234567`` → ``"1.2 MB"`` (decimal units, one decimal place)."""
    value = float(size)
    for unit in ("B", "kB", "MB", "GB"):
        # Threshold on the *rendered* value so 999_999 B is "1.0 MB",
        # never the nonsensical "1000.0 kB".
        if round(value, 1) < 1000 or unit == "GB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def inspect_artifact(directory: str | Path) -> dict:
    """Manifest plus per-catalog entry counts and on-disk sizes.

    The size report is the operator's check of the paper's "sub-MB
    summaries" claim: ``files`` maps each artifact file to its byte
    count (plus entry counts for JSON catalogs), ``catalogs`` keys the
    same sizes by catalog name with human-readable values, and
    ``total_bytes``/``total_human`` aggregate the whole directory.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise DatasetError(
            f"statistics artifact directory {directory} does not exist"
        )
    manifest = StoreManifest.load(directory)
    report: dict = {"directory": str(directory), **manifest.to_payload()}
    report["mmap_capable"] = manifest.layout == "flat"
    files: dict[str, dict] = {}
    catalogs: dict[str, dict] = {}
    total = 0
    pairs = [("manifest", MANIFEST_FILE)]
    if manifest.layout == "flat":
        pairs += [
            ("catalogs", CATALOG_ARRAYS_FILE),
            ("catalogs_meta", CATALOG_META_FILE),
        ]
        pairs += [
            (catalog, CATALOG_FILES[catalog])
            for catalog in manifest.catalogs
            if catalog in SIDECAR_CATALOGS
        ]
    else:
        pairs += [
            (catalog, CATALOG_FILES[catalog]) for catalog in manifest.catalogs
        ]
    for catalog, name in pairs:
        path = directory / name
        if not path.exists():
            files[name] = {"missing": True}
            catalogs[catalog] = {"file": name, "missing": True}
            continue
        size = path.stat().st_size
        total += size
        entry: dict = {"bytes": size}
        if name.endswith(".json") and name != MANIFEST_FILE:
            payload = _read_json(path)
            for field in ("entries", "relations", "sets"):
                if field in payload:
                    entry["entries"] = len(payload[field])
        files[name] = entry
        catalogs[catalog] = {
            "file": name,
            "bytes": size,
            "human": human_bytes(size),
            **(
                {"entries": entry["entries"]} if "entries" in entry else {}
            ),
        }
    if manifest.layout == "flat" and (directory / CATALOG_META_FILE).exists():
        report["flat"] = _inspect_flat(directory, catalogs)
    for entry in manifest.deltas:
        for name in (entry.get("file"), _delta_sibling(directory, entry)):
            if not name:
                continue
            path = directory / name
            if not path.exists():
                files[name] = {"missing": True}
                continue
            size = path.stat().st_size
            total += size
            files[name] = {
                "bytes": size,
                "generation": entry.get("generation"),
                "folded": int(entry.get("generation", 0))
                <= manifest.compacted_generation,
            }
    report["files"] = files
    report["catalogs_sizes"] = catalogs
    report["total_bytes"] = total
    report["total_human"] = human_bytes(total)
    report["sub_mb"] = total < 1_000_000
    build_config = manifest.build_config
    if "levels" in build_config:
        # Per-level timings the bulk builder recorded (jobs, examined /
        # stored pattern counts, resume provenance) — the operator's
        # view of how the offline build spent its time.
        report["build"] = {
            "jobs": build_config.get("jobs"),
            "build_seconds": build_config.get("build_seconds"),
            "peak_level_width": build_config.get("peak_level_width"),
            "levels": build_config.get("levels"),
            "resumed_levels": sum(
                1
                for level in build_config.get("levels", [])
                if level.get("resumed")
            ),
        }
    return report


def _inspect_flat(directory: Path, catalogs: dict) -> dict:
    """Per-catalog array breakdown of a ``layout: "flat"`` artifact.

    Sums the uncompressed NPZ member sizes by catalog prefix — exactly
    the bytes ``mmap=True`` maps for each catalog — and surfaces the
    entry/irregular counts recorded in ``catalogs.meta.json``.  Also
    back-fills per-catalog rows into ``catalogs`` so the flat layout
    reports the same markov/degrees breakdown the legacy one did (with
    mapped bytes standing in for file bytes).
    """
    import zipfile

    meta = _read_json(directory / CATALOG_META_FILE)
    mapped: dict[str, int] = {}
    try:
        with zipfile.ZipFile(directory / CATALOG_ARRAYS_FILE) as archive:
            for info in archive.infolist():
                prefix = info.filename.split("::", 1)[0]
                mapped[prefix] = mapped.get(prefix, 0) + info.file_size
    except (OSError, zipfile.BadZipFile):
        mapped = {}
    report: dict[str, dict] = {}
    for name in ("markov", "degrees", "sumrdf"):
        catalog_meta = meta.get(name)
        if catalog_meta is None:
            continue
        entry: dict = {
            "mapped_bytes": mapped.get(name, 0),
            "mapped_human": human_bytes(mapped.get(name, 0)),
        }
        if "entries" in catalog_meta:
            entry["entries"] = int(catalog_meta["entries"]) + len(
                catalog_meta.get("irregular", [])
            )
        irregular = catalog_meta.get("irregular")
        if irregular is not None:
            entry["irregular"] = len(irregular)
        report[name] = entry
        catalogs.setdefault(
            name,
            {
                "file": CATALOG_ARRAYS_FILE,
                "bytes": 0,  # counted once under "catalogs"
                **{
                    k: entry[k]
                    for k in ("mapped_bytes", "mapped_human", "entries")
                    if k in entry
                },
            },
        )
    return report


def _delta_sibling(directory: Path, entry: dict) -> str | None:
    """The rebuilt-SumRDF sibling of a delta file, if it exists."""
    file = entry.get("file")
    if not file or not str(file).endswith(".json"):
        return None
    sibling = str(file)[: -len(".json")] + ".sumrdf.npz"
    return sibling if (directory / sibling).exists() else None
