"""The :class:`StatisticsStore` facade: one object, every summary.

A store bundles everything the estimation plane reads — Markov table,
MOLP degree catalog, optional cycle-closing rates and entropy weights,
plus the Characteristic Sets and SumRDF baseline summaries — behind a
single save/load surface.  The build plane produces it
(:func:`repro.stats.build.build_statistics`), :meth:`StatisticsStore.save`
writes one versioned artifact directory, and
:meth:`StatisticsStore.load` rebuilds it at service startup — with or
without the base graph.  A store loaded without a graph serves
estimates from its artifacts alone: no ``count_pattern`` call, no match
-table materialisation, no base-graph scan can happen after startup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.baselines.characteristic_sets import CharacteristicSetsEstimator
from repro.baselines.sumrdf import SumRdfEstimator
from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.degrees import DegreeCatalog
from repro.catalog.entropy import EntropyCatalog
from repro.catalog.markov import MarkovTable
from repro.errors import DatasetError
from repro.graph.digraph import LabeledDiGraph
from repro.stats.artifact import (
    CATALOG_FILES,
    MANIFEST_FILE,
    StoreManifest,
    dataset_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.session import EstimationSession

__all__ = ["StatisticsStore", "inspect_artifact", "human_bytes"]


@dataclass
class StatisticsStore:
    """Every summary one dataset's estimator suite serves from."""

    manifest: StoreManifest
    markov: MarkovTable
    degrees: DegreeCatalog
    characteristic_sets: CharacteristicSetsEstimator | None = None
    sumrdf: SumRdfEstimator | None = None
    cycle_rates: CycleClosingRates | None = None
    entropy: EntropyCatalog | None = None
    graph: LabeledDiGraph | None = None

    @property
    def graph_free(self) -> bool:
        """Whether serving can touch a base graph at all."""
        return self.graph is None

    @property
    def h(self) -> int:
        """Markov-table size the optimistic estimators use."""
        return self.markov.h

    @property
    def molp_h(self) -> int:
        """Join-statistics size of the MOLP degree catalog."""
        return self.degrees.h

    def session(self, **kwargs) -> "EstimationSession":
        """An :class:`EstimationSession` serving from this store."""
        from repro.service.session import EstimationSession

        return EstimationSession(self.graph, store=self, **kwargs)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Write the versioned artifact directory; returns its path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        catalogs = ["markov", "degrees"]
        _write_json(directory / CATALOG_FILES["markov"], self.markov.to_artifact())
        _write_json(
            directory / CATALOG_FILES["degrees"], self.degrees.to_artifact()
        )
        if self.characteristic_sets is not None:
            catalogs.append("characteristic_sets")
            _write_json(
                directory / CATALOG_FILES["characteristic_sets"],
                self.characteristic_sets.to_artifact(),
            )
        if self.sumrdf is not None:
            catalogs.append("sumrdf")
            np.savez_compressed(
                directory / CATALOG_FILES["sumrdf"], **self.sumrdf.to_artifact()
            )
        if self.cycle_rates is not None:
            catalogs.append("cycle_rates")
            _write_json(
                directory / CATALOG_FILES["cycle_rates"],
                self.cycle_rates.to_artifact(),
            )
        if self.entropy is not None:
            catalogs.append("entropy")
            _write_json(
                directory / CATALOG_FILES["entropy"], self.entropy.to_artifact()
            )
        self.manifest.catalogs = sorted(catalogs)
        self.manifest.save(directory)
        return directory

    @classmethod
    def load(
        cls,
        directory: str | Path,
        graph: LabeledDiGraph | None = None,
        max_rows: int | None = 5_000_000,
    ) -> "StatisticsStore":
        """Rebuild a store from :meth:`save` output.

        Passing the graph re-attaches the lazy fallback paths *and*
        verifies the artifact was built from that exact dataset (its
        fingerprint must match); without one the store is strictly
        graph-free.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise DatasetError(
                f"statistics artifact directory {directory} does not exist "
                "(build one with 'repro stats build --out DIR')"
            )
        if not (directory / MANIFEST_FILE).is_file():
            raise DatasetError(
                f"{directory} is not a statistics artifact directory: it has "
                f"no {MANIFEST_FILE} (build one with 'repro stats build')"
            )
        manifest = StoreManifest.load(directory)
        if graph is not None:
            fingerprint = dataset_fingerprint(graph)
            if fingerprint != manifest.dataset_fingerprint:
                raise DatasetError(
                    f"statistics artifact {directory} was built from a "
                    f"different dataset (fingerprint "
                    f"{manifest.dataset_fingerprint}, graph {fingerprint})"
                )
        markov = MarkovTable.from_artifact(
            _read_json(directory / CATALOG_FILES["markov"]), graph
        )
        degrees = DegreeCatalog.from_artifact(
            _read_json(directory / CATALOG_FILES["degrees"]),
            graph,
            max_rows=max_rows,
        )
        characteristic_sets = None
        if "characteristic_sets" in manifest.catalogs:
            characteristic_sets = CharacteristicSetsEstimator.from_artifact(
                _read_json(directory / CATALOG_FILES["characteristic_sets"])
            )
        sumrdf = None
        if "sumrdf" in manifest.catalogs:
            try:
                with np.load(directory / CATALOG_FILES["sumrdf"]) as data:
                    sumrdf = SumRdfEstimator.from_artifact(dict(data.items()))
            except OSError as error:
                raise DatasetError(
                    f"statistics artifact is missing or has a corrupt "
                    f"{CATALOG_FILES['sumrdf']}: {error}"
                )
        cycle_rates = None
        if "cycle_rates" in manifest.catalogs:
            cycle_rates = CycleClosingRates.from_artifact(
                _read_json(directory / CATALOG_FILES["cycle_rates"]), graph
            )
        entropy = None
        if "entropy" in manifest.catalogs:
            entropy = EntropyCatalog.from_artifact(
                _read_json(directory / CATALOG_FILES["entropy"]),
                graph,
                max_rows=max_rows,
            )
        store = cls(
            manifest=manifest,
            markov=markov,
            degrees=degrees,
            characteristic_sets=characteristic_sets,
            sumrdf=sumrdf,
            cycle_rates=cycle_rates,
            entropy=entropy,
            graph=graph,
        )
        _replay_deltas(store, directory)
        return store


def _replay_deltas(store: "StatisticsStore", directory: Path) -> None:
    """Replay a dynamic artifact's delta chain onto a just-loaded store.

    Generations already folded into the base files (``≤
    compacted_generation``) are skipped; the rest are fingerprint-chain
    checked and applied in order, so the returned store always reflects
    the manifest's current ``dataset_fingerprint`` — graph-free.
    """
    manifest = store.manifest
    if not manifest.deltas:
        return
    # Lazy import: repro.delta builds on this module.
    from repro.delta.deltafile import replay_delta_chain

    try:
        replay_delta_chain(
            store,
            manifest,
            directory,
            from_generation=manifest.compacted_generation,
        )
    except DatasetError as error:
        raise DatasetError(f"statistics artifact {directory}: {error}")


def _write_json(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload), encoding="utf-8")


def _read_json(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise DatasetError(f"statistics artifact is missing {path.name}: {error}")
    except ValueError as error:
        raise DatasetError(f"corrupt statistics artifact {path}: {error}")
    if not isinstance(payload, dict):
        raise DatasetError(f"corrupt statistics artifact {path}")
    return payload


def human_bytes(size: int) -> str:
    """``1234567`` → ``"1.2 MB"`` (decimal units, one decimal place)."""
    value = float(size)
    for unit in ("B", "kB", "MB", "GB"):
        # Threshold on the *rendered* value so 999_999 B is "1.0 MB",
        # never the nonsensical "1000.0 kB".
        if round(value, 1) < 1000 or unit == "GB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def inspect_artifact(directory: str | Path) -> dict:
    """Manifest plus per-catalog entry counts and on-disk sizes.

    The size report is the operator's check of the paper's "sub-MB
    summaries" claim: ``files`` maps each artifact file to its byte
    count (plus entry counts for JSON catalogs), ``catalogs`` keys the
    same sizes by catalog name with human-readable values, and
    ``total_bytes``/``total_human`` aggregate the whole directory.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise DatasetError(
            f"statistics artifact directory {directory} does not exist"
        )
    manifest = StoreManifest.load(directory)
    report: dict = {"directory": str(directory), **manifest.to_payload()}
    files: dict[str, dict] = {}
    catalogs: dict[str, dict] = {}
    total = 0
    for catalog, name in [("manifest", MANIFEST_FILE)] + [
        (catalog, CATALOG_FILES[catalog]) for catalog in manifest.catalogs
    ]:
        path = directory / name
        if not path.exists():
            files[name] = {"missing": True}
            catalogs[catalog] = {"file": name, "missing": True}
            continue
        size = path.stat().st_size
        total += size
        entry: dict = {"bytes": size}
        if name.endswith(".json") and name != MANIFEST_FILE:
            payload = _read_json(path)
            for field in ("entries", "relations", "sets"):
                if field in payload:
                    entry["entries"] = len(payload[field])
        files[name] = entry
        catalogs[catalog] = {
            "file": name,
            "bytes": size,
            "human": human_bytes(size),
            **(
                {"entries": entry["entries"]} if "entries" in entry else {}
            ),
        }
    for entry in manifest.deltas:
        for name in (entry.get("file"), _delta_sibling(directory, entry)):
            if not name:
                continue
            path = directory / name
            if not path.exists():
                files[name] = {"missing": True}
                continue
            size = path.stat().st_size
            total += size
            files[name] = {
                "bytes": size,
                "generation": entry.get("generation"),
                "folded": int(entry.get("generation", 0))
                <= manifest.compacted_generation,
            }
    report["files"] = files
    report["catalogs_sizes"] = catalogs
    report["total_bytes"] = total
    report["total_human"] = human_bytes(total)
    report["sub_mb"] = total < 1_000_000
    build_config = manifest.build_config
    if "levels" in build_config:
        # Per-level timings the bulk builder recorded (jobs, examined /
        # stored pattern counts, resume provenance) — the operator's
        # view of how the offline build spent its time.
        report["build"] = {
            "jobs": build_config.get("jobs"),
            "build_seconds": build_config.get("build_seconds"),
            "peak_level_width": build_config.get("peak_level_width"),
            "levels": build_config.get("levels"),
            "resumed_levels": sum(
                1
                for level in build_config.get("levels", [])
                if level.get("resumed")
            ),
        }
    return report


def _delta_sibling(directory: Path, entry: dict) -> str | None:
    """The rebuilt-SumRDF sibling of a delta file, if it exists."""
    file = entry.get("file")
    if not file or not str(file).endswith(".json"):
        return None
    sibling = str(file)[: -len(".json")] + ".sumrdf.npz"
    return sibling if (directory / sibling).exists() else None
