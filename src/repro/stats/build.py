"""Offline bulk construction of every summary the estimators serve.

The lazy catalogs compute one statistic per :func:`count_pattern` call,
on the request path.  The bulk builder inverts that (§6: statistics are
computed offline and shipped to the optimizer):

* **Full enumeration** (no workload): grow every connected pattern of up
  to ``h`` atoms over the dataset's label set, level by level.  Each
  level-``k`` pattern keeps its match table; level ``k+1`` is produced
  by extending those tables with one more atom (candidate labels pruned
  against the table's matched vertex sets), so a child's count is one
  vectorised join instead of a from-scratch engine run, and every
  canonical shape is counted exactly once.  Patterns with zero matches
  are never stored or extended — supersets of an empty join are empty —
  which is what lets a *complete* artifact answer misses with 0.
* **Workload-directed** (the paper's "we worked backwards from the
  queries"): enumerate the union of canonical connected subpatterns the
  estimator suite needs across all workload queries, and count each
  once.

Degree statistics for the MOLP catalog are extracted from the same
match tables in bulk (:func:`~repro.catalog.degrees.all_degree_pairs`
shares the distinct-``Y`` reduction across all ``X ⊆ Y``), cycle-closing
rates and entropy weights are primed by building each workload query's
CEG once, and the two baseline summaries (Characteristic Sets, SumRDF)
are single whole-graph passes.

Every stored number is produced by the same deterministic integer
arithmetic the lazy path uses, so estimates served from a built (or
saved-and-loaded) store are bit-identical to the never-persisted path —
the property suite enforces this.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.baselines.characteristic_sets import CharacteristicSetsEstimator
from repro.baselines.sumrdf import SumRdfEstimator
from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.degrees import (
    DegreeCatalog,
    StatRelation,
    materialise_table,
)
from repro.catalog.entropy import EntropyCatalog
from repro.catalog.markov import MarkovTable
from repro.core.ceg_entropy import lowest_entropy_estimate
from repro.core.ceg_o import build_ceg_o
from repro.engine.backtracking import two_core_edges
from repro.engine.counter import count_pattern
from repro.engine.frames import sorted_intersects
from repro.engine.join import BindingTable, extend_by_edge, start_table
from repro.errors import PlanningError, ReproError
from repro.graph.digraph import LabeledDiGraph
from repro.query.canonical import canonical_key, canonical_pattern
from repro.query.pattern import QueryEdge, QueryPattern
from repro.query.shape import largest_cycle_length
from repro.stats.artifact import StoreManifest, dataset_fingerprint
from repro.stats.store import StatisticsStore

__all__ = [
    "StatsBuildConfig",
    "build_statistics",
    "ensure_baselines",
    "extend_statistics",
]


@dataclass(frozen=True)
class StatsBuildConfig:
    """Knobs of one offline statistics build.

    ``h`` is the Markov-table size, ``molp_h`` the join-statistics size
    of the MOLP degree catalog; patterns are enumerated up to
    ``max(h, molp_h)`` atoms.  ``cycle_rates`` samples the §4.3
    closing-rate statistics (workload-directed; full enumeration of all
    label triples would leave the paper's ``O(L^3)`` budget).
    """

    h: int = 2
    molp_h: int = 2
    max_rows: int | None = 5_000_000
    count_budget: int | None = None
    cycle_rates: bool = False
    cycle_seed: int = 0
    cycle_samples: int = 1000
    baselines: bool = True
    sumrdf_buckets: int = 64
    sumrdf_seed: int = 0
    entropy: bool = False

    def as_dict(self) -> dict:
        """JSON-friendly form recorded in the artifact manifest."""
        return asdict(self)


# ----------------------------------------------------------------------
# Shared enumeration
# ----------------------------------------------------------------------

def _fresh_name(variables: Iterable[str]) -> str:
    taken = set(variables)
    index = len(taken)
    while f"f{index}" in taken:
        index += 1
    return f"f{index}"


def _candidate_edges(
    pattern: QueryPattern,
    table: BindingTable | None,
    labels: tuple[str, ...],
    unique_src: dict[str, np.ndarray],
    unique_dst: dict[str, np.ndarray],
):
    """One-atom extensions of ``pattern`` that can have matches.

    With a match table, candidate labels are pruned against the matched
    vertex sets of the variables the new atom touches (a necessary
    condition for the child to be non-empty, so pruning never loses a
    non-empty pattern); without one, every label is a candidate.
    """
    variables = pattern.variables
    existing = set(pattern.edges)
    fresh = _fresh_name(variables)
    if table is None:
        values = None
    else:
        column_of = {var: i for i, var in enumerate(table.variables)}
        values = {
            var: np.unique(table.rows[:, column_of[var]]) for var in variables
        }
    for var in variables:
        for label in labels:
            if values is None or sorted_intersects(unique_src[label], values[var]):
                yield QueryEdge(var, fresh, label)
            if values is None or sorted_intersects(unique_dst[label], values[var]):
                yield QueryEdge(fresh, var, label)
    for src in variables:
        for dst in variables:
            for label in labels:
                edge = QueryEdge(src, dst, label)
                if edge in existing:
                    continue
                if values is None or (
                    sorted_intersects(unique_src[label], values[src])
                    and sorted_intersects(unique_dst[label], values[dst])
                ):
                    yield edge


def _budgeted_count(
    graph: LabeledDiGraph,
    pattern: QueryPattern,
    table: BindingTable | None,
    count_budget: int | None,
) -> float:
    """A pattern count honouring the lazy path's budget semantics.

    The step budget applies only to cyclic backtracking
    (:func:`count_general`); for acyclic patterns the match-table count
    is the same number the budget-free DP returns, so the join-table
    shortcut is exact.  For cyclic patterns under a budget, defer to the
    engine so over-budget patterns raise ``CountBudgetExceeded`` exactly
    where a lazy Markov table would — a budgeted driver (Figure 12) must
    drop the same queries the old per-figure tables dropped.
    """
    if table is not None and (
        count_budget is None or not two_core_edges(pattern)
    ):
        return float(table.rows.shape[0])
    return float(count_pattern(graph, pattern, budget=count_budget))


@dataclass
class _Enumeration:
    """What one enumeration pass produced.

    ``markov_complete`` / ``degrees_complete`` assert that every
    non-empty pattern in range has, respectively, a stored count / a
    stored degree relation — the licence for a graph-free catalog to
    answer misses with "empty".  They diverge when a match table
    overflows ``max_rows``: the count still comes from the engine, but
    no degree relation can be extracted.
    """

    counts: dict[tuple, float]
    degree_relations: dict[tuple, StatRelation]
    enumerated: int
    markov_complete: bool
    degrees_complete: bool


def _enumerate_full(
    graph: LabeledDiGraph, config: StatsBuildConfig
) -> _Enumeration:
    """Grow all non-empty connected patterns up to ``max(h, molp_h)``."""
    h_enum = max(config.h, config.molp_h)
    labels = graph.labels
    unique_src = {
        label: np.unique(graph.relation(label).src_by_src) for label in labels
    }
    unique_dst = {
        label: np.unique(graph.relation(label).dst_by_src) for label in labels
    }
    counts: dict[tuple, float] = {}
    degree_relations: dict[tuple, StatRelation] = {}
    seen: set[tuple] = set()
    markov_complete = True
    degrees_complete = True
    level: list[tuple[QueryPattern, BindingTable | None]] = []

    def record(
        pattern: QueryPattern, key: tuple, table: BindingTable | None
    ) -> float | None:
        """Count (from the table when available), store, return count."""
        nonlocal markov_complete, degrees_complete
        try:
            count = _budgeted_count(graph, pattern, table, config.count_budget)
        except ReproError:
            # Unknown count: neither artifact can claim completeness.
            markov_complete = False
            degrees_complete = False
            return None
        if count == 0.0:
            return 0.0
        counts[key] = count
        if len(pattern) <= config.molp_h:
            if table is not None:
                # Stored under canonical variable names so the artifact
                # bytes are independent of the growth path that produced
                # the table (the incremental maintainer's recomputed
                # relations must land on identical serializations).
                degree_relations[key] = StatRelation.canonical_from_table(
                    pattern, table, graph.num_vertices
                )
            else:
                # The match table overflowed max_rows: the count is known
                # but no degrees were extracted, so a graph-free catalog
                # must not serve this pattern's miss as "empty".
                degrees_complete = False
        return count

    for label in labels:
        for pattern in (
            QueryPattern([("v0", "v1", label)]),
            QueryPattern([("v0", "v0", label)]),
        ):
            key = canonical_key(pattern)
            if key in seen:
                continue
            seen.add(key)
            table = start_table(graph, pattern.edges[0])
            if record(pattern, key, table):
                level.append((pattern, table))

    size = 1
    while size < h_enum and level:
        next_level: list[tuple[QueryPattern, BindingTable | None]] = []
        for pattern, table in level:
            for edge in _candidate_edges(
                pattern, table, labels, unique_src, unique_dst
            ):
                child = QueryPattern(pattern.edges + (edge,))
                key = canonical_key(child)
                if key in seen:
                    continue
                seen.add(key)
                child_table: BindingTable | None = None
                if table is not None:
                    try:
                        child_table = extend_by_edge(
                            graph, table, edge, max_rows=config.max_rows
                        )
                    except PlanningError:
                        child_table = None  # too big: count via the engine
                if record(child, key, child_table):
                    next_level.append((child, child_table))
        level = next_level
        size += 1
    return _Enumeration(
        counts=counts,
        degree_relations=degree_relations,
        enumerated=len(seen),
        markov_complete=markov_complete,
        degrees_complete=degrees_complete,
    )


def _needed_subpatterns(
    workload: Sequence[QueryPattern], h_enum: int
) -> dict[tuple, QueryPattern]:
    """Canonical connected subpatterns (≤ ``h_enum`` atoms) of a workload."""
    needed: dict[tuple, QueryPattern] = {}
    for query in workload:
        for subset in query.connected_edge_subsets(max_size=h_enum):
            sub = query.subpattern(subset)
            key = canonical_key(sub)
            if key not in needed:
                needed[key] = canonical_pattern(sub)
    return needed


def _enumerate_workload(
    graph: LabeledDiGraph,
    workload: Sequence[QueryPattern],
    config: StatsBuildConfig,
    skip: set[tuple] | None = None,
) -> _Enumeration:
    """Count each canonical subpattern the workload needs, exactly once."""
    h_enum = max(config.h, config.molp_h)
    needed = _needed_subpatterns(workload, h_enum)
    counts: dict[tuple, float] = {}
    degree_relations: dict[tuple, StatRelation] = {}
    for key, pattern in needed.items():
        if skip is not None and key in skip:
            continue
        table: BindingTable | None = None
        if len(pattern) <= config.molp_h:
            try:
                table = materialise_table(graph, pattern, config.max_rows)
            except PlanningError:
                table = None
        try:
            count = _budgeted_count(graph, pattern, table, config.count_budget)
        except ReproError:
            continue
        # Workload-directed artifacts are not complete, so zero counts
        # are stored explicitly — a covered-but-empty pattern must not
        # raise MissingStatisticError at serve time.
        counts[key] = count
        if table is not None and len(pattern) <= config.molp_h:
            degree_relations[key] = StatRelation.canonical_from_table(
                pattern, table, graph.num_vertices
            )
    return _Enumeration(
        counts=counts,
        degree_relations=degree_relations,
        enumerated=len(needed),
        markov_complete=False,
        degrees_complete=False,
    )


# ----------------------------------------------------------------------
# Store assembly
# ----------------------------------------------------------------------

def _populate_markov(
    markov: MarkovTable, enumeration: _Enumeration, h: int
) -> None:
    for key, count in enumeration.counts.items():
        if len(key) <= h:
            markov._cache[key] = count


def _populate_degrees(
    catalog: DegreeCatalog, enumeration: _Enumeration
) -> None:
    for key, relation in enumeration.degree_relations.items():
        catalog._cache[key] = relation


def _prime_from_workload(
    graph: LabeledDiGraph,
    markov: MarkovTable,
    workload: Sequence[QueryPattern],
    cycle_rates: CycleClosingRates | None,
    entropy: EntropyCatalog | None,
    h: int,
) -> None:
    """Populate walk-sampled rates / entropy weights one CEG per shape."""
    primed: set[tuple] = set()
    for query in workload:
        key = canonical_key(query)
        if key in primed:
            continue
        primed.add(key)
        shape = canonical_pattern(query)
        try:
            if cycle_rates is not None and largest_cycle_length(shape) > h:
                build_ceg_o(shape, markov, cycle_rates=cycle_rates)
            if entropy is not None:
                lowest_entropy_estimate(shape, markov, entropy)
        except ReproError:
            continue


def build_statistics(
    graph: LabeledDiGraph,
    config: StatsBuildConfig | None = None,
    workload: Sequence[QueryPattern] | None = None,
    dataset_name: str = "",
) -> StatisticsStore:
    """Bulk-build a :class:`StatisticsStore` for ``graph``.

    Without a ``workload`` the build enumerates every connected pattern
    up to ``max(h, molp_h)`` atoms over the label set (a *complete*
    artifact: misses are provably empty); with one it builds exactly the
    statistics the workload's queries can touch (the paper's §6 setup).
    """
    config = config or StatsBuildConfig()
    started = time.perf_counter()
    if workload is None:
        enumeration = _enumerate_full(graph, config)
    else:
        enumeration = _enumerate_workload(graph, workload, config)

    markov = MarkovTable(
        graph,
        h=config.h,
        count_budget=config.count_budget,
        labels=graph.labels,
        complete=enumeration.markov_complete,
    )
    _populate_markov(markov, enumeration, config.h)
    degrees = DegreeCatalog(
        graph,
        h=config.molp_h,
        max_rows=config.max_rows,
        complete=enumeration.degrees_complete,
    )
    _populate_degrees(degrees, enumeration)

    rates = (
        CycleClosingRates(
            graph, seed=config.cycle_seed, samples=config.cycle_samples
        )
        if config.cycle_rates
        else None
    )
    entropy = (
        EntropyCatalog(graph, max_rows=config.max_rows)
        if config.entropy
        else None
    )
    if workload is not None and (rates is not None or entropy is not None):
        _prime_from_workload(graph, markov, workload, rates, entropy, config.h)

    characteristic_sets = None
    sumrdf = None
    if config.baselines:
        characteristic_sets = CharacteristicSetsEstimator(graph)
        sumrdf = SumRdfEstimator(
            graph, num_buckets=config.sumrdf_buckets, seed=config.sumrdf_seed
        )

    manifest = StoreManifest(
        dataset_fingerprint=dataset_fingerprint(graph),
        dataset_name=dataset_name,
        graph_summary=graph.summary(),
        h=config.h,
        molp_h=config.molp_h,
        complete=enumeration.markov_complete and enumeration.degrees_complete,
        build_config=dict(
            config.as_dict(),
            mode="full" if workload is None else "workload",
            enumerated_patterns=enumeration.enumerated,
            build_seconds=round(time.perf_counter() - started, 6),
        ),
    )
    return StatisticsStore(
        manifest=manifest,
        markov=markov,
        degrees=degrees,
        characteristic_sets=characteristic_sets,
        sumrdf=sumrdf,
        cycle_rates=rates,
        entropy=entropy,
        graph=graph,
    )


def ensure_baselines(
    store: StatisticsStore,
    graph: LabeledDiGraph,
    sumrdf_buckets: int = 64,
    sumrdf_seed: int = 0,
) -> StatisticsStore:
    """Build the CS / SumRDF summaries of a store that skipped them.

    Stores built with ``baselines=False`` (the figure drivers' default —
    only Figure 13 reads the baselines) get them on first demand.
    """
    if store.characteristic_sets is None:
        store.characteristic_sets = CharacteristicSetsEstimator(graph)
    if store.sumrdf is None:
        store.sumrdf = SumRdfEstimator(
            graph, num_buckets=sumrdf_buckets, seed=sumrdf_seed
        )
    return store


def extend_statistics(
    store: StatisticsStore,
    graph: LabeledDiGraph,
    workload: Sequence[QueryPattern],
) -> StatisticsStore:
    """Add the statistics a further workload needs to an existing store.

    Used by the experiment drivers to share one store per dataset across
    figures: canonical shapes already counted are skipped, new ones are
    counted once through the shared bulk path.
    """
    config = StatsBuildConfig(
        h=store.markov.h,
        molp_h=store.degrees.h,
        max_rows=store.degrees.max_rows,
        count_budget=store.markov.count_budget,
    )
    enumeration = _enumerate_workload(
        graph,
        workload,
        config,
        # Markov keys cover sizes <= h; degree keys additionally cover
        # h < size <= molp_h patterns that have no Markov entry.
        skip=set(store.markov._cache) | set(store.degrees._cache),
    )
    _populate_markov(store.markov, enumeration, config.h)
    for key, relation in enumeration.degree_relations.items():
        store.degrees._cache.setdefault(key, relation)
    if store.cycle_rates is not None or store.entropy is not None:
        _prime_from_workload(
            graph,
            store.markov,
            workload,
            store.cycle_rates,
            store.entropy,
            config.h,
        )
    return store
