"""Offline bulk construction of every summary the estimators serve.

The lazy catalogs compute one statistic per :func:`count_pattern` call,
on the request path.  The bulk builder inverts that (§6: statistics are
computed offline and shipped to the optimizer):

* **Full enumeration** (no workload): grow every connected pattern of up
  to ``h`` atoms over the dataset's label set, level by level.  Patterns
  with zero matches are never stored or extended — supersets of an empty
  join are empty — which is what lets a *complete* artifact answer
  misses with 0.
* **Workload-directed** (the paper's "we worked backwards from the
  queries"): enumerate the union of canonical connected subpatterns the
  estimator suite needs across all workload queries, and count each
  once.

Both modes run through one **level-synchronous, sharded** coordinator:

* Full enumeration is partitioned by *minimum label*.  Shard ``i`` owns
  exactly the connected patterns whose smallest label is ``labels[i]``,
  grown from that label's one-atom seeds with candidate labels
  restricted to ``labels[i:]``.  Growth only ever adds atoms, so the
  seed atom survives in every descendant and the min label is invariant
  — shards never examine (let alone double-count) each other's
  patterns.  Workload mode shards each pattern-size level into sorted
  key chunks.
* With ``jobs > 1`` the shards of a level run on a
  ``ProcessPoolExecutor`` (forked workers share the graph's pages;
  spawn falls back to pickling it once per worker).  Workers ship back
  ``(canonical key, count, degree-relation payload)`` triples — nothing
  process-specific — and the coordinator merges them in shard order.
  Every stored value is keyed by canonical form and serialized under
  canonical variable names (:meth:`StatRelation.canonical_from_table`,
  the PR-5 discipline), and catalog artifacts sort on serialization, so
  a parallel build's artifact is **byte-identical** to ``jobs=1``.
* After every level the coordinator can persist a resume checkpoint
  (``build_state/checkpoint.json`` under the build directory): a killed
  build rerun with ``resume=True`` reloads all completed levels —
  counts, degree payloads, per-shard frontiers — and continues instead
  of recounting.

Degree statistics for the MOLP catalog are extracted from the same
match tables in bulk, cycle-closing rates and entropy weights are primed
by building each workload query's CEG once, and the two baseline
summaries (Characteristic Sets, SumRDF) are single whole-graph passes.

Every stored number is produced by the same deterministic integer
arithmetic the lazy path uses, so estimates served from a built (or
saved-and-loaded) store are bit-identical to the never-persisted path —
the property suite enforces this.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.baselines.characteristic_sets import CharacteristicSetsEstimator
from repro.baselines.sumrdf import SumRdfEstimator
from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.degrees import (
    DegreeCatalog,
    StatRelation,
    materialise_table,
)
from repro.catalog.entropy import EntropyCatalog
from repro.catalog.markov import MarkovTable
from repro.core.ceg_entropy import lowest_entropy_estimate
from repro.core.ceg_o import build_ceg_o
from repro.engine.backtracking import two_core_edges
from repro.engine.counter import count_pattern
from repro.engine.frames import sorted_intersects
from repro.engine.join import BindingTable, extend_by_edge, start_table
from repro.errors import (
    BuildInterrupted,
    DatasetError,
    PlanningError,
    ReproError,
)
from repro.graph.digraph import LabeledDiGraph
from repro.obs.offline import JobTelemetry
from repro.query.canonical import canonical_key, canonical_pattern
from repro.query.pattern import QueryEdge, QueryPattern
from repro.query.shape import largest_cycle_length
from repro.stats.artifact import (
    BUILD_STATE_DIR,
    CHECKPOINT_FILE,
    CHECKPOINT_FORMAT_VERSION,
    StoreManifest,
    dataset_fingerprint,
)
from repro.stats.store import StatisticsStore

__all__ = [
    "StatsBuildConfig",
    "build_statistics",
    "ensure_baselines",
    "extend_statistics",
]


@dataclass(frozen=True)
class StatsBuildConfig:
    """Knobs of one offline statistics build.

    ``h`` is the Markov-table size, ``molp_h`` the join-statistics size
    of the MOLP degree catalog; patterns are enumerated up to
    ``max(h, molp_h)`` atoms.  ``cycle_rates`` samples the §4.3
    closing-rate statistics (workload-directed; full enumeration of all
    label triples would leave the paper's ``O(L^3)`` budget).
    """

    h: int = 2
    molp_h: int = 2
    max_rows: int | None = 5_000_000
    count_budget: int | None = None
    cycle_rates: bool = False
    cycle_seed: int = 0
    cycle_samples: int = 1000
    baselines: bool = True
    sumrdf_buckets: int = 64
    sumrdf_seed: int = 0
    entropy: bool = False

    def as_dict(self) -> dict:
        """JSON-friendly form recorded in the artifact manifest."""
        return asdict(self)


# ----------------------------------------------------------------------
# Shared enumeration primitives
# ----------------------------------------------------------------------

def _fresh_name(variables: Iterable[str]) -> str:
    taken = set(variables)
    index = len(taken)
    while f"f{index}" in taken:
        index += 1
    return f"f{index}"


def _pattern_from_key(key: tuple) -> QueryPattern:
    """The canonical pattern a canonical key denotes (a fixed point:
    ``canonical_key(_pattern_from_key(k)) == k``)."""
    return QueryPattern((f"v{s}", f"v{d}", label) for s, d, label in key)


def _candidate_edges(
    pattern: QueryPattern,
    table: BindingTable | None,
    labels: tuple[str, ...],
    unique_src: dict[str, np.ndarray],
    unique_dst: dict[str, np.ndarray],
):
    """One-atom extensions of ``pattern`` that can have matches.

    With a match table, candidate labels are pruned against the matched
    vertex sets of the variables the new atom touches (a necessary
    condition for the child to be non-empty, so pruning never loses a
    non-empty pattern); without one, every label is a candidate.
    """
    variables = pattern.variables
    existing = set(pattern.edges)
    fresh = _fresh_name(variables)
    if table is None:
        values = None
    else:
        column_of = {var: i for i, var in enumerate(table.variables)}
        values = {
            var: np.unique(table.rows[:, column_of[var]]) for var in variables
        }
    for var in variables:
        for label in labels:
            if values is None or sorted_intersects(unique_src[label], values[var]):
                yield QueryEdge(var, fresh, label)
            if values is None or sorted_intersects(unique_dst[label], values[var]):
                yield QueryEdge(fresh, var, label)
    for src in variables:
        for dst in variables:
            for label in labels:
                edge = QueryEdge(src, dst, label)
                if edge in existing:
                    continue
                if values is None or (
                    sorted_intersects(unique_src[label], values[src])
                    and sorted_intersects(unique_dst[label], values[dst])
                ):
                    yield edge


def _budgeted_count(
    graph: LabeledDiGraph,
    pattern: QueryPattern,
    table: BindingTable | None,
    count_budget: int | None,
) -> float:
    """A pattern count honouring the lazy path's budget semantics.

    The step budget applies only to cyclic backtracking
    (:func:`count_general`); for acyclic patterns the match-table count
    is the same number the budget-free DP returns, so the join-table
    shortcut is exact.  For cyclic patterns under a budget, defer to the
    engine so over-budget patterns raise ``CountBudgetExceeded`` exactly
    where a lazy Markov table would — a budgeted driver (Figure 12) must
    drop the same queries the old per-figure tables dropped.
    """
    if table is not None and (
        count_budget is None or not two_core_edges(pattern)
    ):
        return float(table.rows.shape[0])
    return float(count_pattern(graph, pattern, budget=count_budget))


def _unique_endpoint_sets(
    graph: LabeledDiGraph, labels: tuple[str, ...]
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Matched-vertex sets per label for candidate pruning (cached on the
    graph — workers reuse them across every level of their shard)."""
    cache = getattr(graph, "_stats_unique_cache", None)
    if cache is None:
        cache = {}
        graph._stats_unique_cache = cache
    unique_src: dict[str, np.ndarray] = {}
    unique_dst: dict[str, np.ndarray] = {}
    for label in labels:
        cached = cache.get(label)
        if cached is None:
            relation = graph.relation(label)
            cached = (
                np.unique(relation.src_by_src),
                np.unique(relation.dst_by_src),
            )
            cache[label] = cached
        unique_src[label], unique_dst[label] = cached
    return unique_src, unique_dst


# ----------------------------------------------------------------------
# Level tasks (run inline for jobs=1, in pool workers otherwise)
# ----------------------------------------------------------------------

#: ``(graph, config)`` of the build in progress.  Set in the parent
#: before the pool exists: forked workers inherit it copy-on-write;
#: spawned workers get it re-set by the pool initializer.
_WORKER_CONTEXT: tuple[LabeledDiGraph, StatsBuildConfig] | None = None


def _set_worker_context(
    graph: LabeledDiGraph, config: StatsBuildConfig
) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = (graph, config)


@dataclass
class _TaskResult:
    """One shard-level task's contribution, in deterministic order.

    Degree relations travel as ``StatRelation.to_artifact()`` payloads —
    plain JSON-able dicts — so results are identical whether they
    crossed a process boundary, came off a resume checkpoint, or were
    produced inline.
    """

    records: list[tuple[tuple, float]] = field(default_factory=list)
    degree_payloads: list[tuple[tuple, dict]] = field(default_factory=list)
    frontier: list[tuple] = field(default_factory=list)
    examined: int = 0
    markov_complete: bool = True
    degrees_complete: bool = True
    #: Wall seconds this task took in its worker — telemetry only,
    #: never serialized into the artifact or the checkpoint.
    seconds: float = 0.0


def _record_pattern(
    graph: LabeledDiGraph,
    config: StatsBuildConfig,
    pattern: QueryPattern,
    key: tuple,
    table: BindingTable | None,
    result: _TaskResult,
    store_zeros: bool,
) -> float | None:
    """Count one pattern, store its statistics into ``result``.

    Returns the count (``None`` when counting itself failed)."""
    try:
        count = _budgeted_count(graph, pattern, table, config.count_budget)
    except ReproError:
        # Unknown count: neither artifact can claim completeness.
        result.markov_complete = False
        result.degrees_complete = False
        return None
    if count == 0.0 and not store_zeros:
        return 0.0
    result.records.append((key, count))
    if len(pattern) <= config.molp_h:
        if table is not None:
            # Stored under canonical variable names so the artifact
            # bytes are independent of the growth path that produced
            # the table (the incremental maintainer's recomputed
            # relations must land on identical serializations).
            result.degree_payloads.append((
                key,
                StatRelation.canonical_from_table(
                    pattern, table, graph.num_vertices
                ).to_artifact(),
            ))
        else:
            # The match table overflowed max_rows: the count is known
            # but no degrees were extracted, so a graph-free catalog
            # must not serve this pattern's miss as "empty".
            result.degrees_complete = False
    return count


def _full_shard_task(
    graph: LabeledDiGraph,
    config: StatsBuildConfig,
    shard_index: int,
    frontier: tuple[tuple, ...] | None,
) -> _TaskResult:
    """One ``(shard, level)`` step of full enumeration.

    ``frontier is None`` seeds level 1 (the shard label's two one-atom
    canonical patterns); otherwise each frontier pattern's match table
    is re-materialised (deterministic spanning-tree recipe) and extended
    by one atom over the shard's allowed labels.
    """
    labels = graph.labels
    shard_labels = labels[shard_index:]
    result = _TaskResult()
    seen: set[tuple] = set()

    if frontier is None:
        label = labels[shard_index]
        for pattern in (
            QueryPattern([("v0", "v1", label)]),
            QueryPattern([("v0", "v0", label)]),
        ):
            key = canonical_key(pattern)
            if key in seen:
                continue
            seen.add(key)
            table = start_table(graph, pattern.edges[0])
            if _record_pattern(
                graph, config, pattern, key, table, result, store_zeros=False
            ):
                result.frontier.append(key)
        result.examined = len(seen)
        return result

    unique_src, unique_dst = _unique_endpoint_sets(graph, shard_labels)
    for parent_key in frontier:
        pattern = _pattern_from_key(parent_key)
        try:
            table = materialise_table(graph, pattern, config.max_rows)
        except PlanningError:
            table = None  # too big: prune nothing, count via the engine
        for edge in _candidate_edges(
            pattern, table, shard_labels, unique_src, unique_dst
        ):
            child = QueryPattern(pattern.edges + (edge,))
            key = canonical_key(child)
            if key in seen:
                continue
            seen.add(key)
            child_table: BindingTable | None = None
            if table is not None:
                try:
                    child_table = extend_by_edge(
                        graph, table, edge, max_rows=config.max_rows
                    )
                except PlanningError:
                    child_table = None
            if _record_pattern(
                graph, config, child, key, child_table, result,
                store_zeros=False,
            ):
                result.frontier.append(key)
    result.examined = len(seen)
    return result


def _workload_chunk_task(
    graph: LabeledDiGraph,
    config: StatsBuildConfig,
    keys: tuple[tuple, ...],
) -> _TaskResult:
    """Count one sorted chunk of needed canonical keys (workload mode).

    Zero counts are stored explicitly — workload artifacts are not
    complete, so a covered-but-empty pattern must not raise
    ``MissingStatisticError`` at serve time.
    """
    result = _TaskResult()
    for key in keys:
        pattern = _pattern_from_key(key)
        table: BindingTable | None = None
        if len(pattern) <= config.molp_h:
            try:
                table = materialise_table(graph, pattern, config.max_rows)
            except PlanningError:
                table = None
        _record_pattern(
            graph, config, pattern, key, table, result, store_zeros=True
        )
    result.examined = len(keys)
    # Workload-directed artifacts never claim completeness.
    result.markov_complete = False
    result.degrees_complete = False
    return result


def _run_build_task(task: tuple) -> _TaskResult:
    """Pool entry point: dispatch one task against the worker context."""
    assert _WORKER_CONTEXT is not None, "worker context not initialised"
    graph, config = _WORKER_CONTEXT
    kind = task[0]
    began = time.perf_counter()
    if kind == "seed":
        result = _full_shard_task(graph, config, task[1], None)
    elif kind == "grow":
        result = _full_shard_task(graph, config, task[1], task[2])
    elif kind == "count":
        result = _workload_chunk_task(graph, config, task[1])
    else:
        raise AssertionError(f"unknown build task kind {kind!r}")
    result.seconds = time.perf_counter() - began
    return result


class _TaskRunner:
    """Runs level tasks inline (``jobs=1``) or on a process pool.

    Fork start method is preferred: workers inherit the parent's graph
    (and its mmap-backed arrays) copy-on-write via the module-level
    context, so nothing is pickled per task beyond canonical keys.
    Where fork is unavailable the pool falls back to spawn and ships
    ``(graph, config)`` once per worker through the initializer.
    """

    def __init__(
        self, graph: LabeledDiGraph, config: StatsBuildConfig, jobs: int
    ):
        self.jobs = max(1, int(jobs))
        self._executor: ProcessPoolExecutor | None = None
        _set_worker_context(graph, config)
        if self.jobs > 1:
            try:
                context = multiprocessing.get_context("fork")
                initargs: tuple = ()
                initializer = None
            except ValueError:
                context = multiprocessing.get_context("spawn")
                initializer = _set_worker_context
                initargs = (graph, config)
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=context,
                initializer=initializer,
                initargs=initargs,
            )

    def run(self, tasks: Sequence[tuple]) -> list[_TaskResult]:
        """All task results, in task order."""
        if self._executor is None or len(tasks) <= 1:
            return [_run_build_task(task) for task in tasks]
        return list(self._executor.map(_run_build_task, tasks))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------

def _key_to_json(key: tuple) -> list:
    return [[s, d, label] for s, d, label in key]


def _key_from_json(payload: list) -> tuple:
    return tuple((int(s), int(d), str(label)) for s, d, label in payload)


@dataclass
class _BuildState:
    """Everything accumulated across completed levels of one build."""

    counts: dict[tuple, float] = field(default_factory=dict)
    degree_payloads: dict[tuple, dict] = field(default_factory=dict)
    frontiers: list[list[tuple]] = field(default_factory=list)
    completed_levels: list[int] = field(default_factory=list)
    level_stats: list[dict] = field(default_factory=list)
    examined: int = 0
    markov_complete: bool = True
    degrees_complete: bool = True

    def merge_level(
        self,
        level: int,
        results: Sequence[_TaskResult],
        seconds: float,
        jobs: int,
        frontier_by_shard: list[list[tuple]] | None,
    ) -> None:
        stored = 0
        examined = 0
        for result in results:
            for key, count in result.records:
                self.counts[key] = count
                stored += 1
            for key, payload in result.degree_payloads:
                self.degree_payloads[key] = payload
            examined += result.examined
            self.markov_complete &= result.markov_complete
            self.degrees_complete &= result.degrees_complete
        self.examined += examined
        if frontier_by_shard is not None:
            self.frontiers = frontier_by_shard
        self.completed_levels.append(level)
        self.level_stats.append({
            "level": level,
            "seconds": round(seconds, 6),
            "examined": examined,
            "stored": stored,
            "frontier": sum(len(f) for f in self.frontiers),
            "jobs": jobs,
            "resumed": False,
        })

    def to_enumeration(self) -> "_Enumeration":
        return _Enumeration(
            counts=self.counts,
            degree_relations={
                key: StatRelation.from_artifact(payload)
                for key, payload in self.degree_payloads.items()
            },
            enumerated=self.examined,
            markov_complete=self.markov_complete,
            degrees_complete=self.degrees_complete,
        )


class _BuildCheckpoint:
    """Durable per-level resume state under ``<dir>/build_state/``.

    The checkpoint is one JSON document written atomically (tmp +
    rename), keyed by dataset fingerprint, build config, and mode — a
    resume against a different graph or configuration is refused rather
    than silently merged.
    """

    def __init__(
        self,
        directory: str | Path,
        fingerprint: str,
        config: StatsBuildConfig,
        mode: str,
        scope_digest: str,
    ):
        self.directory = Path(directory) / BUILD_STATE_DIR
        self.path = self.directory / CHECKPOINT_FILE
        self.fingerprint = fingerprint
        self.config_dict = config.as_dict()
        self.mode = mode
        self.scope_digest = scope_digest

    def save(self, state: _BuildState) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "kind": "build_checkpoint",
            "mode": self.mode,
            "dataset_fingerprint": self.fingerprint,
            "config": self.config_dict,
            "scope_digest": self.scope_digest,
            "completed_levels": state.completed_levels,
            "examined": state.examined,
            "markov_complete": state.markov_complete,
            "degrees_complete": state.degrees_complete,
            "counts": [
                [_key_to_json(key), count]
                for key, count in sorted(state.counts.items())
            ],
            "degrees": [
                [_key_to_json(key), payload]
                for key, payload in sorted(state.degree_payloads.items())
            ],
            "frontiers": [
                [_key_to_json(key) for key in frontier]
                for frontier in state.frontiers
            ],
            "level_stats": state.level_stats,
        }
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, self.path)

    def load(self) -> _BuildState | None:
        """The checkpointed state, or ``None`` when there is none."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except OSError:
            return None
        except ValueError as error:
            raise DatasetError(f"corrupt build checkpoint {self.path}: {error}")
        if payload.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            raise DatasetError(
                f"{self.path}: unsupported checkpoint format "
                f"{payload.get('format_version')!r}"
            )
        for name, expected, actual in (
            ("dataset", self.fingerprint, payload.get("dataset_fingerprint")),
            ("mode", self.mode, payload.get("mode")),
            ("config", self.config_dict, payload.get("config")),
            ("scope", self.scope_digest, payload.get("scope_digest")),
        ):
            if actual != expected:
                raise DatasetError(
                    f"{self.path}: checkpoint {name} mismatch — it was "
                    f"written by a different build (delete "
                    f"{self.directory} or drop --resume)"
                )
        level_stats = [dict(entry) for entry in payload["level_stats"]]
        for entry in level_stats:
            entry["resumed"] = True
        return _BuildState(
            counts={
                _key_from_json(key): float(count)
                for key, count in payload["counts"]
            },
            degree_payloads={
                _key_from_json(key): dict(body)
                for key, body in payload["degrees"]
            },
            frontiers=[
                [_key_from_json(key) for key in frontier]
                for frontier in payload["frontiers"]
            ],
            completed_levels=[int(v) for v in payload["completed_levels"]],
            level_stats=level_stats,
            examined=int(payload["examined"]),
            markov_complete=bool(payload["markov_complete"]),
            degrees_complete=bool(payload["degrees_complete"]),
        )

    def clear(self) -> None:
        """Remove the checkpoint after a successful build."""
        try:
            self.path.unlink()
        except OSError:
            pass
        try:
            self.directory.rmdir()
        except OSError:
            pass  # leftover files (or never created): leave the dir


# ----------------------------------------------------------------------
# Leveled coordinators
# ----------------------------------------------------------------------

@dataclass
class _Enumeration:
    """What one enumeration pass produced.

    ``markov_complete`` / ``degrees_complete`` assert that every
    non-empty pattern in range has, respectively, a stored count / a
    stored degree relation — the licence for a graph-free catalog to
    answer misses with "empty".  They diverge when a match table
    overflows ``max_rows``: the count still comes from the engine, but
    no degree relation can be extracted.
    """

    counts: dict[tuple, float]
    degree_relations: dict[tuple, StatRelation]
    enumerated: int
    markov_complete: bool
    degrees_complete: bool


def _load_or_fresh_state(
    checkpoint: _BuildCheckpoint | None,
    resume: bool,
    num_shards: int,
    telemetry: JobTelemetry | None = None,
) -> _BuildState:
    if checkpoint is not None and resume:
        state = checkpoint.load()
        if state is not None:
            if telemetry is not None and state.completed_levels:
                # Resume event: note which levels the checkpoint
                # already covered so a trace reader can tell replayed
                # progress from fresh enumeration work.
                telemetry.trace.note(
                    resumed_levels=list(state.completed_levels)
                )
                telemetry.registry.counter(
                    "repro_build_resumes_total",
                    "Builds resumed from a per-level checkpoint.",
                ).inc()
            return state
    state = _BuildState()
    state.frontiers = [[] for _ in range(num_shards)]
    return state


def _observe_level(
    telemetry: JobTelemetry | None,
    began: float,
    entry: dict,
    results: Sequence[_TaskResult],
    shards: Sequence[int],
) -> None:
    """One completed level's span tree + counters (no-op untraced).

    The level span carries the same ``{examined, stored, frontier}``
    counters the manifest's ``levels`` table stores; under ``jobs=N``
    each shard task contributes a child span with its own worker-side
    wall time (start offsets inside the pool are unknown, so shard
    spans share the level's start and report duration only).
    """
    if telemetry is None:
        return
    trace = telemetry.trace
    span = trace.add_span(
        "level",
        began,
        entry["seconds"],
        level=entry["level"],
        examined=entry["examined"],
        stored=entry["stored"],
        frontier=entry["frontier"],
        jobs=entry["jobs"],
    )
    for shard, result in zip(shards, results):
        trace.add_span(
            "shard",
            began,
            result.seconds,
            parent=span.span_id,
            shard=shard,
            examined=result.examined,
            stored=len(result.records),
        )
    registry = telemetry.registry
    registry.counter(
        "repro_build_levels_total",
        "Enumeration levels completed by this build job.",
    ).inc()
    registry.counter(
        "repro_build_examined_total",
        "Candidate patterns examined by the enumeration.",
    ).inc(entry["examined"])
    registry.counter(
        "repro_build_stored_total",
        "Pattern statistics stored by the enumeration.",
    ).inc(entry["stored"])
    registry.gauge(
        "repro_build_frontier",
        "Patterns on the live frontier after the last level.",
    ).set(entry["frontier"])


def _observe_checkpoint(
    telemetry: JobTelemetry | None, began: float, level: int
) -> None:
    if telemetry is None:
        return
    telemetry.trace.add_span(
        "checkpoint",
        began,
        time.perf_counter() - began,
        level=level,
    )
    telemetry.registry.counter(
        "repro_build_checkpoints_total",
        "Per-level resume checkpoints written by this build job.",
    ).inc()


def _maybe_stop(
    checkpoint: _BuildCheckpoint | None,
    stop_after_level: int | None,
    level: int,
) -> None:
    if stop_after_level is not None and level >= stop_after_level:
        raise BuildInterrupted(
            f"build stopped after level {level} (checkpoint at "
            f"{checkpoint.path})"  # type: ignore[union-attr]
        )


def _enumerate_full_leveled(
    graph: LabeledDiGraph,
    config: StatsBuildConfig,
    runner: _TaskRunner,
    checkpoint: _BuildCheckpoint | None,
    resume: bool,
    stop_after_level: int | None,
    telemetry: JobTelemetry | None = None,
) -> tuple[_Enumeration, list[dict]]:
    """Grow all non-empty connected patterns up to ``max(h, molp_h)``,
    one min-label shard per task, level-synchronously."""
    h_enum = max(config.h, config.molp_h)
    labels = graph.labels
    state = _load_or_fresh_state(checkpoint, resume, len(labels), telemetry)
    start_level = (
        max(state.completed_levels) if state.completed_levels else 0
    )
    for level in range(start_level + 1, h_enum + 1):
        if level > 1 and not any(state.frontiers):
            break  # every extension of the last level was empty
        began = time.perf_counter()
        if level == 1:
            tasks = [("seed", shard) for shard in range(len(labels))]
            shards = list(range(len(labels)))
        else:
            shards = [
                shard
                for shard in range(len(labels))
                if state.frontiers[shard]
            ]
            tasks = [
                ("grow", shard, tuple(state.frontiers[shard]))
                for shard in shards
            ]
        results = runner.run(tasks)
        frontier_by_shard: list[list[tuple]] = [[] for _ in labels]
        for shard, result in zip(shards, results):
            frontier_by_shard[shard] = result.frontier
        state.merge_level(
            level,
            results,
            seconds=time.perf_counter() - began,
            jobs=runner.jobs,
            frontier_by_shard=frontier_by_shard,
        )
        _observe_level(
            telemetry, began, state.level_stats[-1], results, shards
        )
        if checkpoint is not None:
            ck_began = time.perf_counter()
            checkpoint.save(state)
            _observe_checkpoint(telemetry, ck_began, level)
        _maybe_stop(checkpoint, stop_after_level, level)
    return state.to_enumeration(), state.level_stats


def _workload_scope_digest(keys: Iterable[tuple]) -> str:
    """Content hash of the needed-key set, pinning a checkpoint to it."""
    digest = hashlib.sha256()
    for key in sorted(keys):
        digest.update(json.dumps(_key_to_json(key)).encode("utf-8"))
    return digest.hexdigest()[:20]


def _needed_subpatterns(
    workload: Sequence[QueryPattern], h_enum: int
) -> dict[tuple, QueryPattern]:
    """Canonical connected subpatterns (≤ ``h_enum`` atoms) of a workload."""
    needed: dict[tuple, QueryPattern] = {}
    for query in workload:
        for subset in query.connected_edge_subsets(max_size=h_enum):
            sub = query.subpattern(subset)
            key = canonical_key(sub)
            if key not in needed:
                needed[key] = canonical_pattern(sub)
    return needed


def _enumerate_workload_leveled(
    graph: LabeledDiGraph,
    workload: Sequence[QueryPattern],
    config: StatsBuildConfig,
    runner: _TaskRunner,
    checkpoint: _BuildCheckpoint | None,
    resume: bool,
    stop_after_level: int | None,
    skip: set[tuple] | None = None,
    telemetry: JobTelemetry | None = None,
) -> tuple[_Enumeration, list[dict]]:
    """Count each canonical subpattern the workload needs, exactly once,
    level = pattern size, each level sharded into sorted key chunks."""
    h_enum = max(config.h, config.molp_h)
    needed = _needed_subpatterns(workload, h_enum)
    keys = sorted(
        key for key in needed if skip is None or key not in skip
    )
    by_size: dict[int, list[tuple]] = {}
    for key in keys:
        by_size.setdefault(len(key), []).append(key)
    state = _load_or_fresh_state(checkpoint, resume, 0, telemetry)
    done = set(state.completed_levels)
    for size in sorted(by_size):
        if size in done:
            continue
        began = time.perf_counter()
        level_keys = by_size[size]
        chunk_count = min(len(level_keys), max(1, runner.jobs * 2))
        chunks = [
            tuple(level_keys[i::chunk_count]) for i in range(chunk_count)
        ]
        results = runner.run([("count", chunk) for chunk in chunks])
        state.merge_level(
            size,
            results,
            seconds=time.perf_counter() - began,
            jobs=runner.jobs,
            frontier_by_shard=None,
        )
        _observe_level(
            telemetry,
            began,
            state.level_stats[-1],
            results,
            range(len(chunks)),
        )
        if checkpoint is not None:
            ck_began = time.perf_counter()
            checkpoint.save(state)
            _observe_checkpoint(telemetry, ck_began, size)
        _maybe_stop(checkpoint, stop_after_level, size)
    enumeration, level_stats = state.to_enumeration(), state.level_stats
    # The workload defines scope, not the stored hit set: misses are
    # not provably empty, and `enumerated` reports the needed set.
    enumeration.markov_complete = False
    enumeration.degrees_complete = False
    enumeration.enumerated = len(needed)
    return enumeration, level_stats


def _enumerate_workload(
    graph: LabeledDiGraph,
    workload: Sequence[QueryPattern],
    config: StatsBuildConfig,
    skip: set[tuple] | None = None,
) -> _Enumeration:
    """Serial convenience wrapper used by :func:`extend_statistics`."""
    runner = _TaskRunner(graph, config, jobs=1)
    try:
        enumeration, _ = _enumerate_workload_leveled(
            graph, workload, config, runner,
            checkpoint=None, resume=False, stop_after_level=None, skip=skip,
        )
    finally:
        runner.close()
    return enumeration


# ----------------------------------------------------------------------
# Store assembly
# ----------------------------------------------------------------------

def _populate_markov(
    markov: MarkovTable, enumeration: _Enumeration, h: int
) -> None:
    for key, count in enumeration.counts.items():
        if len(key) <= h:
            markov._cache[key] = count


def _populate_degrees(
    catalog: DegreeCatalog, enumeration: _Enumeration
) -> None:
    for key, relation in enumeration.degree_relations.items():
        catalog._cache[key] = relation


def _prime_from_workload(
    graph: LabeledDiGraph,
    markov: MarkovTable,
    workload: Sequence[QueryPattern],
    cycle_rates: CycleClosingRates | None,
    entropy: EntropyCatalog | None,
    h: int,
) -> None:
    """Populate walk-sampled rates / entropy weights one CEG per shape."""
    primed: set[tuple] = set()
    for query in workload:
        key = canonical_key(query)
        if key in primed:
            continue
        primed.add(key)
        shape = canonical_pattern(query)
        try:
            if cycle_rates is not None and largest_cycle_length(shape) > h:
                build_ceg_o(shape, markov, cycle_rates=cycle_rates)
            if entropy is not None:
                lowest_entropy_estimate(shape, markov, entropy)
        except ReproError:
            continue


def build_statistics(
    graph: LabeledDiGraph,
    config: StatsBuildConfig | None = None,
    workload: Sequence[QueryPattern] | None = None,
    dataset_name: str = "",
    *,
    jobs: int = 1,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    stop_after_level: int | None = None,
    telemetry: JobTelemetry | None = None,
) -> StatisticsStore:
    """Bulk-build a :class:`StatisticsStore` for ``graph``.

    Without a ``workload`` the build enumerates every connected pattern
    up to ``max(h, molp_h)`` atoms over the label set (a *complete*
    artifact: misses are provably empty); with one it builds exactly the
    statistics the workload's queries can touch (the paper's §6 setup).

    ``jobs`` fans each enumeration level out across worker processes;
    the artifact is byte-identical for every jobs value.  With a
    ``checkpoint_dir`` the coordinator persists a resume checkpoint
    after every level: a killed build rerun with ``resume=True``
    continues from the last completed level.  ``stop_after_level``
    (requires a checkpoint) raises :class:`BuildInterrupted` once that
    level's checkpoint is durable — the hook the interruption tests and
    the CI resume smoke use in place of ``kill -9``.

    ``telemetry`` (a :class:`~repro.obs.offline.JobTelemetry`) records
    per-level/per-shard spans plus build counters and an edges/sec
    gauge on the bundle; it never touches the artifact — bytes stay
    identical with telemetry on, off, serial, parallel, or resumed.
    """
    config = config or StatsBuildConfig()
    started = time.perf_counter()
    if stop_after_level is not None and checkpoint_dir is None:
        raise DatasetError("stop_after_level requires a checkpoint_dir")
    mode = "full" if workload is None else "workload"
    checkpoint: _BuildCheckpoint | None = None
    if checkpoint_dir is not None:
        scope = ""
        if workload is not None:
            h_enum = max(config.h, config.molp_h)
            scope = _workload_scope_digest(
                _needed_subpatterns(workload, h_enum)
            )
        checkpoint = _BuildCheckpoint(
            checkpoint_dir,
            fingerprint=dataset_fingerprint(graph),
            config=config,
            mode=mode,
            scope_digest=scope,
        )
    runner = _TaskRunner(graph, config, jobs)
    try:
        if workload is None:
            enumeration, level_stats = _enumerate_full_leveled(
                graph, config, runner, checkpoint, resume,
                stop_after_level, telemetry,
            )
        else:
            enumeration, level_stats = _enumerate_workload_leveled(
                graph, workload, config, runner, checkpoint, resume,
                stop_after_level, telemetry=telemetry,
            )
    finally:
        runner.close()
    if checkpoint is not None:
        checkpoint.clear()
    if telemetry is not None:
        build_seconds = time.perf_counter() - started
        telemetry.trace.note(
            mode=mode,
            jobs=max(1, int(jobs)),
            enumerated=enumeration.enumerated,
            edges=graph.num_edges,
        )
        registry = telemetry.registry
        registry.gauge(
            "repro_build_seconds",
            "Wall seconds of the last statistics build.",
        ).set(round(build_seconds, 6))
        registry.gauge(
            "repro_build_edges_per_second",
            "Graph edges divided by build wall time (throughput).",
        ).set(
            round(graph.num_edges / build_seconds, 3)
            if build_seconds > 0
            else 0.0
        )
        registry.gauge(
            "repro_build_peak_level_width",
            "Widest level (stored patterns) of the last build.",
        ).set(max((entry["stored"] for entry in level_stats), default=0))

    markov = MarkovTable(
        graph,
        h=config.h,
        count_budget=config.count_budget,
        labels=graph.labels,
        complete=enumeration.markov_complete,
    )
    _populate_markov(markov, enumeration, config.h)
    degrees = DegreeCatalog(
        graph,
        h=config.molp_h,
        max_rows=config.max_rows,
        complete=enumeration.degrees_complete,
    )
    _populate_degrees(degrees, enumeration)

    rates = (
        CycleClosingRates(
            graph, seed=config.cycle_seed, samples=config.cycle_samples
        )
        if config.cycle_rates
        else None
    )
    entropy = (
        EntropyCatalog(graph, max_rows=config.max_rows)
        if config.entropy
        else None
    )
    if workload is not None and (rates is not None or entropy is not None):
        _prime_from_workload(graph, markov, workload, rates, entropy, config.h)

    characteristic_sets = None
    sumrdf = None
    if config.baselines:
        characteristic_sets = CharacteristicSetsEstimator(graph)
        sumrdf = SumRdfEstimator(
            graph, num_buckets=config.sumrdf_buckets, seed=config.sumrdf_seed
        )

    manifest = StoreManifest(
        dataset_fingerprint=dataset_fingerprint(graph),
        dataset_name=dataset_name,
        graph_summary=graph.summary(),
        h=config.h,
        molp_h=config.molp_h,
        complete=enumeration.markov_complete and enumeration.degrees_complete,
        build_config=dict(
            config.as_dict(),
            mode=mode,
            enumerated_patterns=enumeration.enumerated,
            build_seconds=round(time.perf_counter() - started, 6),
            jobs=max(1, int(jobs)),
            levels=level_stats,
            peak_level_width=max(
                (entry["stored"] for entry in level_stats), default=0
            ),
        ),
    )
    return StatisticsStore(
        manifest=manifest,
        markov=markov,
        degrees=degrees,
        characteristic_sets=characteristic_sets,
        sumrdf=sumrdf,
        cycle_rates=rates,
        entropy=entropy,
        graph=graph,
    )


def ensure_baselines(
    store: StatisticsStore,
    graph: LabeledDiGraph,
    sumrdf_buckets: int = 64,
    sumrdf_seed: int = 0,
) -> StatisticsStore:
    """Build the CS / SumRDF summaries of a store that skipped them.

    Stores built with ``baselines=False`` (the figure drivers' default —
    only Figure 13 reads the baselines) get them on first demand.
    """
    if store.characteristic_sets is None:
        store.characteristic_sets = CharacteristicSetsEstimator(graph)
    if store.sumrdf is None:
        store.sumrdf = SumRdfEstimator(
            graph, num_buckets=sumrdf_buckets, seed=sumrdf_seed
        )
    return store


def extend_statistics(
    store: StatisticsStore,
    graph: LabeledDiGraph,
    workload: Sequence[QueryPattern],
) -> StatisticsStore:
    """Add the statistics a further workload needs to an existing store.

    Used by the experiment drivers to share one store per dataset across
    figures: canonical shapes already counted are skipped, new ones are
    counted once through the shared bulk path.
    """
    config = StatsBuildConfig(
        h=store.markov.h,
        molp_h=store.degrees.h,
        max_rows=store.degrees.max_rows,
        count_budget=store.markov.count_budget,
    )
    enumeration = _enumerate_workload(
        graph,
        workload,
        config,
        # Markov keys cover sizes <= h; degree keys additionally cover
        # h < size <= molp_h patterns that have no Markov entry.
        skip=set(store.markov._cache) | set(store.degrees._cache),
    )
    _populate_markov(store.markov, enumeration, config.h)
    for key, relation in enumeration.degree_relations.items():
        store.degrees._cache.setdefault(key, relation)
    if store.cycle_rates is not None or store.entropy is not None:
        _prime_from_workload(
            graph,
            store.markov,
            workload,
            store.cycle_rates,
            store.entropy,
            config.h,
        )
    return store
