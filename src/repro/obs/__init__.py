"""Observability plane: metrics registry, request tracing, audit probe.

``repro.obs`` is the telemetry layer the serving stack (``repro.server``)
threads through every request:

* :mod:`repro.obs.metrics` — labelled counters/gauges/fixed-bucket
  histograms with Prometheus text exposition, parsing, and fleet-wide
  merging;
* :mod:`repro.obs.tracing` — per-request ``trace_id`` + span
  collection and the rotating NDJSON trace/slow-query sink;
* :mod:`repro.obs.audit` — the sampled WanderJoin ground-truth q-error
  probe (the accuracy sensor of ROADMAP item 5);
* :mod:`repro.obs.telemetry` — the per-process bundle tying the three
  together behind one on/off switch.

Nothing here imports ``repro.server``; the dependency points one way.
"""

from repro.obs.audit import AuditProbe, shape_class
from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    Q_ERROR_BUCKETS,
    Counter,
    Exposition,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_expositions,
    parse_exposition,
    quantile_from_buckets,
)
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import NdjsonSink, RequestTrace, Span, new_trace_id

__all__ = [
    "LATENCY_BUCKETS_MS",
    "Q_ERROR_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Exposition",
    "parse_exposition",
    "merge_expositions",
    "quantile_from_buckets",
    "NdjsonSink",
    "RequestTrace",
    "Span",
    "new_trace_id",
    "AuditProbe",
    "shape_class",
    "Telemetry",
]
