"""Observability plane: metrics registry, request tracing, audit probe.

``repro.obs`` is the telemetry layer the serving stack (``repro.server``)
threads through every request:

* :mod:`repro.obs.metrics` — labelled counters/gauges/fixed-bucket
  histograms with Prometheus text exposition, parsing, and fleet-wide
  merging;
* :mod:`repro.obs.tracing` — per-request ``trace_id`` + span
  collection and the rotating NDJSON trace/slow-query sink;
* :mod:`repro.obs.audit` — the sampled WanderJoin ground-truth q-error
  probe (the accuracy sensor of ROADMAP item 5);
* :mod:`repro.obs.telemetry` — the per-process bundle tying the three
  together behind one on/off switch;
* :mod:`repro.obs.offline` — the same record/exposition contract for
  the batch jobs (``repro stats build``, ``repro updates ...``), plus
  the textfile-collector writer;
* :mod:`repro.obs.analyze` — the offline toolkit behind ``repro obs``:
  summarize / span profile / audit report / trace grep over the NDJSON
  logs either plane wrote.

Nothing here imports ``repro.server`` or the stats/delta planes; the
dependency points one way.
"""

from repro.obs.analyze import (
    audit_report,
    grep_trace,
    iter_records,
    load_records,
    span_profile,
    summarize,
)
from repro.obs.audit import AuditProbe, shape_class
from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    Q_ERROR_BUCKETS,
    Counter,
    Exposition,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_expositions,
    parse_exposition,
    quantile_from_buckets,
)
from repro.obs.offline import JobTelemetry, write_textfile
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import NdjsonSink, RequestTrace, Span, new_trace_id

__all__ = [
    "LATENCY_BUCKETS_MS",
    "Q_ERROR_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Exposition",
    "parse_exposition",
    "merge_expositions",
    "quantile_from_buckets",
    "NdjsonSink",
    "RequestTrace",
    "Span",
    "new_trace_id",
    "AuditProbe",
    "shape_class",
    "Telemetry",
    "JobTelemetry",
    "write_textfile",
    "iter_records",
    "load_records",
    "summarize",
    "span_profile",
    "audit_report",
    "grep_trace",
]
