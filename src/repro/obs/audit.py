"""Sampled q-error audit probe: live accuracy telemetry.

The serving stack reports *speed* for free, but ROADMAP item 5's
feedback loop needs *accuracy*: how far off are the estimates actually
being served?  :class:`AuditProbe` answers it at a configurable
sampling rate without touching the request path:

* the server calls :meth:`maybe_sample` after a served estimate — a
  coin flip plus a bounded, non-blocking queue put (overflow drops the
  sample and counts it, never blocks the event loop);
* a lazily-started daemon thread drains the queue, re-runs each sampled
  query against **WanderJoin** ground truth
  (:class:`repro.baselines.wanderjoin.WanderJoinEstimator`) on a
  graph-backed reference tenant, and publishes
  ``repro_audit_q_error{estimator, shape_class}`` histograms into the
  metrics registry (``shape_class`` = acyclic/cyclic × edge count, the
  axis item 5's per-shape estimator switch will pivot on).

The reference graph is resolved from the audited tenant's artifact
manifest (``dataset_name`` + build ``scale``) through
:func:`repro.datasets.presets.load_dataset`, so the probe needs no
extra configuration beyond a rate.  It is fork-safe the same way the
shared-memory plane is: the worker thread is keyed to the owning pid
and restarts lazily in a forked child.
"""

from __future__ import annotations

import os
import queue
import random
import sys
import threading
import time
from typing import Any, Callable

from repro.obs.metrics import Q_ERROR_BUCKETS, MetricsRegistry
from repro.obs.tracing import NdjsonSink

__all__ = ["AuditProbe", "shape_class"]


def shape_class(pattern: Any) -> str:
    """The (cyclicity, size) bucket of a query pattern."""
    from repro.query.shape import spanning_tree_and_closures

    _tree, closures = spanning_tree_and_closures(pattern)
    kind = "cyclic" if closures else "acyclic"
    return f"{kind}-{len(pattern.edges)}e"


class AuditProbe:
    """Background ground-truth auditing of served estimates."""

    def __init__(
        self,
        registry: MetricsRegistry,
        graph_loader: Callable[[str], Any],
        rate: float = 0.01,
        tenant: str | None = None,
        walk_ratio: float = 0.05,
        queue_limit: int = 256,
        seed: int = 0,
        pace_seconds: float = 0.05,
        sink: NdjsonSink | None = None,
    ):
        """``graph_loader(tenant)`` resolves the reference graph; it runs
        on the probe thread (it may parse datasets) and may raise.

        ``sink`` (optional, usually the server's trace-log sink) gets
        one ``type: "audit"`` NDJSON record per audited sample — the
        query, the shape class, every estimator's estimate, the
        WanderJoin ground truth and the resulting q-errors — so the
        offline ``repro obs audit`` analysis can show *which* queries
        the histograms' tail came from.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("audit rate must be within [0, 1]")
        self.rate = rate
        self.tenant = tenant
        self.walk_ratio = walk_ratio
        self.pace_seconds = pace_seconds
        self.sink = sink
        self._graph_loader = graph_loader
        self._rng = random.Random(seed)
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._owner_pid: int | None = None
        self._stop = threading.Event()
        self._estimators: dict[str, Any] = {}  # tenant -> WanderJoin
        self._disabled_tenants: set[str] = set()
        #: Enqueued vs fully-processed sample counts; ``drain()`` waits
        #: for them to meet, covering the dequeued-but-mid-audit window
        #: a bare queue.empty() check would miss.
        self._enqueued = 0
        self._processed = 0
        self.q_error = registry.histogram(
            "repro_audit_q_error",
            "Q-error of sampled served estimates vs WanderJoin ground "
            "truth.",
            Q_ERROR_BUCKETS,
            labels=("estimator", "shape_class"),
        )
        self.samples = registry.counter(
            "repro_audit_samples_total",
            "Served estimates audited against ground truth.",
            labels=("estimator",),
        )
        self.dropped = registry.counter(
            "repro_audit_dropped_total",
            "Audit samples dropped (queue full or probe errors).",
        )
        registry.gauge(
            "repro_audit_queue_depth",
            "Sampled estimates awaiting ground-truth replay.",
            callback=self._queue.qsize,
        )

    # ------------------------------------------------------------------
    # Request-path side (event loop; must never block)
    # ------------------------------------------------------------------
    def maybe_sample(
        self, tenant: str, query: str, estimates: dict[str, float]
    ) -> bool:
        """Coin-flip enqueue of one served estimate; returns sampled?"""
        if self.rate <= 0.0 or not estimates:
            return False
        if self.tenant is not None and tenant != self.tenant:
            return False
        if tenant in self._disabled_tenants:
            return False
        if self._rng.random() >= self.rate:
            return False
        try:
            self._queue.put_nowait((tenant, query, dict(estimates)))
        except queue.Full:
            self.dropped.inc()
            return False
        self._enqueued += 1
        self._ensure_thread()
        return True

    def _ensure_thread(self) -> None:
        pid = os.getpid()
        with self._lock:
            if self._thread is not None and self._owner_pid == pid:
                if self._thread.is_alive():
                    return
            # First sample in this process (or we are a forked child
            # holding the parent's dead thread handle): start fresh.
            self._owner_pid = pid
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._run, name="repro-audit", daemon=True
            )
            self._thread.start()

    def prewarm(self, tenant: str) -> bool:
        """Load ``tenant``'s reference graph now, on the caller's thread.

        The first audited sample otherwise pays the dataset parse and
        graph build mid-traffic — a long pure-Python stretch that
        contends with the serving loop for the GIL.  Deployments (and
        benchmarks) that know the audited tenant up front should pay it
        at startup instead.  Returns whether the tenant is auditable.
        """
        return self._truth_estimator(tenant) is not None

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the probe thread after draining queued samples."""
        with self._lock:
            thread = self._thread
            if thread is None or self._owner_pid != os.getpid():
                return
            self._stop.set()
        try:
            self._queue.put_nowait(None)  # wake the drain loop
        except queue.Full:
            pass
        thread.join(timeout)

    # ------------------------------------------------------------------
    # Probe-thread side
    # ------------------------------------------------------------------
    def _truth_estimator(self, tenant: str) -> Any | None:
        estimator = self._estimators.get(tenant)
        if estimator is not None:
            return estimator
        from repro.baselines.wanderjoin import WanderJoinEstimator

        try:
            graph = self._graph_loader(tenant)
        except Exception:
            # Non-graph-backed tenant (unknown dataset, scaled synth not
            # materialisable here): auditing it is impossible, stop
            # paying for the attempt.
            self._disabled_tenants.add(tenant)
            return None
        estimator = WanderJoinEstimator(graph, seed=0)
        self._estimators[tenant] = estimator
        return estimator

    def _audit_one(
        self, tenant: str, query: str, estimates: dict[str, float]
    ) -> None:
        from repro.experiments.metrics import q_error
        from repro.query.parser import parse_pattern

        estimator = self._truth_estimator(tenant)
        if estimator is None:
            self.dropped.inc()
            return
        pattern = parse_pattern(query)
        truth = estimator.estimate(pattern, ratio=self.walk_ratio)
        bucket = shape_class(pattern)
        errors: dict[str, float] = {}
        for name, value in sorted(estimates.items()):
            errors[name] = q_error(value, truth)
            self.q_error.observe(
                errors[name], estimator=name, shape_class=bucket
            )
            self.samples.inc(estimator=name)
        if self.sink is not None:
            self.sink.write(
                {
                    "type": "audit",
                    "ts": time.time(),
                    "pid": os.getpid(),
                    "tenant": tenant,
                    "query": query,
                    "shape_class": bucket,
                    "truth": truth,
                    "walk_ratio": self.walk_ratio,
                    "estimates": {
                        name: float(value)
                        for name, value in sorted(estimates.items())
                    },
                    "q_errors": errors,
                }
            )

    def _run(self) -> None:
        while not self._stop.is_set() or not self._queue.empty():
            try:
                item = self._queue.get(timeout=0.25)
            except queue.Empty:
                continue
            if item is None:
                continue
            # The replay (and the one-time reference-graph load) is
            # pure-Python CPU work.  At the interpreter's default 5 ms
            # switch interval a busy probe holds the GIL in 5 ms slices
            # and convoys the serving event loop; drop to 0.5 ms while
            # auditing so request handling preempts the probe quickly.
            previous = sys.getswitchinterval()
            sys.setswitchinterval(0.0005)
            try:
                self._audit_one(*item)
            except Exception:
                # A malformed sample must not kill the probe.
                self.dropped.inc()
            finally:
                sys.setswitchinterval(previous)
                self._processed += 1
            if self.pace_seconds > 0.0:
                # Spread audits out instead of replaying back to back;
                # sampling tolerates the queue overflowing under burst
                # (drops are counted), latency does not tolerate a
                # CPU-saturated sibling thread.
                self._stop.wait(self.pace_seconds)

    def drain(self, timeout: float = 10.0) -> None:
        """Block until queued samples are audited (tests/benchmarks)."""
        deadline = time.monotonic() + timeout
        while (
            self._processed < self._enqueued
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
