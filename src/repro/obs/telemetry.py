"""The per-process telemetry bundle the serving stack threads around.

One :class:`Telemetry` object owns the process's
:class:`~repro.obs.metrics.MetricsRegistry`, the optional trace-log
:class:`~repro.obs.tracing.NdjsonSink`, the slow-query threshold and
the optional :class:`~repro.obs.audit.AuditProbe`, plus the request
lifecycle glue: :meth:`begin` mints a :class:`RequestTrace` and
:meth:`finish` turns it into counters, stage histograms, a trace-log
line and — past the threshold — a slow-query record.

``enabled=False`` collapses every hook to a no-op (``begin`` returns
``None`` and the server skips the rest), which is the baseline leg of
``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from typing import Any

from repro.obs.metrics import LATENCY_BUCKETS_MS, MetricsRegistry
from repro.obs.tracing import NdjsonSink, RequestTrace

__all__ = ["Telemetry"]

#: Stage-duration histogram bounds (ms): finer than the request-latency
#: buckets at the microsecond end, where queue/cache-probe spans live.
STAGE_BUCKETS_MS = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 25, 50, 100, 250, 1000,
)


class Telemetry:
    """Metrics + tracing + slow-query capture for one serving process."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sink: NdjsonSink | None = None,
        slow_query_ms: float = 500.0,  # 0 disables the slow-query log
        audit: Any = None,
        enabled: bool = True,
        worker_index: int | None = None,
    ):
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink
        self.slow_query_ms = slow_query_ms
        self.audit = audit
        self.worker_index = worker_index
        self.requests_total = self.registry.counter(
            "repro_requests_total",
            "Requests dispatched, by verb ('_unparsed' counts undecodable "
            "lines).",
            labels=("verb",),
        )
        self.request_latency = self.registry.histogram(
            "repro_request_latency_ms",
            "End-to-end estimate latency per tenant, milliseconds.",
            LATENCY_BUCKETS_MS,
            labels=("tenant",),
        )
        self.stage_ms = self.registry.histogram(
            "repro_stage_ms",
            "Per-stage request time, milliseconds (span durations).",
            STAGE_BUCKETS_MS,
            labels=("stage",),
        )
        self.slow_queries = self.registry.counter(
            "repro_slow_queries_total",
            "Requests slower than the --slow-query-ms threshold.",
        )
        self.trace_records = self.registry.counter(
            "repro_trace_records_total",
            "Trace records written to the --trace-log sink.",
        )
        self.trace_dropped = self.registry.counter(
            "repro_trace_record_drops_total",
            "Trace records dropped (writer backlog or serialisation "
            "failure).",
        )
        # Trace records are serialised and written by a background
        # thread: json.dumps plus the sink's stat/write syscalls are
        # ~50-100us per request, which the serving event loop cannot
        # afford at high request rates.  The thread is pid-keyed (fork
        # safety, same scheme as the audit probe) and lazily started.
        self._queue: queue.Queue = queue.Queue(maxsize=4096)
        self._writer_lock = threading.Lock()
        self._writer: threading.Thread | None = None
        self._writer_pid: int | None = None
        self._writer_stop = threading.Event()
        self._enqueued = 0
        self._written = 0

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def begin(
        self, verb: str, tenant: str | None, trace_id: str | None = None
    ) -> RequestTrace | None:
        """A trace for one request, or None when telemetry is off."""
        if not self.enabled:
            return None
        return RequestTrace(verb, tenant, trace_id=trace_id)

    def finish(
        self, trace: RequestTrace | None, ok: bool, seconds: float
    ) -> None:
        """Close out one request: stage metrics, trace log, slow log."""
        if trace is None:
            return
        wall_ms = seconds * 1000.0
        for stage, ms in trace.stage_totals().items():
            self.stage_ms.observe(ms, stage=stage)
        # A threshold of 0 means "off", not "log every request".
        slow = self.slow_query_ms > 0 and wall_ms >= self.slow_query_ms
        if slow:
            self.slow_queries.inc()
        if self.sink is None:
            return
        extra: dict[str, Any] = {"ok": ok, "wall_ms": round(wall_ms, 4)}
        if self.worker_index is not None:
            extra["worker"] = self.worker_index
        # The trace is complete at this point (no span mutates after
        # dispatch returns), so it is safe to hand the object itself to
        # the writer thread and serialise there.
        try:
            self._queue.put_nowait((trace, extra, slow))
        except queue.Full:
            self.trace_dropped.inc()
            return
        self._enqueued += 1
        self._ensure_writer()

    # ------------------------------------------------------------------
    # Trace-record writer thread
    # ------------------------------------------------------------------
    def _ensure_writer(self) -> None:
        pid = os.getpid()
        with self._writer_lock:
            if self._writer is not None and self._writer_pid == pid:
                if self._writer.is_alive():
                    return
            # First record in this process, or a forked child holding
            # the parent's dead thread handle: start fresh.
            self._writer_pid = pid
            self._writer_stop = threading.Event()
            self._writer = threading.Thread(
                target=self._write_loop, name="repro-trace-writer",
                daemon=True,
            )
            self._writer.start()

    def _write_loop(self) -> None:
        stop = self._writer_stop
        while not stop.is_set() or not self._queue.empty():
            try:
                item = self._queue.get(timeout=0.25)
            except queue.Empty:
                continue
            if item is None:
                continue
            trace, extra, slow = item
            try:
                record = trace.record(**extra)
                self.sink.write(record)
                self.trace_records.inc()
                if slow:
                    record = dict(record)
                    record["type"] = "slow_query"
                    record["threshold_ms"] = self.slow_query_ms
                    self.sink.write(record)
            except Exception:
                # Telemetry must never take the process down.
                self.trace_dropped.inc()
            finally:
                self._written += 1

    def flush(self, timeout: float = 10.0) -> None:
        """Block until enqueued trace records hit the sink."""
        deadline = time.monotonic() + timeout
        while (
            self._written < self._enqueued
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)

    def close(self) -> None:
        if self.audit is not None:
            self.audit.stop()
        with self._writer_lock:
            thread = self._writer
            owner = self._writer_pid
            self._writer_stop.set()
        if thread is not None and owner == os.getpid():
            try:
                self._queue.put_nowait(None)  # wake the writer loop
            except queue.Full:
                pass
            thread.join(5.0)
        if self.sink is not None:
            self.sink.close()

    def describe(self) -> dict[str, Any]:
        """JSON-friendly switch state (for the stats verb)."""
        return {
            "enabled": self.enabled,
            "trace_log": str(self.sink.path) if self.sink else None,
            "slow_query_ms": self.slow_query_ms,
            "audit_rate": self.audit.rate if self.audit else 0.0,
            "pid": os.getpid(),
        }
