"""Offline-plane telemetry: batch jobs emit the server's record shape.

The serving tier threads a :class:`~repro.obs.telemetry.Telemetry`
through every request; the offline jobs — ``repro stats build``,
``repro updates apply``/``replay``, ``repro stats repack`` — thread a
:class:`JobTelemetry` through one *job*.  The contract is deliberately
identical: spans land in the same NDJSON record shape
(``type: "trace"``, ``trace_id``, ``verb``, ``spans: [...]``) so one
``repro obs`` toolkit analyses a trace log regardless of which plane
wrote it, and metrics land in the same
:class:`~repro.obs.metrics.MetricsRegistry` so the exposition format
is the one scrape dialect.

Batch jobs have no ``metrics`` wire verb to scrape, so ``--metrics-out``
writes the exposition as a *textfile-collector* file
(:func:`write_textfile`: atomic tmp+rename, the node-exporter pattern)
— a cron'd build is scrapeable without a server.

Nothing here imports the stats/delta planes; the dependency points one
way (``repro.stats``/``repro.delta`` → ``repro.obs``), exactly like the
server's.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NdjsonSink, RequestTrace

__all__ = ["JobTelemetry", "write_textfile"]


def write_textfile(path: str | Path, registry: MetricsRegistry) -> None:
    """Atomically write ``registry``'s exposition to ``path``.

    Written as ``<path>.tmp.<pid>`` then renamed, so a textfile
    collector scraping mid-write sees either the old exposition or the
    new one, never a torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(registry.render(), encoding="utf-8")
    os.replace(tmp, path)


class JobTelemetry:
    """Trace + metrics bundle for one offline job.

    ``trace`` is the job's :class:`RequestTrace` (the builders record
    per-level / per-generation spans on it), ``registry`` collects the
    job's metrics, and :meth:`finish` writes the NDJSON trace record
    and the textfile exposition.  Both outputs are optional — a job run
    without ``--trace-log``/``--metrics-out`` still carries the bundle
    (the spans double as the source of ``level timings`` style
    reporting) but writes nothing.
    """

    def __init__(
        self,
        verb: str,
        *,
        trace_log: str | Path | None = None,
        metrics_out: str | Path | None = None,
        trace_log_keep: int = 1,
        trace_log_max_bytes: int = 32 * 1024 * 1024,
        tenant: str | None = None,
        trace_id: str | None = None,
    ):
        self.registry = MetricsRegistry()
        self.sink = (
            NdjsonSink(
                trace_log, trace_log_max_bytes, keep=trace_log_keep
            )
            if trace_log
            else None
        )
        self.metrics_out = Path(metrics_out) if metrics_out else None
        self.trace = RequestTrace(verb, tenant=tenant, trace_id=trace_id)
        self._finished = False

    def finish(self, ok: bool = True, **extra: Any) -> None:
        """Write the trace record + exposition; safe to call once."""
        if self._finished:
            return
        self._finished = True
        wall_ms = (time.perf_counter() - self.trace.origin) * 1000.0
        if self.sink is not None:
            record = self.trace.record(
                ok=ok, wall_ms=round(wall_ms, 4), **extra
            )
            self.sink.write(record)
            self.sink.close()
        if self.metrics_out is not None:
            try:
                write_textfile(self.metrics_out, self.registry)
            except OSError:
                # Same contract as the serving plane: telemetry never
                # fails the job it observes.
                pass
