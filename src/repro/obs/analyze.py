"""Offline analysis over the observability plane's NDJSON logs.

Everything the serving tier and the offline jobs write — ``trace``,
``slow_query`` and ``audit`` records, one JSON object per line, across
however many fleet workers shared the ``--trace-log`` path — lands in
one file format, so one toolkit reads it back:

* :func:`summarize` — per-verb / per-tenant / per-shape request counts
  and p50/p95/p99 latency, plus the slow-query table.  Percentiles are
  computed by bucketing ``wall_ms`` into the *same*
  :data:`~repro.obs.metrics.LATENCY_BUCKETS_MS` the server's
  ``repro_request_latency_ms`` histogram uses and interpolating with
  :func:`~repro.obs.metrics.quantile_from_buckets` — the offline p99
  and the live histogram's p99 agree to within one bucket by
  construction.
* :func:`span_profile` — flamegraph-style accounting: self time per
  stage (a span's duration minus its children's), coalesce fan-in per
  leader span, and the top-K self-time offenders with their trace ids.
* :func:`audit_report` — the q-error distribution per
  estimator × shape class from the audit probe's records, with the
  worst examples (query, estimate, WanderJoin ground truth) named.
* :func:`grep_trace` — reassemble one request: every record carrying a
  trace id, plus follower traces whose ``coalesce`` spans reference it.

Log reading follows the sink's rotation scheme: for a path ``t.ndjson``
the chain ``t.ndjson.N`` … ``t.ndjson.1``, ``t.ndjson`` is read oldest
first.  Malformed lines (a torn write from a SIGKILL'd worker) are
counted and skipped, never fatal.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from collections import defaultdict
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    Q_ERROR_BUCKETS,
    quantile_from_buckets,
)

__all__ = [
    "iter_records",
    "load_records",
    "summarize",
    "span_profile",
    "audit_report",
    "grep_trace",
]


def _rotation_chain(path: Path) -> list[Path]:
    """One log path's rotation chain, oldest generation first."""
    backups: list[Path] = []
    generation = 1
    while True:
        candidate = path.with_name(f"{path.name}.{generation}")
        if not candidate.exists():
            break
        backups.append(candidate)
        generation += 1
    chain = list(reversed(backups))
    if path.exists():
        chain.append(path)
    return chain


def iter_records(
    paths: Iterable[str | Path], include_rotated: bool = True
) -> Iterator[dict[str, Any]]:
    """Parsed NDJSON records from ``paths`` (rotated backups included)."""
    for given in paths:
        given = Path(given)
        chain = _rotation_chain(given) if include_rotated else [given]
        for path in chain:
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail line from a killed writer
                if isinstance(record, dict):
                    yield record


def load_records(
    paths: Iterable[str | Path], include_rotated: bool = True
) -> list[dict[str, Any]]:
    return list(iter_records(paths, include_rotated))


def _bucket_counts(
    values: Iterable[float], bounds: tuple[float, ...]
) -> list[int]:
    counts = [0] * (len(bounds) + 1)
    for value in values:
        counts[bisect_left(bounds, value)] += 1
    return counts


def _latency_quantiles(values: list[float]) -> dict[str, float]:
    """p50/p95/p99 through the server's own bucket estimator."""
    counts = _bucket_counts(values, LATENCY_BUCKETS_MS)
    return {
        f"p{int(q * 100)}": round(
            quantile_from_buckets(LATENCY_BUCKETS_MS, counts, q), 4
        )
        for q in (0.50, 0.95, 0.99)
    }


def summarize(
    records: Iterable[dict[str, Any]], top: int = 10
) -> dict[str, Any]:
    """Request-level rollup: counts, latency quantiles, slow queries."""
    traces: list[dict[str, Any]] = []
    slow: list[dict[str, Any]] = []
    other = 0
    for record in records:
        kind = record.get("type")
        if kind == "trace":
            traces.append(record)
        elif kind == "slow_query":
            slow.append(record)
        else:
            other += 1
    by_verb: dict[str, list[float]] = defaultdict(list)
    by_tenant: dict[str, int] = defaultdict(int)
    by_shape: dict[str, int] = defaultdict(int)
    errors = 0
    for record in traces:
        wall = float(record.get("wall_ms", 0.0))
        by_verb[str(record.get("verb", "?"))].append(wall)
        tenant = record.get("tenant")
        if tenant:
            by_tenant[str(tenant)] += 1
        shape = record.get("shape")
        if shape:
            by_shape[str(shape)] += 1
        if not record.get("ok", True):
            errors += 1
    walls = [wall for group in by_verb.values() for wall in group]
    slow.sort(key=lambda r: -float(r.get("wall_ms", 0.0)))
    return {
        "traces": len(traces),
        "errors": errors,
        "other_records": other,
        "latency_ms": _latency_quantiles(walls),
        "verbs": {
            verb: {"count": len(group), **_latency_quantiles(group)}
            for verb, group in sorted(by_verb.items())
        },
        "tenants": dict(sorted(by_tenant.items())),
        "shapes": dict(
            sorted(by_shape.items(), key=lambda kv: -kv[1])[:top]
        ),
        "slow_queries": [
            {
                "trace_id": record.get("trace_id"),
                "verb": record.get("verb"),
                "tenant": record.get("tenant"),
                "wall_ms": record.get("wall_ms"),
                "threshold_ms": record.get("threshold_ms"),
            }
            for record in slow[:top]
        ],
    }


def span_profile(
    records: Iterable[dict[str, Any]], top: int = 10
) -> dict[str, Any]:
    """Flamegraph-style stage accounting across every trace record.

    A stage's *self* time is its span duration minus its children's
    (the ``exec`` span tiles over ``count``/``coalesce``, so exec self
    time is dispatch overhead, not estimator work); coalesce fan-in
    counts how many followers each leader span served.
    """
    self_ms: dict[str, float] = defaultdict(float)
    total_ms: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    fan_in: dict[str, int] = defaultdict(int)
    offenders: list[tuple[float, str, Any, Any]] = []
    for record in records:
        if record.get("type") != "trace":
            continue
        spans = record.get("spans") or []
        child_ms: dict[Any, float] = defaultdict(float)
        for span in spans:
            parent = span.get("parent")
            if parent is not None:
                child_ms[parent] += float(span.get("ms", 0.0))
        for span in spans:
            name = str(span.get("name", "?"))
            ms = float(span.get("ms", 0.0))
            own = max(ms - child_ms.get(span.get("span"), 0.0), 0.0)
            self_ms[name] += own
            total_ms[name] += ms
            counts[name] += 1
            shared = span.get("shared")
            if name == "coalesce" and shared:
                fan_in[str(shared)] += 1
            offenders.append(
                (own, name, record.get("trace_id"), span.get("span"))
            )
    offenders.sort(key=lambda item: -item[0])
    return {
        "stages": [
            {
                "stage": name,
                "count": counts[name],
                "total_ms": round(total_ms[name], 4),
                "self_ms": round(self_ms[name], 4),
                "mean_ms": round(total_ms[name] / counts[name], 4),
            }
            for name in sorted(self_ms, key=lambda n: -self_ms[n])
        ],
        "coalesce_fan_in": [
            {"leader_span": ref, "followers": n}
            for ref, n in sorted(fan_in.items(), key=lambda kv: -kv[1])[
                :top
            ]
        ],
        "top_offenders": [
            {
                "self_ms": round(own, 4),
                "stage": name,
                "trace_id": trace_id,
                "span": span_id,
            }
            for own, name, trace_id, span_id in offenders[:top]
        ],
    }


def audit_report(
    records: Iterable[dict[str, Any]], top: int = 10
) -> dict[str, Any]:
    """Q-error distribution per estimator × shape class, worst first."""
    samples = 0
    cells: dict[tuple[str, str], list[float]] = defaultdict(list)
    worst: list[tuple[float, str, dict[str, Any]]] = []
    for record in records:
        if record.get("type") != "audit":
            continue
        samples += 1
        shape = str(record.get("shape_class", "?"))
        for estimator, value in sorted(
            (record.get("q_errors") or {}).items()
        ):
            q = float(value)
            cells[(str(estimator), shape)].append(q)
            worst.append((q, str(estimator), record))
    worst.sort(key=lambda item: -item[0])
    table = []
    for (estimator, shape), values in sorted(cells.items()):
        counts = _bucket_counts(values, Q_ERROR_BUCKETS)
        finite = [value for value in values if value != float("inf")]
        table.append(
            {
                "estimator": estimator,
                "shape_class": shape,
                "count": len(values),
                "p50": round(
                    quantile_from_buckets(Q_ERROR_BUCKETS, counts, 0.50), 4
                ),
                "p95": round(
                    quantile_from_buckets(Q_ERROR_BUCKETS, counts, 0.95), 4
                ),
                "max": round(max(finite), 4) if finite else None,
                "infinite": len(values) - len(finite),
            }
        )
    return {
        "samples": samples,
        "cells": table,
        "worst": [
            {
                "q_error": value if value != float("inf") else "inf",
                "estimator": estimator,
                "shape_class": record.get("shape_class"),
                "query": record.get("query"),
                "estimate": (record.get("estimates") or {}).get(
                    estimator
                ),
                "truth": record.get("truth"),
                "tenant": record.get("tenant"),
            }
            for value, estimator, record in worst[:top]
        ],
    }


def grep_trace(
    records: Iterable[dict[str, Any]], trace_id: str
) -> dict[str, Any]:
    """Every record of one request, across workers and record types.

    Matches records carrying ``trace_id`` directly *and* follower
    traces whose ``coalesce`` spans reference one of its spans (the
    ``shared`` attribute is ``"<trace_id>:<span_id>"``), so a
    coalesced request's cross-trace attribution is reassembled too.
    """
    matched: list[dict[str, Any]] = []
    for record in records:
        if record.get("trace_id") == trace_id:
            matched.append(record)
            continue
        for span in record.get("spans") or []:
            shared = span.get("shared")
            if shared and str(shared).split(":", 1)[0] == trace_id:
                matched.append(record)
                break
    matched.sort(key=lambda record: float(record.get("ts", 0.0)))
    return {
        "trace_id": trace_id,
        "matches": len(matched),
        "pids": sorted(
            {
                int(record["pid"])
                for record in matched
                if isinstance(record.get("pid"), int)
            }
        ),
        "records": matched,
    }
