"""Structured request tracing: trace ids, spans, NDJSON sinks.

Every request the server dispatches gets a :class:`RequestTrace` — a
``trace_id`` (client-supplied via the wire envelope, or minted here)
plus a flat list of named spans measured against one shared
``perf_counter`` origin.  Spans either *tile* the request window
(top-level: ``store_lookup`` → ``cache_probe`` → ``queue`` → ``exec``)
or nest under a parent (``count``/``coalesce`` inside ``exec``), so

    sum(top-level span ms) ≈ wall_ms

holds by construction and a trace reader can attribute every
microsecond of a slow request to a stage.  A single-flight *follower*
does not fabricate a CEG-build span of its own: it records a
``coalesce`` wait span carrying the **leader's** span reference
(``shared`` = ``"<trace_id>:<span_id>"``), so cross-request attribution
survives coalescing.

Records are NDJSON lines written through :class:`NdjsonSink`: an
``O_APPEND`` fd (atomic line writes across the forked fleet workers
that share one ``--trace-log`` path), with size-based rotation keeping
``keep`` shifted backups (``<path>.1`` .. ``<path>.N``) and an inode
check so sibling processes notice a rotation performed by someone else
and reopen.
"""

from __future__ import annotations

import fcntl
import json
import os
import secrets
import threading
import time
from pathlib import Path
from typing import Any

__all__ = ["new_trace_id", "Span", "RequestTrace", "NdjsonSink"]


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (64 random bits)."""
    return secrets.token_hex(8)


class Span:
    """One named, timed stage of a request."""

    __slots__ = ("span_id", "name", "start_ms", "ms", "parent", "attrs")

    def __init__(
        self,
        span_id: str,
        name: str,
        start_ms: float,
        parent: str | None = None,
        **attrs: Any,
    ):
        self.span_id = span_id
        self.name = name
        self.start_ms = start_ms
        self.ms = 0.0
        self.parent = parent
        self.attrs = attrs

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "span": self.span_id,
            "name": self.name,
            "start_ms": round(self.start_ms, 4),
            "ms": round(self.ms, 4),
        }
        if self.parent is not None:
            record["parent"] = self.parent
        record.update(self.attrs)
        return record


class _SpanContext:
    """Context manager measuring one span against the trace origin."""

    __slots__ = ("trace", "span", "_t0")

    def __init__(self, trace: "RequestTrace", span: Span):
        self.trace = trace
        self.span = span
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        self.span.start_ms = (self._t0 - self.trace.origin) * 1000.0
        return self.span

    def __exit__(self, *exc_info: Any) -> None:
        self.span.ms = (time.perf_counter() - self._t0) * 1000.0


class RequestTrace:
    """Span collection for one request (thread-safe append)."""

    def __init__(
        self,
        verb: str,
        tenant: str | None = None,
        trace_id: str | None = None,
    ):
        self.trace_id = trace_id or new_trace_id()
        self.verb = verb
        self.tenant = tenant
        self.origin = time.perf_counter()
        self.started_unix = time.time()
        self.spans: list[Span] = []
        self.attrs: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._next = 0

    def span(self, name: str, parent: str | None = None, **attrs: Any):
        """``with trace.span("exec") as span:`` — measured on exit."""
        return _SpanContext(self, self._new_span(name, parent, **attrs))

    def _new_span(
        self, name: str, parent: str | None = None, **attrs: Any
    ) -> Span:
        with self._lock:
            self._next += 1
            span = Span(f"s{self._next}", name, 0.0, parent, **attrs)
            self.spans.append(span)
            return span

    def add_span(
        self,
        name: str,
        started_at: float,
        seconds: float,
        parent: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-measured span (``started_at`` from
        ``perf_counter``)."""
        span = self._new_span(name, parent, **attrs)
        span.start_ms = (started_at - self.origin) * 1000.0
        span.ms = seconds * 1000.0
        return span

    def ref(self, span: Span) -> str:
        """The cross-request reference of a span (followers carry it)."""
        return f"{self.trace_id}:{span.span_id}"

    def note(self, **attrs: Any) -> None:
        """Attach request-level attributes (shape, generation, ...)."""
        self.attrs.update(attrs)

    def stage_totals(self) -> dict[str, float]:
        """Total ms per span name (summed over repeated stages)."""
        totals: dict[str, float] = {}
        with self._lock:
            for span in self.spans:
                totals[span.name] = totals.get(span.name, 0.0) + span.ms
        return {name: round(ms, 4) for name, ms in totals.items()}

    def record(self, **extra: Any) -> dict[str, Any]:
        """The NDJSON trace record for this request."""
        with self._lock:
            spans = [span.as_dict() for span in self.spans]
        record: dict[str, Any] = {
            "type": "trace",
            "trace_id": self.trace_id,
            "verb": self.verb,
            "ts": self.started_unix,
            "pid": os.getpid(),
        }
        if self.tenant is not None:
            record["tenant"] = self.tenant
        record.update(self.attrs)
        record.update(extra)
        record["spans"] = spans
        return record


class NdjsonSink:
    """Append-only NDJSON file with size rotation, fork/fleet safe.

    Lines are written with one ``os.write`` on an ``O_APPEND`` fd, so
    records from N fleet workers sharing the path interleave whole, not
    torn.  When the file exceeds ``max_bytes`` the rotated generations
    shift up (``.N-1`` → ``.N``, ..., live file → ``.1``; the oldest of
    the ``keep`` backups is discarded) and a fresh file starts; sibling
    processes detect the rename via an inode check and reopen.
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = 32 * 1024 * 1024,
        keep: int = 1,
    ):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.keep = int(keep)
        self._lock = threading.Lock()
        self._fd: int | None = None

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(
            self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
        )

    def _reopen_if_rotated(self) -> None:
        assert self._fd is not None
        try:
            on_disk = os.stat(self.path)
        except FileNotFoundError:
            on_disk = None
        if on_disk is None or os.fstat(self._fd).st_ino != on_disk.st_ino:
            os.close(self._fd)
            self._fd = None
            self._open()

    def _rotate(self, pending: int) -> None:
        """Shift the backup chain up one slot and retire the live file.

        The shift is serialized across sibling processes with a sidecar
        ``flock``: exactly one sibling performs it per era.  Two
        interleaved shift loops would otherwise clobber generations —
        ``os.replace`` overwrites its target, so a racing ``.1`` → ``.2``
        lands on top of the ``.2`` the winner just populated and a whole
        file of records vanishes.  Losers re-check under the lock, see a
        fresh live inode (or one with room again), and skip; their
        reopen then lands on the new live file via the inode check.
        """
        lock_fd = os.open(
            f"{self.path}.lock", os.O_CREAT | os.O_WRONLY, 0o644
        )
        try:
            fcntl.flock(lock_fd, fcntl.LOCK_EX)
            assert self._fd is not None
            try:
                on_disk = os.stat(self.path)
            except FileNotFoundError:
                return  # a sibling rotated; reopen starts the new file
            if on_disk.st_ino != os.fstat(self._fd).st_ino:
                return  # a sibling already rotated this era
            if on_disk.st_size + pending <= self.max_bytes:
                return
            for generation in range(self.keep - 1, 0, -1):
                source = f"{self.path}.{generation}"
                if os.path.exists(source):
                    os.replace(source, f"{self.path}.{generation + 1}")
            os.replace(self.path, f"{self.path}.1")
        finally:
            os.close(lock_fd)

    def write(self, record: dict[str, Any]) -> None:
        """Append one record as a JSON line (never raises on I/O)."""
        line = (
            json.dumps(record, separators=(",", ":"), default=str) + "\n"
        ).encode("utf-8")
        try:
            with self._lock:
                if self._fd is None:
                    self._open()
                else:
                    self._reopen_if_rotated()
                assert self._fd is not None
                if os.fstat(self._fd).st_size + len(line) > self.max_bytes:
                    try:
                        self._rotate(len(line))
                    except OSError:
                        # Rotation failed (e.g. flock-less filesystem);
                        # fall through to the reopen and keep the record.
                        pass
                    self._reopen_if_rotated()
                os.write(self._fd, line)
        except OSError:
            # Telemetry must never fail a request; drop the record.
            pass

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None
