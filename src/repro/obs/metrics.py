"""Process-wide metrics registry with Prometheus text exposition.

Three primitives — :class:`Counter`, :class:`Gauge`, :class:`Histogram`
— registered by name in a :class:`MetricsRegistry` and labelled on use::

    registry = MetricsRegistry()
    requests = registry.counter(
        "repro_requests_total", "Requests by verb.", labels=("verb",)
    )
    requests.inc(verb="estimate")
    latency = registry.histogram(
        "repro_request_latency_ms", "Latency.", LATENCY_BUCKETS_MS,
        labels=("tenant",),
    )
    latency.observe(0.42, tenant="example")
    text = registry.render()          # Prometheus text exposition

Design points:

* **Hot-path cost is one dict lookup + one int add.**  Histogram bucket
  selection is ``bisect`` over the (sorted) bound tuple, not a linear
  scan — the fix the old ``_LatencyHistogram`` needed once sub-ms
  buckets landed.  No locks on increments: the serving stack mutates
  metrics from the event-loop thread, and Python int += is atomic
  enough for the worker-thread stage histograms (a lost increment under
  a torn race costs one sample, never a crash).
* **Callback metrics** export values owned elsewhere (the coalescer's
  counters, ``stats.store.parse_count``, the shared-plane
  publish/attach counts) without double accounting: the callback is
  polled at render time and returns either a scalar or a
  ``{label_values_tuple: value}`` map.
* **Quantiles from buckets**: :func:`quantile_from_buckets` linearly
  interpolates inside the bucket holding the target rank — the same
  estimate Prometheus's ``histogram_quantile`` computes server-side,
  available here for the ``stats`` verb's p50/p95/p99.
* :func:`parse_exposition` and :func:`merge_expositions` round-trip the
  text format so the fleet fan-out can aggregate per-worker scrapes by
  *summing* counters and histogram buckets (gauges are point-in-time
  per process and are dropped from merged output).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "quantile_from_buckets",
    "parse_exposition",
    "merge_expositions",
    "Exposition",
]

#: Latency histogram bucket upper bounds, in milliseconds.  Starts at
#: 0.1 ms so the warm fast path (fleet p50 ~0.3 ms) lands in a real
#: bucket instead of vanishing under the first bound.
LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
)

#: Q-error histogram bounds (q >= 1 by construction; +Inf catches the
#: zero-cardinality mismatches ``q_error`` maps to infinity).
Q_ERROR_BUCKETS = (1.1, 1.25, 1.5, 2, 3, 5, 10, 25, 100, 1000)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and newline only (quotes stay raw).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape_help(text: str) -> str:
    out: list[str] = []
    cursor = 0
    while cursor < len(text):
        char = text[cursor]
        if char == "\\" and cursor + 1 < len(text):
            nxt = text[cursor + 1]
            out.append({"n": "\n", "\\": "\\"}.get(nxt, "\\" + nxt))
            cursor += 2
        else:
            out.append(char)
            cursor += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _sample_line(
    name: str, labels: dict[str, str] | None, value: float
) -> str:
    if labels:
        body = ",".join(
            f'{key}="{_escape_label(str(val))}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Metric:
    """Shared plumbing: a named family with a fixed label schema."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: tuple[str, ...] = (),
        callback: Callable[[], Any] | None = None,
    ):
        self.name = name
        self.help = help_text
        self.labels = tuple(labels)
        self.callback = callback
        self._children: dict[tuple[str, ...], Any] = {}

    def _key(self, label_values: dict[str, Any]) -> tuple[str, ...]:
        if set(label_values) != set(self.labels):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labels}, "
                f"got {tuple(sorted(label_values))}"
            )
        return tuple(str(label_values[label]) for label in self.labels)

    def _callback_items(self) -> Iterable[tuple[tuple[str, ...], float]]:
        value = self.callback() if self.callback is not None else None
        if value is None:
            return []
        if isinstance(value, dict):
            return [
                (tuple(str(part) for part in key), float(val))
                if isinstance(key, tuple)
                else ((str(key),), float(val))
                for key, val in value.items()
            ]
        return [((), float(value))]

    def items(self) -> list[tuple[dict[str, str], float]]:
        """``(labels, value)`` pairs, callback-sourced values included."""
        out: list[tuple[dict[str, str], float]] = []
        for key, value in sorted(self._children.items()):
            out.append((dict(zip(self.labels, key)), float(value)))
        for key, value in sorted(self._callback_items()):
            out.append((dict(zip(self.labels, key)), value))
        return out

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for labels, value in self.items():
            lines.append(_sample_line(self.name, labels, value))
        return lines


class Counter(_Metric):
    """A monotonically increasing value (per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        self._children[key] = self._children.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return float(self._children.get(self._key(labels), 0))

    def total(self) -> float:
        """Sum over every label set (callback values included)."""
        return sum(value for _labels, value in self.items())


class Gauge(_Metric):
    """A point-in-time value (per label set)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._children[self._key(labels)] = value

    def value(self, **labels: Any) -> float:
        return float(self._children.get(self._key(labels), 0))


class _HistogramChild:
    __slots__ = ("counts", "sum", "max", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # trailing slot: +Inf
        self.sum = 0.0
        self.max = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket cumulative histogram (Prometheus ``le`` semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...],
        labels: tuple[str, ...] = (),
    ):
        super().__init__(name, help_text, labels)
        if tuple(sorted(buckets)) != tuple(buckets) or not buckets:
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets = tuple(float(bound) for bound in buckets)

    def child(self, **labels: Any) -> _HistogramChild:
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children.setdefault(
                key, _HistogramChild(len(self.buckets))
            )
        return child

    def get_child(self, **labels: Any) -> _HistogramChild | None:
        """The child for one label set, or None if never observed."""
        return self._children.get(self._key(labels))

    def observe(self, value: float, **labels: Any) -> None:
        child = self.child(**labels)
        child.counts[bisect_left(self.buckets, value)] += 1
        child.sum += value
        child.count += 1
        if value > child.max:
            child.max = value

    def labeled(self) -> list[tuple[dict[str, str], _HistogramChild]]:
        return [
            (dict(zip(self.labels, key)), child)
            for key, child in sorted(self._children.items())
        ]

    def items(self) -> list[tuple[dict[str, str], float]]:
        # For aggregate views (e.g. Counter.total-style sums) a
        # histogram's "value" is its observation count.
        return [
            (labels, float(child.count)) for labels, child in self.labeled()
        ]

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for labels, child in self.labeled():
            cumulative = 0
            for bound, count in zip(self.buckets, child.counts):
                cumulative += count
                lines.append(
                    _sample_line(
                        f"{self.name}_bucket",
                        {**labels, "le": _format_value(bound)},
                        cumulative,
                    )
                )
            lines.append(
                _sample_line(
                    f"{self.name}_bucket",
                    {**labels, "le": "+Inf"},
                    child.count,
                )
            )
            lines.append(
                _sample_line(f"{self.name}_sum", labels, child.sum)
            )
            lines.append(
                _sample_line(f"{self.name}_count", labels, child.count)
            )
        return lines


def quantile_from_buckets(
    bounds: tuple[float, ...], counts: list[int], q: float
) -> float:
    """Estimate the ``q``-quantile of a fixed-bucket histogram.

    ``counts`` holds per-bucket (non-cumulative) counts with a trailing
    overflow slot; interpolation is linear inside the winning bucket
    (the overflow bucket reports its lower bound — there is no upper
    edge to interpolate toward).
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    for position, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank:
            if position >= len(bounds):
                return float(bounds[-1])
            low = bounds[position - 1] if position > 0 else 0.0
            high = bounds[position]
            if count == 0:
                return float(high)
            fraction = (rank - previous) / count
            return float(low + (high - low) * fraction)
    return float(bounds[-1])


class MetricsRegistry:
    """Named metric families; renders the Prometheus text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric) or (
                    existing.labels != metric.labels
                ):
                    raise ValueError(
                        f"metric {metric.name!r} is already registered "
                        "with a different type or label schema"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self,
        name: str,
        help_text: str,
        labels: tuple[str, ...] = (),
        callback: Callable[[], Any] | None = None,
    ) -> Counter:
        return self._register(Counter(name, help_text, labels, callback))  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help_text: str,
        labels: tuple[str, ...] = (),
        callback: Callable[[], Any] | None = None,
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labels, callback))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...],
        labels: tuple[str, ...] = (),
    ) -> Histogram:
        return self._register(Histogram(name, help_text, buckets, labels))  # type: ignore[return-value]

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def render(self) -> str:
        """The registry as Prometheus text exposition (format 0.0.4)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Exposition parsing + fleet merge
# ----------------------------------------------------------------------
@dataclass
class Exposition:
    """A parsed text exposition: sample values keyed by (name, labels)."""

    types: dict[str, str] = field(default_factory=dict)
    helps: dict[str, str] = field(default_factory=dict)
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = field(
        default_factory=dict
    )

    def value(self, name: str, **labels: Any) -> float:
        key = (
            name,
            tuple(sorted((k, str(v)) for k, v in labels.items())),
        )
        return self.samples.get(key, 0.0)

    def family(self, name: str) -> dict[tuple[tuple[str, str], ...], float]:
        """Every sample of one metric name, keyed by its label tuple."""
        return {
            labels: value
            for (sample_name, labels), value in self.samples.items()
            if sample_name == name
        }


def _parse_labels(body: str) -> tuple[tuple[str, str], ...]:
    labels: list[tuple[str, str]] = []
    position = 0
    while position < len(body):
        equals = body.find("=", position)
        if equals < 0:
            raise ValueError(f"label without '=' in {body!r}")
        name = body[position:equals].strip().lstrip(",").strip()
        if not name:
            raise ValueError(f"empty label name in {body!r}")
        if equals + 1 >= len(body) or body[equals + 1] != '"':
            raise ValueError(f"unquoted label value in {body!r}")
        cursor = equals + 2
        value: list[str] = []
        while True:
            if cursor >= len(body):
                raise ValueError(f"unterminated label value in {body!r}")
            char = body[cursor]
            if char == '"':
                break
            if char == "\\":
                if cursor + 1 >= len(body):
                    raise ValueError(
                        f"dangling escape in label value in {body!r}"
                    )
                escaped = body[cursor + 1]
                # The three escapes the format defines decode; anything
                # else keeps its backslash (lossless for foreign input).
                value.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(
                        escaped, "\\" + escaped
                    )
                )
                cursor += 2
            else:
                value.append(char)
                cursor += 1
        labels.append((name, "".join(value)))
        position = cursor + 1
    return tuple(sorted(labels))


def parse_exposition(text: str) -> Exposition:
    """Parse Prometheus text exposition; raises ValueError on bad lines."""
    exposition = Exposition()
    # Expositions are "\n"-framed; splitlines() would also split on
    # \x1c-\x1e / \x85 / U+2028 inside label values and tear samples.
    for raw in text.split("\n"):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            exposition.helps[name] = _unescape_help(help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "untyped"):
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
            exposition.types[name] = kind
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            body, _, value_text = rest.rpartition("}")
            labels = _parse_labels(body)
            value_text = value_text.strip()
        else:
            name, _, value_text = line.partition(" ")
            labels = ()
        if not name or not value_text:
            raise ValueError(f"malformed sample line: {raw!r}")
        exposition.samples[(name, labels)] = float(value_text)
    return exposition


def _family_of(sample_name: str, types: dict[str, str]) -> str:
    """Map ``name_bucket``/``_sum``/``_count`` back to their family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            family = sample_name[: -len(suffix)]
            if types.get(family) == "histogram":
                return family
    return sample_name


def merge_expositions(texts: Iterable[str]) -> str:
    """Sum counters and histograms across per-worker expositions.

    Gauges are per-process point-in-time readings with no meaningful
    fleet-wide sum (a worker's queue depth, a generation age), so the
    merged output carries counters and histograms only; scrape the
    per-worker slots for gauges.

    A name registered with *different* types across expositions (one
    worker's counter is another's gauge — a version skew) keeps the
    first summable type seen; samples from expositions that disagree
    are skipped rather than summed into the wrong family.
    """
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    merged: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    order: list[tuple[str, tuple[tuple[str, str], ...]]] = []
    for text in texts:
        exposition = parse_exposition(text)
        for name, kind in exposition.types.items():
            if kind in ("counter", "histogram"):
                types.setdefault(name, kind)
        for name, help_text in exposition.helps.items():
            helps.setdefault(name, help_text)
        for key, value in exposition.samples.items():
            family = _family_of(key[0], exposition.types)
            kind = exposition.types.get(family)
            if kind not in ("counter", "histogram"):
                continue
            if types.get(family) != kind:
                continue  # first summable type won; skip the dissenter
            if key not in merged:
                merged[key] = 0.0
                order.append(key)
            merged[key] += value
    lines: list[str] = []
    seen_families: set[str] = set()
    for name, labels in sorted(order):
        family = _family_of(name, types)
        if family not in seen_families:
            seen_families.add(family)
            if family in helps:
                lines.append(
                    f"# HELP {family} {_escape_help(helps[family])}"
                )
            lines.append(f"# TYPE {family} {types.get(family, 'untyped')}")
        lines.append(
            _sample_line(name, dict(labels), merged[(name, labels)])
        )
    return "\n".join(lines) + "\n" if lines else ""
