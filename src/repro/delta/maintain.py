"""Incremental statistics maintenance for mutating graphs.

:func:`apply_updates` is the dynamic-graph subsystem's engine: given a
graph-attached :class:`~repro.stats.store.StatisticsStore` and one
:class:`~repro.delta.updates.UpdateBatch`, it seals the batch into a new
graph generation and patches every catalog so the store is exactly what
:func:`~repro.stats.build.build_statistics` would produce cold on the
mutated graph — without rebuilding from scratch:

* **Markov counts** move by the delta-join identity of
  :mod:`repro.delta.counting`: only patterns over touched labels are
  visited, and each is recounted by joining outward from the (tiny)
  insert/delete relations.  Complete artifacts additionally *discover*
  newly non-empty patterns around the inserts and drop patterns whose
  count reached zero (cold enumeration never stores zeros).
* **Degree relations** are rebuilt only for shapes whose match support
  actually changed (the seeded joins double as exact change detectors);
  untouched relations are carried over byte-identically.
* **Cycle rates** are resampled and **entropy** irregularities
  recomputed for touched shapes; **baseline summaries** (CS, SumRDF)
  are whole-graph passes and rebuilt outright.  The *staleness ledger*
  records which catalogs are exact vs merely refreshed.

When the effective update volume crosses ``compact_threshold`` of the
graph, incremental bookkeeping stops paying for itself and
:func:`apply_updates` falls back to a cold rebuild that also *compacts*
the artifact (base files rewritten, earlier deltas folded in).
:func:`replay_graph` re-derives the mutated graph from the base dataset
plus the recorded update logs; :func:`compact_artifact` folds a delta
chain into the base files without recounting anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING

from repro.baselines.characteristic_sets import CharacteristicSetsEstimator
from repro.baselines.sumrdf import SumRdfEstimator
from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.degrees import StatRelation, materialise_table
from repro.catalog.entropy import EntropyCatalog
from repro.delta.counting import (
    delta_count_with_touch,
    discover_new_patterns,
    pattern_from_key,
)
from repro.delta.deltafile import (
    DELTA_FORMAT_VERSION,
    encode_keys,
    read_delta,
    write_delta,
)
from repro.delta.overlay import MutableGraphOverlay
from repro.delta.updates import UpdateBatch
from repro.engine.counter import count_pattern
from repro.errors import DatasetError, PlanningError, ReproError
from repro.graph.digraph import LabeledDiGraph
from repro.obs.offline import JobTelemetry
from repro.stats.artifact import (
    StoreManifest,
    dataset_fingerprint,
    delta_file_name,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stats.store import StatisticsStore

__all__ = [
    "MaintenanceOutcome",
    "config_from_manifest",
    "apply_updates",
    "replay_graph",
    "compact_artifact",
]


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _lineage_age_seconds(applied_at: str | None) -> float | None:
    """Seconds since an ISO ``applied_at`` lineage stamp (None if absent)."""
    if not applied_at:
        return None
    try:
        then = datetime.fromisoformat(applied_at)
    except ValueError:
        return None
    if then.tzinfo is None:
        then = then.replace(tzinfo=timezone.utc)
    return max((datetime.now(timezone.utc) - then).total_seconds(), 0.0)


def _observe_apply(
    telemetry: JobTelemetry | None,
    outcome: MaintenanceOutcome,
    previous_applied_at: str | None,
) -> None:
    """Record one apply's IVM-vs-rebuild decision and lineage freshness."""
    if telemetry is None:
        return
    registry = telemetry.registry
    registry.counter(
        "repro_delta_applies_total",
        "Update-batch applies by maintenance decision "
        "(incremental = IVM, compacted = cold rebuild, noop = empty batch).",
        labels=("mode",),
    ).inc(mode=outcome.mode)
    if outcome.mode == "compacted":
        registry.counter(
            "repro_delta_compactions_total",
            "Applies that fell back to a compacting cold rebuild.",
        ).inc()
    if "compaction" in outcome.ledger:
        registry.counter(
            "repro_delta_compactions_skipped_total",
            "Threshold-crossing applies kept incremental because a "
            "workload-free rebuild cannot reproduce the catalogs.",
        ).inc()
    age = _lineage_age_seconds(previous_applied_at)
    if age is not None:
        registry.gauge(
            "repro_delta_lineage_age_seconds",
            "Age of the previous delta generation when this apply landed "
            "(staleness of the lineage between updates).",
        ).set(round(age, 3))
    telemetry.registry.gauge(
        "repro_delta_generation",
        "Artifact generation after the apply.",
    ).set(outcome.generation)
    telemetry.trace.note(
        mode=outcome.mode,
        generation=outcome.generation,
        inserts=outcome.inserts,
        deletes=outcome.deletes,
    )


@dataclass
class MaintenanceOutcome:
    """What one :func:`apply_updates` call did, for operators and tests."""

    mode: str  # "incremental" | "compacted" | "noop"
    generation: int
    parent_fingerprint: str
    fingerprint: str
    requested: int
    inserts: int
    deletes: int
    markov: dict = field(default_factory=dict)
    degrees: dict = field(default_factory=dict)
    ledger: dict = field(default_factory=dict)
    seconds: float = 0.0
    delta_file: str | None = None
    #: Catalog patch payloads destined for the delta file (internal).
    patches: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly form (the ``repro updates apply`` report)."""
        return {
            "mode": self.mode,
            "generation": self.generation,
            "parent_fingerprint": self.parent_fingerprint,
            "fingerprint": self.fingerprint,
            "requested": self.requested,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "markov": dict(self.markov),
            "degrees": dict(self.degrees),
            "ledger": dict(self.ledger),
            "seconds": self.seconds,
            "delta_file": self.delta_file,
        }


def _subgraph(
    triples: frozenset[tuple[int, int, str]], num_vertices: int
) -> LabeledDiGraph | None:
    """A graph holding only the given triples (None when empty)."""
    if not triples:
        return None
    return LabeledDiGraph.from_triples(triples, num_vertices=num_vertices)


def _cold_count(
    graph: LabeledDiGraph, pattern, max_rows: int | None
) -> tuple[float, object | None]:
    """Exact count on ``graph`` plus the match table when it fits."""
    try:
        table = materialise_table(graph, pattern, max_rows)
    except PlanningError:
        return float(count_pattern(graph, pattern)), None
    return float(table.rows.shape[0]), table


def _resample_cycle_rates(
    old: CycleClosingRates, graph: LabeledDiGraph
) -> CycleClosingRates:
    """A fresh rate table covering the old table's specs, sampled anew.

    Walks traverse arbitrary labels, so *any* graph change can shift any
    rate; re-sampling every stored spec in sorted-key order (one fresh
    RNG stream) keeps the table deterministic given the artifact, though
    not bit-identical to a cold workload-order rebuild — the ledger says
    so.
    """
    fresh = CycleClosingRates(graph, seed=old.seed, samples=old.samples)
    for key in sorted(old._cache):
        first, last, closing, directions, closing_forward = key
        assert fresh._sampler is not None
        closed, completed = fresh._sampler.random_walk_closure(
            first_label=first,
            last_label=last,
            closing_label=closing,
            directions=directions,
            closing_forward=closing_forward,
            samples=fresh.samples,
        )
        if completed == 0:
            rate: float | None = None
        elif closed == 0:
            rate = 0.5 / completed
        else:
            rate = closed / completed
        fresh._cache[key] = rate
    return fresh


def _recompute_entropy(
    old: EntropyCatalog,
    graph: LabeledDiGraph,
    touched: frozenset[str],
) -> tuple[EntropyCatalog, list[dict]]:
    """Entropy catalog for the new graph; touched shapes recomputed.

    Entries are keyed by canonical pattern key + canonical variable
    names (see :mod:`repro.catalog.entropy`), so every stored entry is
    recomputable from its key alone.
    """
    fresh = EntropyCatalog(graph, max_rows=old.max_rows)
    patched: list[dict] = []
    for (pattern_key, variables), value in sorted(old._cache.items()):
        labels = {label for _, _, label in pattern_key}
        if labels & touched:
            value = fresh._compute(
                pattern_from_key(pattern_key), frozenset(variables)
            )
            patched.append(
                {
                    "key": [list(atom) for atom in pattern_key],
                    "vars": list(variables),
                    "value": value,
                }
            )
        fresh._cache[(pattern_key, variables)] = value
    return fresh, patched


def config_from_manifest(manifest: StoreManifest):
    """Reconstruct the build configuration an artifact records."""
    from repro.stats.build import StatsBuildConfig

    known = StatsBuildConfig.__dataclass_fields__
    kwargs = {
        key: value
        for key, value in manifest.build_config.items()
        if key in known
    }
    return StatsBuildConfig(**kwargs)


def apply_updates(
    store: "StatisticsStore",
    batch: UpdateBatch,
    directory: str | Path | None = None,
    compact_threshold: float = 0.2,
    telemetry: JobTelemetry | None = None,
) -> MaintenanceOutcome:
    """Apply one update generation to a graph-attached store, in place.

    Patches every catalog to exactly the cold-rebuild state on the
    mutated graph (or falls back to an actual cold rebuild past
    ``compact_threshold``), swaps ``store.graph`` to the new generation
    and, when ``directory`` is given, appends the versioned
    ``deltas/NNNN.json`` patch file and rewrites the manifest lineage.

    ``telemetry`` (optional) records the apply as an offline-plane
    trace — a ``maintain`` span (the IVM / cold-rebuild work), a
    ``persist`` span (patch file + manifest I/O), decision counters and
    a lineage-age gauge — without perturbing the outcome or any
    artifact bytes.
    """
    if store.graph is None:
        raise DatasetError(
            "delta maintenance needs the base graph attached; load the "
            "store with StatisticsStore.load(dir, graph=...)"
        )
    if store.markov.count_budget is not None:
        raise DatasetError(
            "delta maintenance does not support budgeted Markov tables "
            "(stored counts may be missing); rebuild the artifact instead"
        )
    started = time.perf_counter()
    previous_applied_at = store.manifest.last_delta_at
    # Maintenance diffs and mutates the catalog caches directly; fold
    # any flat array backing in first so deletions actually delete.
    store.markov.materialize()
    store.degrees.materialize()
    old_graph = store.graph
    overlay = MutableGraphOverlay(old_graph)
    overlay.apply_batch(batch)
    parent_fingerprint = store.manifest.dataset_fingerprint
    if not overlay.pending:
        outcome = MaintenanceOutcome(
            mode="noop",
            generation=store.manifest.generation,
            parent_fingerprint=parent_fingerprint,
            fingerprint=parent_fingerprint,
            requested=len(batch),
            inserts=0,
            deletes=0,
            seconds=time.perf_counter() - started,
        )
        _observe_apply(telemetry, outcome, previous_applied_at)
        return outcome
    inserts = overlay.pending_inserts
    deletes = overlay.pending_deletes
    new_graph = overlay.materialize()
    fingerprint = dataset_fingerprint(new_graph)
    generation = store.manifest.generation + 1
    outcome = MaintenanceOutcome(
        mode="incremental",
        generation=generation,
        parent_fingerprint=parent_fingerprint,
        fingerprint=fingerprint,
        requested=len(batch),
        inserts=len(inserts),
        deletes=len(deletes),
    )

    # A threshold-crossing batch falls back to a cold rebuild — but only
    # when a workload-free rebuild can actually reproduce every catalog:
    # cycle rates and entropy are primed from a workload the artifact
    # does not record, and an incomplete Markov table means absence is
    # not emptiness.  Such artifacts stay on the incremental path and
    # the ledger says why, so --compact-threshold is never silently inert.
    compactable = (
        store.markov.complete
        and store.cycle_rates is None
        and store.entropy is None
    )
    over_threshold = (
        overlay.pending > compact_threshold * max(new_graph.num_edges, 1)
    )
    maintain_began = time.perf_counter()
    if compactable and over_threshold:
        _rebuild_cold(store, new_graph, outcome)
    else:
        _maintain_incremental(
            store, old_graph, new_graph, overlay, outcome
        )
        if over_threshold:
            outcome.ledger["compaction"] = (
                "skipped despite crossing compact_threshold: the artifact "
                "holds workload-primed catalogs (cycle rates/entropy) or "
                "an incomplete Markov table that a workload-free cold "
                "rebuild cannot reproduce"
            )
    if telemetry is not None:
        telemetry.trace.add_span(
            "maintain",
            maintain_began,
            time.perf_counter() - maintain_began,
            generation=generation,
            mode=outcome.mode,
            inserts=len(inserts),
            deletes=len(deletes),
        )

    store.graph = new_graph
    store.markov.graph = new_graph if store.markov.graph is not None else None
    store.degrees.graph = (
        new_graph if store.degrees.graph is not None else None
    )
    applied_at = _utc_now()
    manifest = store.manifest
    manifest.dataset_fingerprint = fingerprint
    manifest.graph_summary = new_graph.summary()
    manifest.generation = generation
    manifest.last_delta_at = applied_at
    manifest.complete = store.markov.complete and store.degrees.complete
    lineage = {
        # In-memory applies (directory=None) persist no patch file; the
        # entry still records the fingerprint chain, and the generation
        # is marked compacted so a later store.save() yields an artifact
        # whose base files already contain the patches and whose load
        # replays nothing.
        "file": delta_file_name(generation) if directory is not None else None,
        "generation": generation,
        "parent_fingerprint": parent_fingerprint,
        "fingerprint": fingerprint,
        "applied_at": applied_at,
        "inserts": len(inserts),
        "deletes": len(deletes),
        "compacted": outcome.mode == "compacted" or directory is None,
    }
    manifest.deltas.append(lineage)
    if outcome.mode == "compacted" or directory is None:
        manifest.compacted_generation = generation

    persist_began = time.perf_counter()
    if directory is not None:
        directory = Path(directory)
        payload = {
            "format_version": DELTA_FORMAT_VERSION,
            "kind": "statistics_delta",
            "generation": generation,
            "parent_fingerprint": parent_fingerprint,
            "fingerprint": fingerprint,
            "applied_at": applied_at,
            "updates": batch.to_rows(),
            "graph_summary": new_graph.summary(),
            "labels": list(new_graph.labels),
            "compacted": outcome.mode == "compacted",
            "staleness": dict(outcome.ledger),
            "markov": outcome.patches.get(
                "markov", {"set": [], "delete": [], "complete": store.markov.complete}
            ),
            "degrees": outcome.patches.get(
                "degrees",
                {"set": [], "delete": [], "complete": store.degrees.complete},
            ),
        }
        if "entropy" in outcome.patches:
            payload["entropy"] = outcome.patches["entropy"]
        if "cycle_rates" in outcome.patches:
            payload["cycle_rates"] = outcome.patches["cycle_rates"]
        if "characteristic_sets" in outcome.patches:
            payload["characteristic_sets"] = outcome.patches[
                "characteristic_sets"
            ]
        sumrdf = (
            store.sumrdf if "sumrdf" in outcome.patches else None
        )
        path = write_delta(directory, payload, sumrdf=sumrdf)
        outcome.delta_file = str(path.relative_to(directory))
        if outcome.mode == "compacted":
            # The base catalog files themselves are superseded: rewrite
            # them so loads replay nothing and still land on this
            # generation's catalogs.
            store.save(directory)
        else:
            manifest.save(directory)
        if telemetry is not None:
            telemetry.trace.add_span(
                "persist",
                persist_began,
                time.perf_counter() - persist_began,
                generation=generation,
                file=outcome.delta_file,
            )
    outcome.seconds = time.perf_counter() - started
    _observe_apply(telemetry, outcome, previous_applied_at)
    return outcome


def _maintain_incremental(
    store: "StatisticsStore",
    old_graph: LabeledDiGraph,
    new_graph: LabeledDiGraph,
    overlay: MutableGraphOverlay,
    outcome: MaintenanceOutcome,
) -> None:
    """The incremental path: patch catalogs key by key."""
    touched = overlay.touched_labels()
    n = new_graph.num_vertices
    insert_graph = _subgraph(overlay.pending_inserts, n)
    delete_graph = _subgraph(overlay.pending_deletes, n)
    h = store.markov.h
    molp_h = store.degrees.h
    h_enum = max(h, molp_h)
    max_rows = store.degrees.max_rows
    complete = store.markov.complete

    markov_set: dict[tuple, float] = {}
    markov_delete: list[tuple] = []
    degrees_set: dict[tuple, StatRelation] = {}
    degrees_delete: list[tuple] = []
    counters = {
        "updated": 0,
        "added": 0,
        "removed": 0,
        "unchanged_support": 0,
        "skipped_untouched": 0,
        "recounted_cold": 0,
    }
    degree_counters = {"rebuilt": 0, "removed": 0, "added": 0, "kept": 0}

    stored_keys = set(store.markov._cache) | set(store.degrees._cache)
    for key in sorted(stored_keys):
        if not {label for _, _, label in key} & touched:
            counters["skipped_untouched"] += 1
            if key in store.degrees._cache:
                degree_counters["kept"] += 1
            continue
        pattern = pattern_from_key(key)
        old_count = store.markov._cache.get(key)
        if old_count is None:
            old_count = store.degrees._cache[key].cardinality
        table = None
        try:
            delta, support_changed = delta_count_with_touch(
                pattern,
                old_graph,
                new_graph,
                insert_graph,
                delete_graph,
                max_rows=max_rows,
            )
            new_count = old_count + delta
        except ReproError:
            counters["recounted_cold"] += 1
            new_count, table = _cold_count(new_graph, pattern, max_rows)
            support_changed = True
        if complete and new_count == 0.0:
            counters["removed"] += 1
            if key in store.markov._cache:
                markov_delete.append(key)
            if key in store.degrees._cache:
                degrees_delete.append(key)
                degree_counters["removed"] += 1
            continue
        if key in store.markov._cache and new_count != old_count:
            markov_set[key] = new_count
            counters["updated"] += 1
        elif not support_changed:
            counters["unchanged_support"] += 1
        if key in store.degrees._cache:
            if support_changed:
                if table is None:
                    table = materialise_table(new_graph, pattern, max_rows)
                degrees_set[key] = StatRelation.from_table(
                    pattern, table, n
                )
                degree_counters["rebuilt"] += 1
            else:
                degree_counters["kept"] += 1

    if complete and insert_graph is not None:
        candidates = discover_new_patterns(
            new_graph, insert_graph, h_enum, known=stored_keys,
            max_rows=max_rows,
        )
        for key in sorted(candidates):
            pattern = pattern_from_key(key)
            count, table = _cold_count(new_graph, pattern, max_rows)
            if count == 0.0:
                continue
            if len(key) <= h:
                markov_set[key] = count
                counters["added"] += 1
            if len(key) <= molp_h:
                if table is None:
                    # Count known but the table overflowed: mirror the
                    # cold builder, which marks the degree catalog
                    # incomplete rather than storing a partial relation.
                    store.degrees.complete = False
                else:
                    degrees_set[key] = StatRelation.from_table(
                        pattern, table, n
                    )
                    degree_counters["added"] += 1

    for key, count in markov_set.items():
        store.markov._cache[key] = count
    for key in markov_delete:
        store.markov._cache.pop(key, None)
    store.markov.labels = new_graph.labels
    for key, relation in degrees_set.items():
        store.degrees._cache[key] = relation
    for key in degrees_delete:
        store.degrees._cache.pop(key, None)

    outcome.markov = counters
    outcome.degrees = degree_counters
    ledger = {"markov": "exact", "degrees": "exact"}
    patches: dict = {
        "markov": {
            "set": [
                {"key": [list(atom) for atom in key], "count": count}
                for key, count in sorted(markov_set.items())
            ],
            "delete": encode_keys(markov_delete),
            "complete": store.markov.complete,
        },
        "degrees": {
            "set": [
                relation.to_artifact()
                for _, relation in sorted(degrees_set.items())
            ],
            "delete": encode_keys(degrees_delete),
            "complete": store.degrees.complete,
        },
    }

    if store.entropy is not None:
        store.entropy, entropy_patch = _recompute_entropy(
            store.entropy, new_graph, touched
        )
        patches["entropy"] = {"set": entropy_patch}
        ledger["entropy"] = (
            f"recomputed {len(entropy_patch)} touched-shape entries"
        )
    if store.cycle_rates is not None:
        store.cycle_rates = _resample_cycle_rates(
            store.cycle_rates, new_graph
        )
        patches["cycle_rates"] = {
            "replace": store.cycle_rates.to_artifact()
        }
        ledger["cycle_rates"] = (
            "resampled on the new graph (statistically equivalent, not "
            "RNG-stream-identical to a cold workload-order rebuild)"
        )
    if store.characteristic_sets is not None:
        store.characteristic_sets = CharacteristicSetsEstimator(new_graph)
        patches["characteristic_sets"] = {
            "replace": store.characteristic_sets.to_artifact()
        }
        ledger["characteristic_sets"] = "rebuilt (single whole-graph pass)"
    if store.sumrdf is not None:
        build_config = store.manifest.build_config
        store.sumrdf = SumRdfEstimator(
            new_graph,
            num_buckets=store.sumrdf.num_buckets,
            seed=int(build_config.get("sumrdf_seed", 0)),
        )
        patches["sumrdf"] = True
        ledger["sumrdf"] = (
            "rebuilt (bucketing hashes label signatures per process)"
        )
    outcome.ledger = ledger
    outcome.patches = patches


def _rebuild_cold(
    store: "StatisticsStore",
    new_graph: LabeledDiGraph,
    outcome: MaintenanceOutcome,
) -> None:
    """The compaction path: a cold rebuild replacing every catalog."""
    from repro.stats.build import build_statistics

    config = config_from_manifest(store.manifest)
    built = build_statistics(
        new_graph,
        config,
        workload=None,
        dataset_name=store.manifest.dataset_name,
    )
    store.markov = built.markov
    store.degrees = built.degrees
    if store.characteristic_sets is not None:
        store.characteristic_sets = (
            built.characteristic_sets
            or CharacteristicSetsEstimator(new_graph)
        )
    if store.sumrdf is not None:
        store.sumrdf = built.sumrdf or SumRdfEstimator(
            new_graph,
            num_buckets=store.sumrdf.num_buckets,
            seed=int(store.manifest.build_config.get("sumrdf_seed", 0)),
        )
    outcome.mode = "compacted"
    outcome.markov = {"rebuilt_entries": store.markov.num_entries}
    outcome.degrees = {"rebuilt_entries": store.degrees.num_entries}
    outcome.ledger = {
        "markov": "rebuilt cold (update volume crossed the compaction "
        "threshold)",
        "degrees": "rebuilt cold",
    }
    outcome.patches = {}


def replay_graph(
    base_graph: LabeledDiGraph,
    directory: str | Path,
    telemetry: JobTelemetry | None = None,
) -> LabeledDiGraph:
    """Re-derive an artifact's current graph from its base dataset.

    Verifies the whole lineage: the base graph must fingerprint to the
    manifest's ``base_fingerprint``, every delta's parent must chain,
    and the final graph must land on ``dataset_fingerprint``.  With
    ``telemetry``, each generation's re-derivation lands as a
    ``generation`` span (update count + fingerprint attrs).
    """
    directory = Path(directory)
    manifest = StoreManifest.load(directory)
    fingerprint = dataset_fingerprint(base_graph)
    if fingerprint != manifest.base_fingerprint:
        raise DatasetError(
            f"base graph fingerprint {fingerprint} does not match the "
            f"artifact's base_fingerprint {manifest.base_fingerprint}"
        )
    graph = base_graph
    for entry in sorted(manifest.deltas, key=lambda e: e.get("generation", 0)):
        if entry.get("parent_fingerprint") != fingerprint:
            raise DatasetError(
                f"broken delta lineage at generation "
                f"{entry.get('generation')}: parent fingerprint "
                f"{entry.get('parent_fingerprint')} != {fingerprint}"
            )
        if not entry.get("file"):
            raise DatasetError(
                f"generation {entry.get('generation')} was applied "
                "in-memory and has no persisted update log; the graph "
                "cannot be re-derived from the base dataset"
            )
        began = time.perf_counter()
        payload = read_delta(directory, str(entry["file"]))
        overlay = MutableGraphOverlay(graph)
        batch = UpdateBatch.from_payload(payload["updates"])
        overlay.apply_batch(batch)
        graph = overlay.materialize()
        fingerprint = dataset_fingerprint(graph)
        if fingerprint != entry.get("fingerprint"):
            raise DatasetError(
                f"replaying generation {entry.get('generation')} produced "
                f"fingerprint {fingerprint}, expected "
                f"{entry.get('fingerprint')}"
            )
        if telemetry is not None:
            telemetry.trace.add_span(
                "generation",
                began,
                time.perf_counter() - began,
                generation=int(entry.get("generation", 0)),
                updates=len(batch),
                edges=graph.num_edges,
            )
            telemetry.registry.counter(
                "repro_delta_replayed_generations_total",
                "Delta generations re-derived during graph replay.",
            ).inc()
    if fingerprint != manifest.dataset_fingerprint:
        raise DatasetError(
            f"replayed graph fingerprint {fingerprint} does not match the "
            f"manifest's current {manifest.dataset_fingerprint}"
        )
    return graph


def compact_artifact(
    directory: str | Path, graph: LabeledDiGraph | None = None
) -> dict:
    """Fold an artifact's delta chain into its base catalog files.

    No recounting happens — the replayed in-memory catalogs are exact —
    so compaction is pure I/O.  Delta files are kept for audit and graph
    replay; ``compacted_generation`` tells loaders to skip them.
    """
    from repro.stats.store import StatisticsStore

    directory = Path(directory)
    store = StatisticsStore.load(directory, graph)
    folded = store.manifest.generation - store.manifest.compacted_generation
    store.manifest.compacted_generation = store.manifest.generation
    store.save(directory)
    return {
        "directory": str(directory),
        "generation": store.manifest.generation,
        "folded_generations": folded,
        "fingerprint": store.manifest.dataset_fingerprint,
    }
