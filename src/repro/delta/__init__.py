"""Dynamic-graph delta subsystem: statistics that track a mutating graph.

The paper's sub-MB summaries are cheap to keep *fresh*, not just cheap
to ship — this package makes the repo's serving stack dynamic:

* :mod:`repro.delta.updates` — the edge-update log (signed labeled
  triples batched into generations) and its set-semantics normal form;
* :mod:`repro.delta.overlay` — :class:`MutableGraphOverlay`, pending
  edits layered over the immutable graph, sealed by ``materialize()``;
* :mod:`repro.delta.counting` — delta-join pattern recounting seeded at
  the touched edges, plus discovery of newly non-empty patterns;
* :mod:`repro.delta.maintain` — :func:`apply_updates`, the incremental
  maintainer producing catalogs bit-identical to a cold rebuild on the
  mutated graph (with a compaction fallback past a volume threshold);
* :mod:`repro.delta.deltafile` — versioned ``deltas/NNNN.json`` patch
  artifacts that :meth:`~repro.stats.store.StatisticsStore.load`
  replays graph-free and
  :meth:`~repro.server.registry.StoreRegistry.apply_deltas` applies to
  live tenants without dropping in-flight requests.
"""

from repro.delta.counting import (
    delta_count,
    delta_count_with_touch,
    discover_new_patterns,
    pattern_from_key,
)
from repro.delta.deltafile import (
    DELTA_FORMAT_VERSION,
    apply_delta_payload,
    clone_store,
    read_delta,
    write_delta,
)
from repro.delta.maintain import (
    MaintenanceOutcome,
    apply_updates,
    compact_artifact,
    replay_graph,
)
from repro.delta.overlay import MutableGraphOverlay
from repro.delta.updates import (
    DELETE,
    INSERT,
    EdgeUpdate,
    UpdateBatch,
    normalize_updates,
    random_update_batch,
)

__all__ = [
    "DELTA_FORMAT_VERSION",
    "INSERT",
    "DELETE",
    "EdgeUpdate",
    "UpdateBatch",
    "normalize_updates",
    "random_update_batch",
    "MutableGraphOverlay",
    "pattern_from_key",
    "delta_count",
    "delta_count_with_touch",
    "discover_new_patterns",
    "MaintenanceOutcome",
    "apply_updates",
    "replay_graph",
    "compact_artifact",
    "read_delta",
    "write_delta",
    "apply_delta_payload",
    "clone_store",
]
