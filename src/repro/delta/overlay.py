"""A mutable edit layer over the immutable :class:`LabeledDiGraph`.

:class:`MutableGraphOverlay` accumulates pending inserts and deletes on
top of a base graph without touching the base's sorted relation arrays.
It answers point lookups through the layered view, tracks which labels
and vertices the pending edits touch (the inputs of the incremental
statistics maintainers), and :meth:`materialize`\\ s a brand-new
immutable graph — plus its dataset fingerprint — when a generation is
sealed.

Invariants (maintained by :meth:`insert`/:meth:`delete`):

* ``pending_inserts ∩ base = ∅``
* ``pending_deletes ⊆ base``
* ``pending_inserts ∩ pending_deletes = ∅``

so the overlay's effective delta is always in the normal form
:func:`repro.delta.updates.normalize_updates` produces.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.delta.updates import DELETE, INSERT, UpdateBatch
from repro.graph.digraph import LabeledDiGraph
from repro.stats.artifact import dataset_fingerprint

__all__ = ["MutableGraphOverlay"]

Triple = tuple[int, int, str]


class MutableGraphOverlay:
    """Pending inserts/deletes layered over an immutable base graph."""

    def __init__(self, base: LabeledDiGraph):
        self.base = base
        self._inserts: set[Triple] = set()
        self._deletes: set[Triple] = set()

    # ------------------------------------------------------------------
    # Edits
    # ------------------------------------------------------------------
    def _in_base(self, src: int, dst: int, label: str) -> bool:
        if label not in self.base:
            return False
        n = self.base.num_vertices
        if src >= n or dst >= n or src < 0 or dst < 0:
            return False
        return self.base.relation(label).has_edge(src, dst, n)

    def insert(self, src: int, dst: int, label: str) -> bool:
        """Stage one edge insert; returns False for a set-semantics no-op."""
        triple = (int(src), int(dst), str(label))
        if triple in self._deletes:
            self._deletes.discard(triple)  # restore the base edge
            return True
        if self._in_base(*triple) or triple in self._inserts:
            return False
        self._inserts.add(triple)
        return True

    def delete(self, src: int, dst: int, label: str) -> bool:
        """Stage one edge delete; returns False for a set-semantics no-op."""
        triple = (int(src), int(dst), str(label))
        if triple in self._inserts:
            self._inserts.discard(triple)
            return True
        if not self._in_base(*triple) or triple in self._deletes:
            return False
        self._deletes.add(triple)
        return True

    def apply_batch(self, batch: UpdateBatch) -> int:
        """Stage a whole batch in order; returns the effective op count."""
        applied = 0
        for update in batch:
            if update.op == INSERT:
                applied += bool(self.insert(*update.triple))
            elif update.op == DELETE:
                applied += bool(self.delete(*update.triple))
        return applied

    # ------------------------------------------------------------------
    # Layered reads
    # ------------------------------------------------------------------
    @property
    def pending_inserts(self) -> frozenset[Triple]:
        """Staged inserts (normal form: none are base edges)."""
        return frozenset(self._inserts)

    @property
    def pending_deletes(self) -> frozenset[Triple]:
        """Staged deletes (normal form: all are base edges)."""
        return frozenset(self._deletes)

    @property
    def pending(self) -> int:
        """Total staged (effective) operations."""
        return len(self._inserts) + len(self._deletes)

    def has_edge(self, src: int, dst: int, label: str) -> bool:
        """Membership in the layered view (base + inserts − deletes)."""
        triple = (int(src), int(dst), str(label))
        if triple in self._inserts:
            return True
        if triple in self._deletes:
            return False
        return self._in_base(*triple)

    @property
    def num_vertices(self) -> int:
        """Vertex-universe size of the layered view (grows with inserts)."""
        top = self.base.num_vertices - 1
        for src, dst, _ in self._inserts:
            top = max(top, src, dst)
        return top + 1

    @property
    def num_edges(self) -> int:
        """Edge count of the layered view."""
        return self.base.num_edges + len(self._inserts) - len(self._deletes)

    def cardinality(self, label: str) -> int:
        """``|R_label|`` of the layered view."""
        count = self.base.cardinality(label)
        count += sum(1 for t in self._inserts if t[2] == label)
        count -= sum(1 for t in self._deletes if t[2] == label)
        return count

    def touched_labels(self) -> frozenset[str]:
        """Labels with at least one staged insert or delete."""
        return frozenset(
            t[2] for t in self._inserts
        ) | frozenset(t[2] for t in self._deletes)

    def degree_deltas(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Per-label ``(out_degree_delta, in_degree_delta)`` vertex arrays.

        Arrays are sized to the layered view's vertex universe; entry
        ``v`` is the signed change of ``v``'s out-/in-degree under that
        label.  This is the per-vertex summary the degree maintainers
        use to spot which vertices an update generation touched.
        """
        n = self.num_vertices
        deltas: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for triples, sign in ((self._inserts, 1), (self._deletes, -1)):
            for src, dst, label in triples:
                out_delta, in_delta = deltas.setdefault(
                    label,
                    (np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.int64)),
                )
                out_delta[src] += sign
                in_delta[dst] += sign
        return deltas

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self) -> LabeledDiGraph:
        """Seal the pending edits into a fresh immutable graph.

        The overlay itself is left untouched (callers typically discard
        it after sealing); empty relations vanish, exactly as a
        from-scratch construction over the same triples would behave.
        """
        n = self.num_vertices
        delete_keys: dict[str, set[int]] = defaultdict(set)
        for src, dst, label in self._deletes:
            delete_keys[label].add(src * n + dst)
        insert_cols: dict[str, tuple[list[int], list[int]]] = defaultdict(
            lambda: ([], [])
        )
        for src, dst, label in self._inserts:
            bucket = insert_cols[label]
            bucket[0].append(src)
            bucket[1].append(dst)
        arrays: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for label in sorted(set(self.base.labels) | set(insert_cols)):
            if label in self.base:
                relation = self.base.relation(label)
                src = relation.src_by_src
                dst = relation.dst_by_src
                doomed = delete_keys.get(label)
                if doomed:
                    keys = src * np.int64(n) + dst
                    keep = ~np.isin(
                        keys, np.fromiter(doomed, dtype=np.int64)
                    )
                    src, dst = src[keep], dst[keep]
            else:
                src = np.empty(0, dtype=np.int64)
                dst = np.empty(0, dtype=np.int64)
            added = insert_cols.get(label)
            if added:
                src = np.concatenate(
                    [src, np.asarray(added[0], dtype=np.int64)]
                )
                dst = np.concatenate(
                    [dst, np.asarray(added[1], dtype=np.int64)]
                )
            arrays[label] = (src, dst)
        return LabeledDiGraph(n, arrays)

    def fingerprint(self) -> str:
        """Dataset fingerprint of the materialized view."""
        return dataset_fingerprint(self.materialize())

    def __repr__(self) -> str:
        return (
            f"MutableGraphOverlay(base=|E|={self.base.num_edges}, "
            f"+{len(self._inserts)}/-{len(self._deletes)})"
        )
