"""Incremental pattern counting: count only what touched edges reach.

The classic delta-join identity for a join of ``k`` atoms (incremental
view maintenance, specialised to homomorphism *counts* over set-valued
relations): with ``G'`` the mutated graph, effective inserts ``A``
(``A ∩ G = ∅``) and effective deletes ``D`` (``D ⊆ G``),

    count_{G'}(P) − count_G(P)
      = Σ_j [ atoms < j over G', atom j over A, atoms > j over G ]
      − Σ_j [ atoms < j over G', atom j over D, atoms > j over G ]

Each term is one frame join *seeded at the delta atom* — the frame
starts from the (tiny) insert/delete relation and extends outward along
a connected order, so its size is proportional to how many matches the
touched edges actually participate in, not to ``count(P)``.  All
arithmetic is integer-valued float64, so ``old + Δ`` is bit-identical
to a cold recount.

:func:`discover_new_patterns` finds the canonical patterns a *complete*
artifact must add after inserts: any pattern that was empty before and
non-empty after has every new match using at least one inserted edge,
so growing connected patterns around the insert relations (with the
constrained frame as an emptiness prune) enumerates a superset of
exactly the newly non-empty shapes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.frames import extend_frame, frame_from_edge, sorted_intersects
from repro.errors import PlanningError
from repro.graph.digraph import LabeledDiGraph
from repro.query.canonical import canonical_key
from repro.query.pattern import QueryEdge, QueryPattern

__all__ = [
    "pattern_from_key",
    "delta_count",
    "delta_count_with_touch",
    "discover_new_patterns",
]


def pattern_from_key(key: tuple) -> QueryPattern:
    """Rebuild the canonical pattern a catalog key encodes.

    Canonical keys are sorted tuples of ``(src_pos, dst_pos, label)``;
    naming positions ``v0, v1, ...`` reproduces exactly
    :func:`repro.query.canonical.canonical_pattern`'s output.
    """
    return QueryPattern((f"v{s}", f"v{d}", label) for s, d, label in key)


def _connected_order(pattern: QueryPattern, start: int) -> list[int]:
    """A BFS atom order starting at ``start`` (patterns are connected)."""
    order = [start]
    bound = set(pattern.edges[start].variables())
    remaining = set(range(len(pattern.edges))) - {start}
    while remaining:
        nxt = None
        for index in sorted(remaining):
            edge = pattern.edges[index]
            if edge.src in bound or edge.dst in bound:
                nxt = index
                break
        if nxt is None:  # pragma: no cover - catalogs store connected patterns
            raise PlanningError("pattern is disconnected")
        order.append(nxt)
        bound.update(pattern.edges[nxt].variables())
        remaining.discard(nxt)
    return order


def _count_seeded(
    pattern: QueryPattern,
    seed_index: int,
    seed_graph: LabeledDiGraph,
    graph_for: Callable[[int], LabeledDiGraph],
    max_rows: int | None,
) -> float:
    """Matches of ``pattern`` with atom ``seed_index`` bound to ``seed_graph``.

    Every other atom ``t`` matches in ``graph_for(t)``.  Raises
    :class:`~repro.errors.PlanningError` when an intermediate frame
    exceeds ``max_rows`` (callers fall back to a cold recount).
    """
    order = _connected_order(pattern, seed_index)
    frame = frame_from_edge(seed_graph, pattern.edges[seed_index])
    for index in order[1:]:
        if frame.size == 0:
            return 0.0
        frame, _ = extend_frame(
            graph_for(index), frame, pattern.edges[index], max_rows=max_rows
        )
    return float(frame.size)


def delta_count_with_touch(
    pattern: QueryPattern,
    old_graph: LabeledDiGraph,
    new_graph: LabeledDiGraph,
    insert_graph: LabeledDiGraph | None,
    delete_graph: LabeledDiGraph | None,
    max_rows: int | None = None,
) -> tuple[float, bool]:
    """``(count_new − count_old, support_changed)`` via seeded joins.

    ``insert_graph``/``delete_graph`` hold only the effective inserted/
    deleted edges (None when that side is empty).  The delta is an exact
    integer-valued float; ``support_changed`` is True iff any term found
    a match — i.e. some new match uses an inserted edge or some old
    match used a deleted edge, which is exactly the condition under
    which the pattern's match *set* (and hence its degree statistics)
    changed at all.  All terms zero ⇒ the match set is untouched, even
    when labels overlap the delta.
    """

    def graph_for(j: int) -> Callable[[int], LabeledDiGraph]:
        return lambda t: new_graph if t < j else old_graph

    delta = 0.0
    support_changed = False
    for j, edge in enumerate(pattern.edges):
        if insert_graph is not None and edge.label in insert_graph:
            term = _count_seeded(
                pattern, j, insert_graph, graph_for(j), max_rows
            )
            delta += term
            support_changed = support_changed or term != 0.0
        if delete_graph is not None and edge.label in delete_graph:
            term = _count_seeded(
                pattern, j, delete_graph, graph_for(j), max_rows
            )
            delta -= term
            support_changed = support_changed or term != 0.0
    return delta, support_changed


def delta_count(
    pattern: QueryPattern,
    old_graph: LabeledDiGraph,
    new_graph: LabeledDiGraph,
    insert_graph: LabeledDiGraph | None,
    delete_graph: LabeledDiGraph | None,
    max_rows: int | None = None,
) -> float:
    """``count_{new}(pattern) − count_{old}(pattern)`` (see above)."""
    return delta_count_with_touch(
        pattern, old_graph, new_graph, insert_graph, delete_graph, max_rows
    )[0]


def _fresh_name(variables: tuple[str, ...]) -> str:
    taken = set(variables)
    index = len(taken)
    while f"f{index}" in taken:
        index += 1
    return f"f{index}"


def _candidate_extensions(pattern, values, labels, unique_src, unique_dst):
    """One-atom extensions that can keep a constrained frame non-empty.

    Mirrors the offline builder's candidate generation: labels are
    pruned against the frame's bound-variable value sets (a necessary
    condition, so pruning never loses a viable extension); ``values``
    of None (frame overflow) disables pruning.
    """
    variables = pattern.variables
    existing = set(pattern.edges)
    fresh = _fresh_name(variables)
    for var in variables:
        for label in labels:
            if values is None or sorted_intersects(unique_src[label], values[var]):
                yield QueryEdge(var, fresh, label)
            if values is None or sorted_intersects(unique_dst[label], values[var]):
                yield QueryEdge(fresh, var, label)
    for src in variables:
        for dst in variables:
            for label in labels:
                edge = QueryEdge(src, dst, label)
                if edge in existing:
                    continue
                if values is None or (
                    sorted_intersects(unique_src[label], values[src])
                    and sorted_intersects(unique_dst[label], values[dst])
                ):
                    yield edge


def discover_new_patterns(
    new_graph: LabeledDiGraph,
    insert_graph: LabeledDiGraph,
    h_enum: int,
    known: set[tuple],
    max_rows: int | None = None,
) -> dict[tuple, QueryPattern]:
    """Canonical patterns (≤ ``h_enum`` atoms) that may be newly non-empty.

    Grows connected patterns whose first atom is constrained to the
    insert relations, with every other atom over the mutated graph; a
    pattern whose constrained frame is empty cannot support any child
    with a match through this seed, so the subtree is pruned.  Returns
    candidates absent from ``known`` (the currently stored keys) — a
    superset of the newly non-empty patterns; callers count each on the
    mutated graph and keep the non-zero ones.
    """
    labels = new_graph.labels
    unique_src = {
        label: np.unique(new_graph.relation(label).src_by_src)
        for label in labels
    }
    unique_dst = {
        label: np.unique(new_graph.relation(label).dst_by_src)
        for label in labels
    }
    candidates: dict[tuple, QueryPattern] = {}

    def note(pattern: QueryPattern) -> None:
        key = canonical_key(pattern)
        if key not in known and key not in candidates:
            candidates[key] = pattern

    level: list[tuple[QueryPattern, object]] = []
    for label in insert_graph.labels:
        for pattern in (
            QueryPattern([("v0", "v1", label)]),
            QueryPattern([("v0", "v0", label)]),
        ):
            frame = frame_from_edge(insert_graph, pattern.edges[0])
            if frame.size == 0:
                continue
            note(pattern)
            level.append((pattern, frame))

    size = 1
    while size < h_enum and level:
        next_level: list[tuple[QueryPattern, object]] = []
        for pattern, frame in level:
            if frame is None:
                values = None
            else:
                values = {
                    var: np.unique(frame.column(var))
                    for var in pattern.variables
                }
            for edge in _candidate_extensions(
                pattern, values, labels, unique_src, unique_dst
            ):
                child = QueryPattern(pattern.edges + (edge,))
                child_frame = None
                if frame is not None:
                    try:
                        child_frame, _ = extend_frame(
                            new_graph, frame, edge, max_rows=max_rows
                        )
                    except PlanningError:
                        child_frame = None  # unknown: keep growing unpruned
                    else:
                        if child_frame.size == 0:
                            continue
                note(child)
                next_level.append((child, child_frame))
        level = next_level
        size += 1
    return candidates
