"""Edge-update logs: the input of the dynamic-graph subsystem.

An update is one signed labeled triple — insert or delete of
``(src, dst, label)`` — and a batch is an ordered sequence of updates
applied atomically as one *generation*.  Relations are sets, so batch
application follows set semantics: within a batch the last operation on
a triple wins, inserting a present edge is a no-op, and deleting an
absent edge is a no-op.  :func:`normalize_updates` reduces a batch to
its *effective* delta against a concrete graph — disjoint insert/delete
triple sets with ``inserts ∩ G = ∅`` and ``deletes ⊆ G`` — which is the
precondition every incremental maintainer in :mod:`repro.delta.maintain`
relies on.

The on-disk form is JSON (one object with an ``updates`` array of
``[op, src, dst, label]`` rows, op ``"+"``/``"-"``); the same rows are
embedded in each ``deltas/NNNN.json`` artifact so a delta chain can
re-derive the mutated graph from the base dataset alone.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import DatasetError
from repro.graph.digraph import LabeledDiGraph

__all__ = [
    "INSERT",
    "DELETE",
    "EdgeUpdate",
    "UpdateBatch",
    "normalize_updates",
    "random_update_batch",
]

INSERT = "+"
DELETE = "-"

_OP_ALIASES = {
    "+": INSERT,
    "insert": INSERT,
    "-": DELETE,
    "delete": DELETE,
}


@dataclass(frozen=True)
class EdgeUpdate:
    """One signed labeled triple: insert or delete of ``(src, dst, label)``."""

    op: str
    src: int
    dst: int
    label: str

    def __post_init__(self) -> None:
        if self.op not in (INSERT, DELETE):
            raise DatasetError(
                f"update op must be {INSERT!r} or {DELETE!r}, got {self.op!r}"
            )
        if self.src < 0 or self.dst < 0:
            raise DatasetError(
                f"update references negative vertex: {self.as_row()}"
            )

    @property
    def triple(self) -> tuple[int, int, str]:
        """The ``(src, dst, label)`` the update targets."""
        return (self.src, self.dst, self.label)

    def as_row(self) -> list:
        """The JSON row form ``[op, src, dst, label]``."""
        return [self.op, self.src, self.dst, self.label]

    @classmethod
    def from_row(cls, row) -> "EdgeUpdate":
        """Parse one ``[op, src, dst, label]`` row (friendly errors)."""
        try:
            op, src, dst, label = row
        except (TypeError, ValueError):
            raise DatasetError(
                f"update row must be [op, src, dst, label], got {row!r}"
            )
        op = _OP_ALIASES.get(str(op).strip().lower())
        if op is None:
            raise DatasetError(
                f"unknown update op {row[0]!r}; use '+'/'insert' or "
                "'-'/'delete'"
            )
        try:
            return cls(op, int(src), int(dst), str(label))
        except (TypeError, ValueError) as error:
            raise DatasetError(f"invalid update row {row!r}: {error}")


class UpdateBatch:
    """An ordered sequence of edge updates applied as one generation."""

    def __init__(self, updates: Iterable[EdgeUpdate | tuple | list]):
        normalized: list[EdgeUpdate] = []
        for update in updates:
            if isinstance(update, EdgeUpdate):
                normalized.append(update)
            else:
                normalized.append(EdgeUpdate.from_row(list(update)))
        self.updates: tuple[EdgeUpdate, ...] = tuple(normalized)

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self.updates)

    def inverted(self) -> "UpdateBatch":
        """The batch that undoes this one (ops flipped, order reversed)."""
        return UpdateBatch(
            EdgeUpdate(
                DELETE if update.op == INSERT else INSERT,
                update.src,
                update.dst,
                update.label,
            )
            for update in reversed(self.updates)
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_rows(self) -> list[list]:
        """JSON row list, the form embedded in delta artifacts."""
        return [update.as_row() for update in self.updates]

    def to_payload(self) -> dict:
        """The standalone update-file JSON body."""
        return {"kind": "edge_updates", "updates": self.to_rows()}

    @classmethod
    def from_payload(cls, payload) -> "UpdateBatch":
        """Parse an update file body (object with ``updates`` or bare list)."""
        if isinstance(payload, dict):
            rows = payload.get("updates")
        else:
            rows = payload
        if not isinstance(rows, list):
            raise DatasetError(
                "update file must be a JSON list of [op, src, dst, label] "
                "rows or an object with an 'updates' array"
            )
        return cls(rows)

    def save(self, path: str | Path) -> None:
        """Write the batch as a standalone JSON update file."""
        Path(path).write_text(
            json.dumps(self.to_payload(), indent=2), encoding="utf-8"
        )

    @classmethod
    def load(cls, path: str | Path) -> "UpdateBatch":
        """Read a batch from :meth:`save` output."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as error:
            raise DatasetError(f"cannot read update file {path}: {error}")
        except ValueError as error:
            raise DatasetError(f"update file {path} is not valid JSON: {error}")
        return cls.from_payload(payload)


def normalize_updates(
    graph: LabeledDiGraph, batch: UpdateBatch
) -> tuple[set[tuple[int, int, str]], set[tuple[int, int, str]]]:
    """The batch's *effective* ``(inserts, deletes)`` against ``graph``.

    Applies set semantics in order (last op per triple wins), then drops
    inserts of edges already present and deletes of edges absent, so the
    result satisfies ``inserts ∩ G = ∅``, ``deletes ⊆ G`` and
    ``inserts ∩ deletes = ∅``.
    """
    last_op: dict[tuple[int, int, str], str] = {}
    for update in batch:
        last_op[update.triple] = update.op
    inserts: set[tuple[int, int, str]] = set()
    deletes: set[tuple[int, int, str]] = set()
    num_vertices = graph.num_vertices
    for triple, op in last_op.items():
        src, dst, label = triple
        present = (
            label in graph
            and src < num_vertices
            and dst < num_vertices
            and graph.relation(label).has_edge(src, dst, num_vertices)
        )
        if op == INSERT and not present:
            inserts.add(triple)
        elif op == DELETE and present:
            deletes.add(triple)
    return inserts, deletes


def random_update_batch(
    graph: LabeledDiGraph,
    rng: random.Random,
    num_inserts: int = 4,
    num_deletes: int = 4,
    new_label_rate: float = 0.0,
) -> UpdateBatch:
    """A randomized batch for tests and benchmarks.

    Deletes sample existing edges uniformly; inserts draw random vertex
    pairs over existing labels (``new_label_rate`` optionally mints a
    fresh label per insert with that probability).  The batch is *not*
    guaranteed to be fully effective — duplicate inserts or repeated
    deletes exercise the set-semantics normalization on purpose.
    """
    triples = list(graph.triples())
    updates: list[EdgeUpdate] = []
    for _ in range(min(num_deletes, len(triples))):
        src, dst, label = rng.choice(triples)
        updates.append(EdgeUpdate(DELETE, src, dst, label))
    labels = list(graph.labels)
    n = graph.num_vertices
    for index in range(num_inserts):
        if labels and rng.random() >= new_label_rate:
            label = rng.choice(labels)
        else:
            label = f"NEW{index}"
        updates.append(
            EdgeUpdate(INSERT, rng.randrange(n), rng.randrange(n), label)
        )
    rng.shuffle(updates)
    return UpdateBatch(updates)
