"""Versioned delta artifacts: one JSON patch file per update generation.

A dynamic statistics artifact is its base catalog files plus a chain of
``deltas/NNNN.json`` patch files, each produced by one applied update
batch.  A delta file carries

* **lineage** — generation number, parent → child dataset fingerprints
  and the applied-at timestamp (the manifest mirrors these, so a chain
  is verifiable from the manifest alone);
* the **edge-update log** of the generation (``[op, src, dst, label]``
  rows), from which the mutated graph is re-derivable given the base
  dataset;
* **catalog patches** — Markov entries set/deleted, degree relations
  replaced/deleted, entropy entries recomputed, resampled cycle rates
  and rebuilt baseline summaries — everything
  :meth:`~repro.stats.store.StatisticsStore.load` needs to replay the
  generation *without* the graph;
* the **staleness ledger** recording, per catalog, whether the patch is
  exact (bit-identical to a cold rebuild) or merely refreshed (e.g.
  resampled cycle rates).

:func:`apply_delta_payload` is the one replay routine, shared by
graph-free loading and the server registry's live refresh;
:func:`clone_store` supports the registry's copy-on-write refresh (the
published store is never mutated while in-flight requests read it).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.baselines.characteristic_sets import CharacteristicSetsEstimator
from repro.baselines.sumrdf import SumRdfEstimator
from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.degrees import DegreeCatalog, StatRelation
from repro.catalog.entropy import EntropyCatalog
from repro.catalog.markov import MarkovTable
from repro.errors import DatasetError, check_format_version
from repro.obs.offline import JobTelemetry
from repro.query.canonical import canonical_key
from repro.stats.artifact import DELTAS_DIR, StoreManifest, delta_file_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stats.store import StatisticsStore

__all__ = [
    "DELTA_FORMAT_VERSION",
    "encode_keys",
    "decode_keys",
    "read_delta",
    "write_delta",
    "apply_delta_payload",
    "replay_delta_chain",
    "clone_store",
]

DELTA_FORMAT_VERSION = 1


def encode_keys(keys) -> list:
    """Canonical pattern keys → JSON nested lists (sorted, stable)."""
    return [[list(atom) for atom in key] for key in sorted(keys)]


def decode_keys(rows) -> list[tuple]:
    """JSON nested lists → canonical pattern keys."""
    return [
        tuple((int(s), int(d), str(label)) for s, d, label in key)
        for key in rows
    ]


def sumrdf_file_name(generation: int) -> str:
    """Relative path of one generation's rebuilt SumRDF summary."""
    return f"{DELTAS_DIR}/{generation:04d}.sumrdf.npz"


def read_delta(directory: str | Path, file: str) -> dict:
    """Read and version-check one delta patch file."""
    path = Path(directory) / file
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise DatasetError(
            f"statistics artifact is missing delta file {file}: {error}"
        )
    except ValueError as error:
        raise DatasetError(f"corrupt delta file {path}: {error}")
    if not isinstance(payload, dict):
        raise DatasetError(f"corrupt delta file {path}: expected a JSON object")
    check_format_version(payload, DELTA_FORMAT_VERSION, "statistics delta")
    return payload


def write_delta(
    directory: str | Path,
    payload: dict,
    sumrdf: SumRdfEstimator | None = None,
) -> Path:
    """Write one generation's patch file (plus SumRDF sibling) to disk."""
    directory = Path(directory)
    generation = int(payload["generation"])
    (directory / DELTAS_DIR).mkdir(parents=True, exist_ok=True)
    if sumrdf is not None:
        payload = dict(payload, sumrdf_file=sumrdf_file_name(generation))
        np.savez_compressed(
            directory / sumrdf_file_name(generation), **sumrdf.to_artifact()
        )
    path = directory / delta_file_name(generation)
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def apply_delta_payload(
    store: "StatisticsStore", payload: dict, directory: str | Path
) -> None:
    """Replay one delta patch onto an in-memory store (in place).

    ``directory`` resolves patch-sibling files (the rebuilt SumRDF
    summary).  Only catalog state is touched; manifest lineage is the
    caller's concern (the on-disk manifest already reflects the chain).
    """
    try:
        markov_patch = payload["markov"]
        degrees_patch = payload["degrees"]
        labels = payload["labels"]
    except KeyError as error:
        raise DatasetError(f"invalid statistics delta: missing {error}")
    # Flat-backed catalogs must fold their array backing into the cache
    # before set/delete below — a delete against the cache alone would
    # leave the entry visible through the arrays.
    store.markov.materialize()
    store.degrees.materialize()
    store.markov.labels = tuple(str(label) for label in labels)
    store.markov.complete = bool(
        markov_patch.get("complete", store.markov.complete)
    )
    for entry in markov_patch.get("set", []):
        key = tuple(
            (int(s), int(d), str(label)) for s, d, label in entry["key"]
        )
        store.markov._cache[key] = float(entry["count"])
    for key in decode_keys(markov_patch.get("delete", [])):
        store.markov._cache.pop(key, None)
    store.degrees.complete = bool(
        degrees_patch.get("complete", store.degrees.complete)
    )
    for artifact in degrees_patch.get("set", []):
        relation = StatRelation.from_artifact(artifact)
        store.degrees._cache[canonical_key(relation.pattern)] = relation
    for key in decode_keys(degrees_patch.get("delete", [])):
        store.degrees._cache.pop(key, None)
    entropy_patch = payload.get("entropy")
    if entropy_patch is not None and store.entropy is not None:
        for entry in entropy_patch.get("set", []):
            pattern_key = tuple(
                (int(s), int(d), str(label)) for s, d, label in entry["key"]
            )
            variables = tuple(str(v) for v in entry["vars"])
            store.entropy._cache[(pattern_key, variables)] = float(
                entry["value"]
            )
    rates_patch = payload.get("cycle_rates")
    if rates_patch is not None and store.cycle_rates is not None:
        store.cycle_rates = CycleClosingRates.from_artifact(
            rates_patch["replace"], store.cycle_rates.graph
        )
    cs_patch = payload.get("characteristic_sets")
    if cs_patch is not None and store.characteristic_sets is not None:
        store.characteristic_sets = CharacteristicSetsEstimator.from_artifact(
            cs_patch["replace"]
        )
    sumrdf_file = payload.get("sumrdf_file")
    if sumrdf_file is not None and store.sumrdf is not None:
        try:
            with np.load(Path(directory) / sumrdf_file) as data:
                store.sumrdf = SumRdfEstimator.from_artifact(dict(data.items()))
        except OSError as error:
            raise DatasetError(
                f"statistics delta is missing or has a corrupt "
                f"{sumrdf_file}: {error}"
            )


def replay_delta_chain(
    store: "StatisticsStore",
    manifest: StoreManifest,
    directory: str | Path,
    from_generation: int = 0,
    expected_fingerprint: str | None = None,
    telemetry: JobTelemetry | None = None,
) -> int:
    """Verify a manifest's delta lineage and apply the unseen patches.

    The one replay routine behind graph-free loading *and* the
    registry's live refresh, so both enforce the same checks: every
    entry must chain from its parent's fingerprint (starting at
    ``base_fingerprint``), each applied patch file must claim the
    generation the manifest records for it, and the chain must end on
    the manifest's current ``dataset_fingerprint``.  Entries with
    generation ≤ ``from_generation`` (already folded into the base
    files, or already served) are chain-checked but not applied;
    ``expected_fingerprint``, when given, asserts the chain passes
    through the store's current fingerprint at exactly
    ``from_generation``.  Returns the number of generations applied.

    With ``telemetry``, every applied generation lands as a timed
    ``generation`` span on the job trace plus a replayed-generations
    counter — the per-generation visibility the offline ``repro obs``
    toolkit reads.
    """
    fingerprint = manifest.base_fingerprint
    if (
        expected_fingerprint is not None
        and from_generation == 0
        and fingerprint != expected_fingerprint
    ):
        raise DatasetError(
            f"store fingerprint {expected_fingerprint} does not match the "
            f"artifact's base fingerprint {fingerprint}"
        )
    applied = 0
    for entry in sorted(
        manifest.deltas, key=lambda e: e.get("generation", 0)
    ):
        generation = int(entry.get("generation", 0))
        if entry.get("parent_fingerprint") != fingerprint:
            raise DatasetError(
                f"broken delta lineage at generation {generation}: parent "
                f"fingerprint {entry.get('parent_fingerprint')} != "
                f"{fingerprint}"
            )
        fingerprint = str(entry.get("fingerprint", ""))
        if generation <= from_generation:
            if (
                expected_fingerprint is not None
                and generation == from_generation
                and fingerprint != expected_fingerprint
            ):
                raise DatasetError(
                    f"store fingerprint {expected_fingerprint} does not "
                    f"match the lineage fingerprint {fingerprint} at "
                    f"generation {generation}"
                )
            continue
        file = entry.get("file")
        if not file:
            raise DatasetError(
                f"generation {generation} has no persisted patch file "
                "(applied in-memory); reload from the base catalog files "
                "instead"
            )
        began = time.perf_counter()
        payload = read_delta(directory, str(file))
        if payload.get("generation") != generation:
            raise DatasetError(
                f"delta file {file} claims generation "
                f"{payload.get('generation')}, manifest expects {generation}"
            )
        apply_delta_payload(store, payload, directory)
        applied += 1
        if telemetry is not None:
            telemetry.trace.add_span(
                "generation",
                began,
                time.perf_counter() - began,
                generation=generation,
                file=str(file),
                inserts=int(entry.get("inserts", 0)),
                deletes=int(entry.get("deletes", 0)),
            )
            telemetry.registry.counter(
                "repro_delta_replayed_generations_total",
                "Delta generations re-derived during graph replay.",
            ).inc()
    if manifest.deltas and fingerprint != manifest.dataset_fingerprint:
        raise DatasetError(
            f"delta chain ends at fingerprint {fingerprint} but the "
            f"manifest claims {manifest.dataset_fingerprint}"
        )
    return applied


def clone_store(store: "StatisticsStore") -> "StatisticsStore":
    """A copy-on-write clone safe to patch while the original serves.

    Catalog caches are copied; the heavyweight immutable values
    (:class:`StatRelation` objects, baseline summaries) are shared —
    patches only ever *replace* them, never mutate them in place.
    """
    from repro.stats.store import StatisticsStore

    markov = MarkovTable(
        store.markov.graph,
        h=store.markov.h,
        count_budget=store.markov.count_budget,
        labels=store.markov.labels,
        complete=store.markov.complete,
        count_impl=store.markov.count_impl,
    )
    markov._cache = dict(store.markov._cache)
    # Share the (read-only) flat array backing rather than materialising
    # the *source* — decoding into a live store's cache would race its
    # readers.  Whoever mutates the clone materialises the clone.
    markov._flat = store.markov._flat
    degrees = DegreeCatalog(
        store.degrees.graph,
        h=store.degrees.h,
        max_rows=store.degrees.max_rows,
        complete=store.degrees.complete,
    )
    degrees._cache = dict(store.degrees._cache)
    degrees._flat = store.degrees._flat
    entropy = None
    if store.entropy is not None:
        entropy = EntropyCatalog(
            store.entropy.graph, max_rows=store.entropy.max_rows
        )
        entropy._cache = dict(store.entropy._cache)
    return StatisticsStore(
        manifest=StoreManifest.from_payload(store.manifest.to_payload()),
        markov=markov,
        degrees=degrees,
        characteristic_sets=store.characteristic_sets,
        sumrdf=store.sumrdf,
        cycle_rates=store.cycle_rates,
        entropy=entropy,
        graph=store.graph,
    )
