"""The shared vectorized match-frame kernel.

A *frame* holds partial join results columnar: one sorted-gatherable
int64 array per bound query variable, position ``i`` across all columns
being one partial homomorphism.  One kernel — searchsorted range
expansion for edges that bind a new variable, sorted-key semijoins for
edges whose endpoints are already bound — backs every match-table
consumer in the library:

* :func:`repro.engine.join.extend_by_edge` (the Figure-15 executor and
  the offline statistics builder) wraps :func:`extend_frame` around its
  row-matrix :class:`~repro.engine.join.BindingTable`;
* :func:`count_core_frames` is the vectorized cyclic counter: it joins
  the 2-core's edges along a greedy connected plan
  (:func:`plan_core_edges`) while folding precomputed hanging-tree
  weights into a per-row weight column, replacing the per-candidate
  Python backtracking of :func:`repro.engine.backtracking.count_general`.

Budget semantics: the legacy backtracker charged one unit per candidate
expansion; the vectorized counter preserves ``CountBudgetExceeded`` as a
cap on *total materialized rows* across all join steps
(:class:`RowBudget`) — the same order of magnitude of work, counted on
the frame instead of the recursion tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CountBudgetExceeded, PatternError, PlanningError
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryEdge, QueryPattern

__all__ = [
    "Frame",
    "RowBudget",
    "expand_ranges",
    "sorted_intersects",
    "frame_from_edge",
    "extend_frame",
    "plan_core_edges",
    "count_core_frames",
]


def expand_ranges(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-row index ranges ``[lo_i, hi_i)`` into gather indexes.

    Returns ``(row_index, flat_index)`` such that iterating ``flat_index``
    visits every position of every range, and ``row_index`` names the row
    each position came from.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    row_index = np.repeat(np.arange(len(lo), dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    flat_index = np.repeat(lo, counts) + within
    return row_index, flat_index


def sorted_intersects(sorted_values: np.ndarray, sorted_probe: np.ndarray) -> bool:
    """Whether two sorted unique int arrays share an element."""
    if len(sorted_values) == 0 or len(sorted_probe) == 0:
        return False
    if len(sorted_probe) > len(sorted_values):
        sorted_values, sorted_probe = sorted_probe, sorted_values
    slots = np.searchsorted(sorted_values, sorted_probe)
    valid = slots < len(sorted_values)
    return bool(np.any(sorted_values[slots[valid]] == sorted_probe[valid]))


class RowBudget:
    """Counts materialized rows and raises when a cap is exhausted.

    The vectorized analogue of the backtracking expansion budget: every
    join step charges the number of rows it materialized, and crossing
    ``limit`` raises :class:`~repro.errors.CountBudgetExceeded` — the
    library's equivalent of the per-query timeouts of §6.
    """

    __slots__ = ("limit", "spent")

    def __init__(self, limit: int | None):
        self.limit = limit
        self.spent = 0

    def charge(self, rows: int) -> None:
        """Record ``rows`` materialized rows; raise when over the cap."""
        if self.limit is None:
            return
        self.spent += int(rows)
        if self.spent > self.limit:
            raise CountBudgetExceeded(
                f"vectorized counting exceeded budget of {self.limit} "
                "materialized rows"
            )


@dataclass
class Frame:
    """Partial matches as parallel int64 column arrays.

    ``columns[j][i]`` binds ``variables[j]`` in the ``i``-th partial
    match.  All columns share one length.
    """

    variables: tuple[str, ...]
    columns: tuple[np.ndarray, ...]

    @property
    def size(self) -> int:
        """Number of partial matches in the frame."""
        return int(len(self.columns[0])) if self.columns else 0

    def column(self, var: str) -> np.ndarray:
        """The binding column of one variable."""
        return self.columns[self.variables.index(var)]


def _member_mask(sorted_keys: np.ndarray, probe: np.ndarray) -> np.ndarray:
    """Boolean membership of each probe key in a sorted key array."""
    if len(sorted_keys) == 0:
        return np.zeros(len(probe), dtype=bool)
    slots = np.searchsorted(sorted_keys, probe)
    slots = np.minimum(slots, len(sorted_keys) - 1)
    return sorted_keys[slots] == probe


def _empty_frame(variables: tuple[str, ...]) -> Frame:
    return Frame(
        variables,
        tuple(np.empty(0, dtype=np.int64) for _ in variables),
    )


def frame_from_edge(graph: LabeledDiGraph, edge: QueryEdge) -> Frame:
    """A frame initialised from one atom's relation."""
    if edge.label not in graph:
        if edge.src == edge.dst:
            return _empty_frame((edge.src,))
        return _empty_frame((edge.src, edge.dst))
    relation = graph.relation(edge.label)
    if edge.src == edge.dst:
        mask = relation.src_by_src == relation.dst_by_src
        return Frame((edge.src,), (relation.src_by_src[mask],))
    return Frame(
        (edge.src, edge.dst), (relation.src_by_src, relation.dst_by_src)
    )


def extend_frame(
    graph: LabeledDiGraph,
    frame: Frame,
    edge: QueryEdge,
    max_rows: int | None = None,
    budget: RowBudget | None = None,
) -> tuple[Frame, np.ndarray]:
    """Join a frame with one more atom.

    The atom must share at least one variable with the frame (connected
    plans guarantee this).  Returns ``(new_frame, row_index)`` where
    ``row_index`` maps each output row to the input row it extends, so
    callers carrying per-row payloads (weights) can realign them.

    ``max_rows`` aborts runaway intermediates with
    :class:`~repro.errors.PlanningError` (the planner/executor contract);
    ``budget`` charges materialized rows against a
    :class:`RowBudget` (the counting contract).
    """
    src_bound = edge.src in frame.variables
    dst_bound = edge.dst in frame.variables
    if not src_bound and not dst_bound:
        raise PlanningError(f"atom {edge} shares no variable with the frame")
    if edge.label not in graph:
        new_vars = frame.variables
        if not (src_bound and dst_bound):
            new_vars = frame.variables + (
                (edge.dst,) if src_bound else (edge.src,)
            )
        return _empty_frame(new_vars), np.empty(0, dtype=np.int64)
    relation = graph.relation(edge.label)
    n = graph.num_vertices

    if src_bound and dst_bound:
        # Closing edge (or self-loop on a bound variable): semijoin the
        # frame against the relation's sorted (src, dst) key set.
        probe = (
            frame.column(edge.src) * np.int64(n) + frame.column(edge.dst)
        )
        hit = np.flatnonzero(_member_mask(relation.pair_keys(n), probe))
        survivors = Frame(
            frame.variables, tuple(col[hit] for col in frame.columns)
        )
        if budget is not None:
            budget.charge(survivors.size)
        return survivors, hit

    if src_bound:
        sorted_keys = relation.src_by_src
        partner = relation.dst_by_src
        values = frame.column(edge.src)
        new_var = edge.dst
    else:
        sorted_keys = relation.dst_by_dst
        partner = relation.src_by_dst
        values = frame.column(edge.dst)
        new_var = edge.src
    lo = np.searchsorted(sorted_keys, values, side="left")
    hi = np.searchsorted(sorted_keys, values, side="right")
    # Enforce both caps on the predicted output size BEFORE materializing
    # the expansion: a runaway join must fail from three cheap
    # searchsorted arrays, not after allocating the full gather indexes.
    total = int((hi - lo).sum())
    if max_rows is not None and total > max_rows:
        raise PlanningError(
            f"intermediate exceeded {max_rows} rows while joining {edge}"
        )
    if budget is not None:
        budget.charge(total)
    row_index, flat_index = expand_ranges(lo, hi)
    columns = tuple(col[row_index] for col in frame.columns)
    return (
        Frame(frame.variables + (new_var,), columns + (partner[flat_index],)),
        row_index,
    )


def plan_core_edges(graph: LabeledDiGraph, pattern: QueryPattern) -> list[int]:
    """A greedy connected join order over a (2-core) pattern's edges.

    Starts from the smallest relation, then repeatedly appends the edge
    with the most already-bound endpoints — closing edges run as
    row-shrinking semijoins as early as possible — breaking ties by
    relation cardinality, then edge index (deterministic).
    """
    edges = pattern.edges
    sizes = [graph.cardinality(edge.label) for edge in edges]
    start = min(range(len(edges)), key=lambda i: (sizes[i], i))
    order = [start]
    bound: set[str] = set(edges[start].variables())
    remaining = set(range(len(edges))) - {start}
    while remaining:
        best: int | None = None
        best_key: tuple | None = None
        for index in remaining:
            edge = edges[index]
            if edge.src == edge.dst:
                attached = 2 if edge.src in bound else 0
            else:
                attached = (edge.src in bound) + (edge.dst in bound)
            if attached == 0:
                continue
            key = (-attached, sizes[index], index)
            if best_key is None or key < best_key:
                best_key = key
                best = index
        if best is None:
            raise PatternError("core pattern is disconnected")
        order.append(best)
        bound.update(edges[best].variables())
        remaining.discard(best)
    return order


def count_core_frames(
    graph: LabeledDiGraph,
    core_pattern: QueryPattern,
    weights: dict[str, np.ndarray],
    budget: int | None = None,
) -> float:
    """Exact homomorphism count of a cyclic core via frame joins.

    ``weights`` carries the hanging-tree weight array per core variable
    (see :func:`repro.engine.acyclic_dp.tree_weight_array`); each is
    folded into a per-row float64 weight column the moment its variable
    is bound, so the final count is one vectorized sum.  All arithmetic
    is products and sums of integer-valued float64 — exact below 2**53,
    hence equal to the backtracking counter's nested accumulation.
    """
    for edge in core_pattern.edges:
        if edge.label not in graph:
            return 0.0
    row_budget = RowBudget(budget)
    order = plan_core_edges(graph, core_pattern)

    first = core_pattern.edges[order[0]]
    frame = frame_from_edge(graph, first)
    row_budget.charge(frame.size)
    row_weights: np.ndarray | None = None
    for var in frame.variables:
        array = weights.get(var)
        if array is not None:
            gathered = array[frame.column(var)]
            row_weights = (
                gathered if row_weights is None else row_weights * gathered
            )

    for index in order[1:]:
        if frame.size == 0:
            return 0.0
        edge = core_pattern.edges[index]
        known = set(frame.variables)
        frame, row_index = extend_frame(graph, frame, edge, budget=row_budget)
        if row_weights is not None:
            row_weights = row_weights[row_index]
        for var in frame.variables:
            if var in known:
                continue
            array = weights.get(var)
            if array is not None:
                gathered = array[frame.column(var)]
                row_weights = (
                    gathered if row_weights is None else row_weights * gathered
                )
    if frame.size == 0:
        return 0.0
    if row_weights is None:
        return float(frame.size)
    return float(row_weights.sum())
