"""Homomorphism counting for cyclic patterns.

Strategy: peel the pattern to its 2-core (the cyclic skeleton), count the
trees hanging off each core variable in polynomial time with the acyclic
DP (:func:`repro.engine.acyclic_dp.tree_weight_array`), then count core
assignments only — either with the vectorized match-frame join counter
(:func:`repro.engine.frames.count_core_frames`, the default) or with the
legacy per-candidate backtracker kept behind ``impl="python"`` as the
differential-testing reference.  The exponential part is confined to the
core, which for the paper's workloads is at most a 9-cycle or K4.

A ``budget`` bounds worst-case work and raises
:class:`CountBudgetExceeded` when exhausted — the library's equivalent
of the per-query timeouts used in §6.  The backtracker charges one unit
per candidate expansion; the vectorized counter charges one unit per
materialized frame row (same order of magnitude, counted on the frame).
"""

from __future__ import annotations

import numpy as np

from repro.engine.acyclic_dp import count_acyclic, tree_weight_array
from repro.engine.frames import count_core_frames
from repro.errors import CountBudgetExceeded, PatternError
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = ["COUNT_IMPLS", "count_general", "two_core_edges"]

COUNT_IMPLS = ("vectorized", "python")


def two_core_edges(pattern: QueryPattern) -> frozenset[int]:
    """Edge indexes of the pattern's 2-core (empty iff acyclic).

    Peels degree-1 variables with a worklist: removing an edge can only
    expose its *other* endpoint as a new leaf, so each edge is examined
    O(1) times — O(E) total instead of rescanning all remaining edges
    every pass.  Self-loops contribute 2 to their variable's degree and
    are never peeled.
    """
    removed: set[int] = set()
    degree: dict[str, int] = {var: 0 for var in pattern.variables}
    for edge in pattern.edges:
        if edge.src == edge.dst:
            degree[edge.src] += 2
        else:
            degree[edge.src] += 1
            degree[edge.dst] += 1
    worklist = [var for var in pattern.variables if degree[var] == 1]
    while worklist:
        var = worklist.pop()
        if degree[var] != 1:
            continue
        for index in pattern.edges_at(var):
            if index in removed:
                continue
            edge = pattern.edges[index]
            if edge.src == edge.dst:
                continue
            removed.add(index)
            degree[edge.src] -= 1
            degree[edge.dst] -= 1
            other = edge.other_end(var)
            if degree[other] == 1:
                worklist.append(other)
            break
    return frozenset(set(range(len(pattern))) - removed)


def _hanging_trees(
    pattern: QueryPattern, core: frozenset[int]
) -> list[tuple[str, list[int]]]:
    """Split non-core edges into components, each rooted at a core variable.

    Returns ``(root_var, edge_indexes)`` per hanging tree.  When the core
    is empty the pattern is acyclic and this function is not used.
    """
    non_core = [i for i in range(len(pattern)) if i not in core]
    if not non_core:
        return []
    core_vars = pattern.variables_of(core)
    unassigned = set(non_core)
    trees: list[tuple[str, list[int]]] = []
    while unassigned:
        seed = min(unassigned)
        component = {seed}
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            for var in pattern.edges[current].variables():
                # Do not cross through core variables: trees hanging at
                # different core vertices must stay separate components.
                if var in core_vars:
                    continue
                for neighbor in pattern.edges_at(var):
                    if neighbor in unassigned and neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
        unassigned -= component
        roots = sorted(pattern.variables_of(component) & core_vars)
        if len(roots) != 1:
            raise PatternError(
                "hanging component attaches to "
                f"{len(roots)} core variables (expected 1)"
            )
        trees.append((roots[0], sorted(component)))
    return trees


def _variable_order(
    graph: LabeledDiGraph, pattern: QueryPattern
) -> list[str]:
    """Greedy core-variable order: smallest relation first, then most-bound."""

    def smallest_incident(var: str) -> int:
        sizes = [
            graph.cardinality(pattern.edges[i].label)
            for i in pattern.edges_at(var)
        ]
        return min(sizes) if sizes else 0

    variables = list(pattern.variables)
    order: list[str] = []
    bound: set[str] = set()
    while len(order) < len(variables):
        best = None
        best_key = None
        for var in variables:
            if var in bound:
                continue
            attached = sum(
                1
                for i in pattern.edges_at(var)
                if pattern.edges[i].other_end(var) in bound
            )
            key = (-attached, smallest_incident(var), var)
            if best_key is None or key < best_key:
                best_key = key
                best = var
        assert best is not None
        order.append(best)
        bound.add(best)
    return order


def _candidates(
    graph: LabeledDiGraph,
    pattern: QueryPattern,
    var: str,
    binding: dict[str, int],
) -> np.ndarray:
    """Candidate data vertices for ``var`` given already-bound neighbors."""
    result: np.ndarray | None = None
    loops: list[int] = []
    for index in pattern.edges_at(var):
        edge = pattern.edges[index]
        if edge.src == edge.dst:
            loops.append(index)
            continue
        other = edge.other_end(var)
        if other not in binding:
            continue
        if edge.label not in graph:
            return np.empty(0, dtype=np.int64)
        relation = graph.relation(edge.label)
        if edge.src == var:
            found = relation.in_neighbors(binding[other])
        else:
            found = relation.out_neighbors(binding[other])
        found = np.unique(found)
        result = found if result is None else np.intersect1d(
            result, found, assume_unique=True
        )
        if result.size == 0:
            return result
    if result is None:
        # No bound neighbor: seed from the smallest incident relation.
        best: np.ndarray | None = None
        for index in pattern.edges_at(var):
            edge = pattern.edges[index]
            if edge.label not in graph:
                return np.empty(0, dtype=np.int64)
            relation = graph.relation(edge.label)
            side = (
                relation.src_by_src if edge.src == var else relation.dst_by_src
            )
            values = np.unique(side)
            if best is None or values.size < best.size:
                best = values
        result = best if best is not None else np.empty(0, dtype=np.int64)
    for index in loops:
        edge = pattern.edges[index]
        if edge.label not in graph:
            return np.empty(0, dtype=np.int64)
        relation = graph.relation(edge.label)
        keep = [
            v for v in result
            if relation.has_edge(int(v), int(v), graph.num_vertices)
        ]
        result = np.asarray(keep, dtype=np.int64)
    return result


def count_general(
    graph: LabeledDiGraph,
    pattern: QueryPattern,
    budget: int | None = None,
    impl: str = "vectorized",
) -> float:
    """Exact homomorphism count for an arbitrary connected pattern.

    ``impl`` selects the core counter: ``"vectorized"`` (the match-frame
    join kernel) or ``"python"`` (the legacy per-candidate backtracker,
    kept as the differential-testing reference).  Both return identical
    counts; they differ only in speed and in how ``budget`` is charged.
    """
    if impl not in COUNT_IMPLS:
        raise ValueError(f"impl must be one of {COUNT_IMPLS}, got {impl!r}")
    core = two_core_edges(pattern)
    if not core:
        return count_acyclic(graph, pattern)
    weights: dict[str, np.ndarray] = {}
    for root, tree_edges in _hanging_trees(pattern, core):
        tree = pattern.subpattern(tree_edges)
        array = tree_weight_array(graph, tree, root)
        if root in weights:
            weights[root] = weights[root] * array
        else:
            weights[root] = array
    core_pattern = pattern.subpattern(sorted(core))
    if impl == "vectorized":
        return count_core_frames(graph, core_pattern, weights, budget)
    order = _variable_order(graph, core_pattern)
    return _count_core(graph, core_pattern, order, weights, budget)


def _count_core(
    graph: LabeledDiGraph,
    core_pattern: QueryPattern,
    order: list[str],
    weights: dict[str, np.ndarray],
    budget: int | None,
) -> float:
    spent = 0

    def charge(amount: int) -> None:
        nonlocal spent
        if budget is None:
            return
        spent += amount
        if spent > budget:
            raise CountBudgetExceeded(
                f"core counting exceeded budget of {budget} expansions"
            )

    last = len(order) - 1

    def recurse(position: int, binding: dict[str, int], acc: float) -> float:
        var = order[position]
        candidates = _candidates(graph, core_pattern, var, binding)
        charge(int(candidates.size) + 1)
        if candidates.size == 0:
            return 0.0
        weight = weights.get(var)
        if position == last:
            if weight is None:
                return acc * float(candidates.size)
            return acc * float(weight[candidates].sum())
        total = 0.0
        for value in candidates:
            factor = acc if weight is None else acc * float(weight[value])
            if factor == 0.0:
                continue
            binding[var] = int(value)
            total += recurse(position + 1, binding, factor)
        binding.pop(var, None)
        return total

    return recurse(0, {}, 1.0)
