"""Binding-table join execution.

The plan-quality experiment (Figure 15) executes left-deep join orders
for real.  A :class:`BindingTable` holds partial matches as a dense
int64 matrix (one column per bound variable); :func:`extend_by_edge`
joins it with one more query atom using vectorised searchsorted range
expansion.  The executor's "runtime" metric is the total number of
intermediate tuples produced, the standard C_out proxy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlanningError
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryEdge

__all__ = [
    "BindingTable",
    "start_table",
    "extend_by_edge",
    "expand_ranges",
    "join_tables",
]


@dataclass
class BindingTable:
    """Partial join results: ``rows[i, j]`` binds ``variables[j]``."""

    variables: tuple[str, ...]
    rows: np.ndarray  # shape (n, len(variables)), int64

    @property
    def size(self) -> int:
        """Number of partial matches in the table."""
        return int(self.rows.shape[0])


def expand_ranges(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-row index ranges ``[lo_i, hi_i)`` into gather indexes.

    Returns ``(row_index, flat_index)`` such that iterating ``flat_index``
    visits every position of every range, and ``row_index`` names the row
    each position came from.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    row_index = np.repeat(np.arange(len(lo), dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    flat_index = np.repeat(lo, counts) + within
    return row_index, flat_index


def start_table(graph: LabeledDiGraph, edge: QueryEdge) -> BindingTable:
    """A table initialised from one atom's relation."""
    if edge.label not in graph:
        return BindingTable(
            (edge.src, edge.dst), np.empty((0, 2), dtype=np.int64)
        )
    relation = graph.relation(edge.label)
    if edge.src == edge.dst:
        mask = relation.src_by_src == relation.dst_by_src
        rows = relation.src_by_src[mask].reshape(-1, 1)
        return BindingTable((edge.src,), rows)
    rows = np.stack([relation.src_by_src, relation.dst_by_src], axis=1)
    return BindingTable((edge.src, edge.dst), rows)


def extend_by_edge(
    graph: LabeledDiGraph,
    table: BindingTable,
    edge: QueryEdge,
    max_rows: int | None = None,
) -> BindingTable:
    """Join ``table`` with one more atom.

    The atom must share at least one variable with the table (left-deep
    plans over connected queries guarantee this).  ``max_rows`` aborts
    runaway intermediates with :class:`PlanningError`.
    """
    src_bound = edge.src in table.variables
    dst_bound = edge.dst in table.variables
    if not src_bound and not dst_bound:
        raise PlanningError(f"atom {edge} shares no variable with the table")
    if edge.label not in graph:
        empty = np.empty(
            (0, len(table.variables) + (0 if src_bound and dst_bound else 1)),
            dtype=np.int64,
        )
        new_vars = table.variables
        if not (src_bound and dst_bound):
            new_vars = table.variables + (
                (edge.dst,) if src_bound else (edge.src,)
            )
        return BindingTable(new_vars, empty)
    relation = graph.relation(edge.label)

    if src_bound and dst_bound:
        src_col = table.variables.index(edge.src)
        dst_col = table.variables.index(edge.dst)
        keys = relation.src_by_src * np.int64(graph.num_vertices) + relation.dst_by_src
        probe = (
            table.rows[:, src_col] * np.int64(graph.num_vertices)
            + table.rows[:, dst_col]
        )
        slots = np.searchsorted(keys, probe)
        slots = np.minimum(slots, len(keys) - 1) if len(keys) else slots
        hit = (
            (keys[slots] == probe) if len(keys) else np.zeros(len(probe), bool)
        )
        return BindingTable(table.variables, table.rows[hit])

    if src_bound:
        bound_col = table.variables.index(edge.src)
        sorted_keys = relation.src_by_src
        partner = relation.dst_by_src
        new_var = edge.dst
    else:
        bound_col = table.variables.index(edge.dst)
        sorted_keys = relation.dst_by_dst
        partner = relation.src_by_dst
        new_var = edge.src
    values = table.rows[:, bound_col]
    lo = np.searchsorted(sorted_keys, values, side="left")
    hi = np.searchsorted(sorted_keys, values, side="right")
    row_index, flat_index = expand_ranges(lo, hi)
    if max_rows is not None and len(row_index) > max_rows:
        raise PlanningError(
            f"intermediate exceeded {max_rows} rows while joining {edge}"
        )
    new_rows = np.concatenate(
        [table.rows[row_index], partner[flat_index].reshape(-1, 1)], axis=1
    )
    return BindingTable(table.variables + (new_var,), new_rows)


def _encode_key_columns(rows: np.ndarray, columns: list[int], modulus: int) -> np.ndarray:
    keys = rows[:, columns[0]].astype(np.int64)
    for column in columns[1:]:
        keys = keys * np.int64(modulus) + rows[:, column]
    return keys


def join_tables(
    left: BindingTable,
    right: BindingTable,
    num_vertices: int,
    max_rows: int | None = None,
) -> BindingTable:
    """Hash(-sort) join of two binding tables on their shared variables.

    The workhorse of bushy plans: sorts the right side by the shared-key
    encoding and expands per-left-row match ranges.  The tables must
    share at least one variable (bushy plans over connected queries
    guarantee this).
    """
    shared = [v for v in left.variables if v in right.variables]
    if not shared:
        raise PlanningError("bushy join requires a shared variable")
    left_cols = [left.variables.index(v) for v in shared]
    right_cols = [right.variables.index(v) for v in shared]
    if left.size == 0 or right.size == 0:
        carry = [v for v in right.variables if v not in left.variables]
        return BindingTable(
            left.variables + tuple(carry),
            np.empty((0, len(left.variables) + len(carry)), dtype=np.int64),
        )
    right_keys = _encode_key_columns(right.rows, right_cols, num_vertices)
    order = np.argsort(right_keys, kind="stable")
    right_sorted = right.rows[order]
    right_keys = right_keys[order]
    left_keys = _encode_key_columns(left.rows, left_cols, num_vertices)
    lo = np.searchsorted(right_keys, left_keys, side="left")
    hi = np.searchsorted(right_keys, left_keys, side="right")
    row_index, flat_index = expand_ranges(lo, hi)
    if max_rows is not None and len(row_index) > max_rows:
        raise PlanningError(
            f"bushy join exceeded {max_rows} rows on {shared}"
        )
    carry = [v for v in right.variables if v not in left.variables]
    carry_cols = [right.variables.index(v) for v in carry]
    pieces = [left.rows[row_index]]
    if carry_cols:
        pieces.append(right_sorted[flat_index][:, carry_cols])
    rows = (
        np.concatenate(pieces, axis=1)
        if len(pieces) > 1
        else pieces[0].copy()
    )
    return BindingTable(left.variables + tuple(carry), rows)
