"""Binding-table join execution.

The plan-quality experiment (Figure 15) executes left-deep join orders
for real.  A :class:`BindingTable` holds partial matches as a dense
int64 matrix (one column per bound variable); :func:`extend_by_edge`
joins it with one more query atom through the shared match-frame kernel
of :mod:`repro.engine.frames` — the same searchsorted expansion /
sorted-key semijoin that powers the vectorized cyclic counter and the
offline statistics builder.  The executor's "runtime" metric is the
total number of intermediate tuples produced, the standard C_out proxy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.frames import (
    Frame,
    expand_ranges,
    extend_frame,
    frame_from_edge,
)
from repro.errors import PlanningError
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryEdge

__all__ = [
    "BindingTable",
    "start_table",
    "extend_by_edge",
    "expand_ranges",
    "join_tables",
]


@dataclass
class BindingTable:
    """Partial join results: ``rows[i, j]`` binds ``variables[j]``."""

    variables: tuple[str, ...]
    rows: np.ndarray  # shape (n, len(variables)), int64

    @property
    def size(self) -> int:
        """Number of partial matches in the table."""
        return int(self.rows.shape[0])


def _to_table(frame: Frame) -> BindingTable:
    if frame.size == 0:
        rows = np.empty((0, len(frame.variables)), dtype=np.int64)
    else:
        rows = np.stack(frame.columns, axis=1)
    return BindingTable(frame.variables, rows)


def start_table(graph: LabeledDiGraph, edge: QueryEdge) -> BindingTable:
    """A table initialised from one atom's relation."""
    return _to_table(frame_from_edge(graph, edge))


def extend_by_edge(
    graph: LabeledDiGraph,
    table: BindingTable,
    edge: QueryEdge,
    max_rows: int | None = None,
) -> BindingTable:
    """Join ``table`` with one more atom.

    The atom must share at least one variable with the table (left-deep
    plans over connected queries guarantee this).  ``max_rows`` aborts
    runaway intermediates with :class:`PlanningError`.
    """
    frame = Frame(
        table.variables,
        tuple(table.rows[:, j] for j in range(len(table.variables))),
    )
    extended, _ = extend_frame(graph, frame, edge, max_rows=max_rows)
    return _to_table(extended)


def _encode_key_columns(rows: np.ndarray, columns: list[int], modulus: int) -> np.ndarray:
    keys = rows[:, columns[0]].astype(np.int64)
    for column in columns[1:]:
        keys = keys * np.int64(modulus) + rows[:, column]
    return keys


def join_tables(
    left: BindingTable,
    right: BindingTable,
    num_vertices: int,
    max_rows: int | None = None,
) -> BindingTable:
    """Hash(-sort) join of two binding tables on their shared variables.

    The workhorse of bushy plans: sorts the right side by the shared-key
    encoding and expands per-left-row match ranges.  The tables must
    share at least one variable (bushy plans over connected queries
    guarantee this).
    """
    shared = [v for v in left.variables if v in right.variables]
    if not shared:
        raise PlanningError("bushy join requires a shared variable")
    left_cols = [left.variables.index(v) for v in shared]
    right_cols = [right.variables.index(v) for v in shared]
    if left.size == 0 or right.size == 0:
        carry = [v for v in right.variables if v not in left.variables]
        return BindingTable(
            left.variables + tuple(carry),
            np.empty((0, len(left.variables) + len(carry)), dtype=np.int64),
        )
    right_keys = _encode_key_columns(right.rows, right_cols, num_vertices)
    order = np.argsort(right_keys, kind="stable")
    right_sorted = right.rows[order]
    right_keys = right_keys[order]
    left_keys = _encode_key_columns(left.rows, left_cols, num_vertices)
    lo = np.searchsorted(right_keys, left_keys, side="left")
    hi = np.searchsorted(right_keys, left_keys, side="right")
    row_index, flat_index = expand_ranges(lo, hi)
    if max_rows is not None and len(row_index) > max_rows:
        raise PlanningError(
            f"bushy join exceeded {max_rows} rows on {shared}"
        )
    carry = [v for v in right.variables if v not in left.variables]
    carry_cols = [right.variables.index(v) for v in carry]
    pieces = [left.rows[row_index]]
    if carry_cols:
        pieces.append(right_sorted[flat_index][:, carry_cols])
    rows = (
        np.concatenate(pieces, axis=1)
        if len(pieces) > 1
        else pieces[0].copy()
    )
    return BindingTable(left.variables + tuple(carry), rows)
