"""Exact counting, sampling, and join execution over labeled graphs."""

from repro.engine.acyclic_dp import count_acyclic, tree_weight_array
from repro.engine.backtracking import count_general, two_core_edges
from repro.engine.bruteforce import count_bruteforce
from repro.engine.counter import count_pattern
from repro.engine.join import BindingTable, extend_by_edge, start_table
from repro.engine.sampler import CombinedAdjacency, PatternSampler

__all__ = [
    "count_pattern",
    "count_acyclic",
    "count_general",
    "count_bruteforce",
    "two_core_edges",
    "tree_weight_array",
    "BindingTable",
    "start_table",
    "extend_by_edge",
    "CombinedAdjacency",
    "PatternSampler",
]
