"""Exact counting, sampling, and join execution over labeled graphs."""

from repro.engine.acyclic_dp import count_acyclic, tree_weight_array
from repro.engine.backtracking import COUNT_IMPLS, count_general, two_core_edges
from repro.engine.bruteforce import count_bruteforce
from repro.engine.counter import count_pattern
from repro.engine.frames import (
    Frame,
    RowBudget,
    count_core_frames,
    expand_ranges,
    extend_frame,
    frame_from_edge,
    plan_core_edges,
    sorted_intersects,
)
from repro.engine.join import BindingTable, extend_by_edge, start_table
from repro.engine.sampler import CombinedAdjacency, PatternSampler

__all__ = [
    "COUNT_IMPLS",
    "count_pattern",
    "count_acyclic",
    "count_general",
    "count_bruteforce",
    "count_core_frames",
    "two_core_edges",
    "tree_weight_array",
    "BindingTable",
    "start_table",
    "extend_by_edge",
    "expand_ranges",
    "Frame",
    "RowBudget",
    "extend_frame",
    "frame_from_edge",
    "plan_core_edges",
    "sorted_intersects",
    "CombinedAdjacency",
    "PatternSampler",
]
