"""Polynomial-time homomorphism counting for acyclic patterns.

An acyclic join query over binary relations is a tree of variables; its
homomorphism count factorises over the tree.  Rooting the tree anywhere,
the number of homomorphisms that map variable ``x`` to data vertex ``v``
is the product over ``x``'s child edges of a sparse matrix-vector product
with the child's count vector.  Total time is ``O(|Q| · |E|)`` regardless
of the (possibly astronomical) output size.

Counts are returned as ``float64``; they are exact below 2**53 and a
faithful magnitude above (the evaluation only ever takes q-error ratios).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PatternError
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = ["count_acyclic", "tree_weight_array"]


def _children_structure(
    pattern: QueryPattern, root: str
) -> list[tuple[str, str, int]]:
    """Post-order list of (parent, child, edge_index) for the query tree."""
    order: list[tuple[str, str, int]] = []
    visited_vars = {root}
    used_edges: set[int] = set()
    stack = [root]
    discovery: list[tuple[str, str, int]] = []
    while stack:
        var = stack.pop()
        for index in pattern.edges_at(var):
            if index in used_edges:
                continue
            edge = pattern.edges[index]
            other = edge.other_end(var)
            if other in visited_vars:
                raise PatternError("pattern is not acyclic")
            used_edges.add(index)
            visited_vars.add(other)
            discovery.append((var, other, index))
            stack.append(other)
    if len(used_edges) != len(pattern):
        raise PatternError("pattern is disconnected or not acyclic")
    # Children must be processed before parents: reverse discovery order.
    order = list(reversed(discovery))
    return order


def tree_weight_array(
    graph: LabeledDiGraph,
    pattern: QueryPattern,
    root: str,
    leaf_weights: dict[str, np.ndarray] | None = None,
) -> np.ndarray:
    """Per-vertex homomorphism counts of an acyclic pattern rooted at ``root``.

    ``result[v]`` is the number of homomorphisms of ``pattern`` mapping
    ``root`` to data vertex ``v``.  ``leaf_weights`` optionally multiplies
    an extra per-vertex weight into a variable's count vector (used by the
    hybrid cyclic counter to attach hanging trees to core variables).
    """
    if root not in pattern.variables:
        raise PatternError(f"{root!r} is not a variable of the pattern")
    n = graph.num_vertices
    counts: dict[str, np.ndarray] = {}

    def vector_for(var: str) -> np.ndarray:
        vec = counts.get(var)
        if vec is None:
            vec = np.ones(n, dtype=np.float64)
            if leaf_weights and var in leaf_weights:
                vec = vec * leaf_weights[var]
            counts[var] = vec
        return vec

    for parent, child, index in _children_structure(pattern, root):
        edge = pattern.edges[index]
        child_vec = vector_for(child)
        matrix = graph.adjacency_csr(edge.label)
        if edge.src == parent:
            message = matrix @ child_vec
        else:
            message = matrix.T @ child_vec
        parent_vec = vector_for(parent)
        counts[parent] = parent_vec * message
    return vector_for(root)


def count_acyclic(graph: LabeledDiGraph, pattern: QueryPattern) -> float:
    """Exact homomorphism count of a connected acyclic pattern."""
    root = pattern.variables[0]
    return float(tree_weight_array(graph, pattern, root).sum())
