"""Front door for exact cardinality computation.

:func:`count_pattern` dispatches to the polynomial acyclic DP or the
core-based cyclic counter, and handles disconnected patterns by
multiplying per-component counts (the join of disconnected components is
their Cartesian product).  Cyclic cores default to the vectorized
match-frame join counter; ``impl="python"`` selects the legacy
backtracker (the differential-testing reference).
"""

from __future__ import annotations

from repro.engine.acyclic_dp import count_acyclic
from repro.engine.backtracking import COUNT_IMPLS, count_general, two_core_edges
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = ["count_pattern"]


def _components(pattern: QueryPattern) -> list[QueryPattern]:
    remaining = set(range(len(pattern)))
    parts: list[QueryPattern] = []
    while remaining:
        seed = min(remaining)
        component = {seed}
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            for var in pattern.edges[current].variables():
                for neighbor in pattern.edges_at(var):
                    if neighbor in remaining and neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
        remaining -= component
        parts.append(pattern.subpattern(sorted(component)))
    return parts


def count_pattern(
    graph: LabeledDiGraph,
    pattern: QueryPattern,
    budget: int | None = None,
    impl: str | None = None,
) -> float:
    """Exact homomorphism (join-output) count of ``pattern`` in ``graph``.

    ``budget`` bounds counting work on cyclic patterns and raises
    :class:`repro.errors.CountBudgetExceeded` when exhausted.  ``impl``
    selects the cyclic-core counter (``"vectorized"``, the default, or
    the legacy ``"python"`` backtracker); acyclic components always use
    the polynomial tree DP.

    The budget *unit* follows the impl: the backtracker charges one per
    candidate expansion, the vectorized counter one per materialized
    frame row (including the first core relation's rows, charged
    upfront).  The magnitudes are comparable — both scale with the
    intermediate-result sizes of the core join — but they are not equal,
    so a budget tuned precisely to one impl's metric may cut off at a
    different point under the other.  Budgets exist to bound runaway
    work (the paper's per-query timeouts), not to be exact work meters;
    pass ``impl="python"`` to keep the legacy metric exactly.
    """
    if impl is None:
        impl = "vectorized"
    elif impl not in COUNT_IMPLS:
        raise ValueError(f"impl must be one of {COUNT_IMPLS}, got {impl!r}")
    for label in pattern.labels:
        if label not in graph:
            return 0.0
    total = 1.0
    for component in _components(pattern):
        if two_core_edges(component):
            total *= count_general(graph, component, budget=budget, impl=impl)
        else:
            total *= count_acyclic(graph, component)
        if total == 0.0:
            return 0.0
    return total
