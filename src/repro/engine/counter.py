"""Front door for exact cardinality computation.

:func:`count_pattern` dispatches to the polynomial acyclic DP or the
core-based backtracking counter, and handles disconnected patterns by
multiplying per-component counts (the join of disconnected components is
their Cartesian product).
"""

from __future__ import annotations

from repro.engine.acyclic_dp import count_acyclic
from repro.engine.backtracking import count_general, two_core_edges
from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = ["count_pattern"]


def _components(pattern: QueryPattern) -> list[QueryPattern]:
    remaining = set(range(len(pattern)))
    parts: list[QueryPattern] = []
    while remaining:
        seed = min(remaining)
        component = {seed}
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            for var in pattern.edges[current].variables():
                for neighbor in pattern.edges_at(var):
                    if neighbor in remaining and neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
        remaining -= component
        parts.append(pattern.subpattern(sorted(component)))
    return parts


def count_pattern(
    graph: LabeledDiGraph,
    pattern: QueryPattern,
    budget: int | None = None,
) -> float:
    """Exact homomorphism (join-output) count of ``pattern`` in ``graph``.

    ``budget`` bounds backtracking work on cyclic patterns and raises
    :class:`repro.errors.CountBudgetExceeded` when exhausted.
    """
    for label in pattern.labels:
        if label not in graph:
            return 0.0
    total = 1.0
    for component in _components(pattern):
        if two_core_edges(component):
            total *= count_general(graph, component, budget=budget)
        else:
            total *= count_acyclic(graph, component)
        if total == 0.0:
            return 0.0
    return total
