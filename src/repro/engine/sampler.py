"""Random sampling over labeled graphs.

Two consumers need randomised access to the data graph:

* workload generation (§6.1 generates cyclic query instances "by randomly
  matching each edge of the query template one at a time in the dataset"),
* the cycle-closing-rate statistics of ``CEG_OCR`` (§4.3 samples paths by
  random walks).

:class:`CombinedAdjacency` provides label-agnostic adjacency (all labels
merged) with numpy-backed sorted arrays; :class:`PatternSampler` samples
template instances and supplies the random-walk primitive.
"""

from __future__ import annotations

import random

import numpy as np

from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryEdge, QueryPattern
from repro.query.shape import spanning_tree_and_closures

__all__ = ["CombinedAdjacency", "PatternSampler"]


class CombinedAdjacency:
    """All-label adjacency with O(log m) slice lookups.

    Keeps every edge as ``(src, dst, label_index)`` twice: once sorted by
    src (outgoing view) and once by dst (incoming view).
    """

    def __init__(self, graph: LabeledDiGraph):
        self.graph = graph
        self.label_names = list(graph.labels)
        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        lids: list[np.ndarray] = []
        for lid, label in enumerate(self.label_names):
            relation = graph.relation(label)
            srcs.append(relation.src_by_src)
            dsts.append(relation.dst_by_src)
            lids.append(np.full(relation.size, lid, dtype=np.int64))
        if srcs:
            src = np.concatenate(srcs)
            dst = np.concatenate(dsts)
            lab = np.concatenate(lids)
        else:
            src = dst = lab = np.empty(0, dtype=np.int64)
        out_order = np.argsort(src, kind="stable")
        self.out_src = src[out_order]
        self.out_dst = dst[out_order]
        self.out_lab = lab[out_order]
        in_order = np.argsort(dst, kind="stable")
        self.in_src = src[in_order]
        self.in_dst = dst[in_order]
        self.in_lab = lab[in_order]
        self.num_edges = int(src.shape[0])

    def out_slice(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """(destinations, label indexes) of edges leaving ``vertex``."""
        lo = np.searchsorted(self.out_src, vertex, side="left")
        hi = np.searchsorted(self.out_src, vertex, side="right")
        return self.out_dst[lo:hi], self.out_lab[lo:hi]

    def in_slice(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """(sources, label indexes) of edges entering ``vertex``."""
        lo = np.searchsorted(self.in_dst, vertex, side="left")
        hi = np.searchsorted(self.in_dst, vertex, side="right")
        return self.in_src[lo:hi], self.in_lab[lo:hi]

    def random_edge(self, rng: random.Random) -> tuple[int, int, str] | None:
        """A uniformly random edge as ``(src, dst, label)``."""
        if self.num_edges == 0:
            return None
        index = rng.randrange(self.num_edges)
        return (
            int(self.out_src[index]),
            int(self.out_dst[index]),
            self.label_names[int(self.out_lab[index])],
        )

    def labels_between(self, u: int, v: int) -> list[str]:
        """Labels of edges from ``u`` to ``v``."""
        dsts, labs = self.out_slice(u)
        mask = dsts == v
        return [self.label_names[int(l)] for l in labs[mask]]


class PatternSampler:
    """Samples concrete instances of query templates from a graph."""

    def __init__(self, graph: LabeledDiGraph, seed: int = 0):
        self.graph = graph
        self.adjacency = CombinedAdjacency(graph)
        self.rng = random.Random(seed)

    def sample_instance(
        self, template: QueryPattern, max_tries: int = 200
    ) -> QueryPattern | None:
        """One non-empty instance of ``template`` (labels filled in).

        Matches template edges one at a time along a spanning walk; cycle
        closure edges require an actual data edge between the two bound
        endpoints.  Returns None after ``max_tries`` failures (e.g. the
        graph has no occurrence of the shape).
        """
        tree, closures = spanning_tree_and_closures(template)
        order = tree + closures
        for _ in range(max_tries):
            instance = self._try_once(template, order)
            if instance is not None:
                return instance
        return None

    def _try_once(
        self, template: QueryPattern, order: list[int]
    ) -> QueryPattern | None:
        binding: dict[str, int] = {}
        labels: dict[int, str] = {}
        for index in order:
            edge = template.edges[index]
            src_bound = edge.src in binding
            dst_bound = edge.dst in binding
            if src_bound and dst_bound:
                found = self.adjacency.labels_between(
                    binding[edge.src], binding[edge.dst]
                )
                if not found:
                    return None
                labels[index] = self.rng.choice(found)
            elif src_bound:
                dsts, labs = self.adjacency.out_slice(binding[edge.src])
                if dsts.size == 0:
                    return None
                pick = self.rng.randrange(dsts.size)
                binding[edge.dst] = int(dsts[pick])
                labels[index] = self.adjacency.label_names[int(labs[pick])]
            elif dst_bound:
                srcs, labs = self.adjacency.in_slice(binding[edge.dst])
                if srcs.size == 0:
                    return None
                pick = self.rng.randrange(srcs.size)
                binding[edge.src] = int(srcs[pick])
                labels[index] = self.adjacency.label_names[int(labs[pick])]
            else:
                picked = self.adjacency.random_edge(self.rng)
                if picked is None:
                    return None
                u, v, label = picked
                binding[edge.src] = u
                binding[edge.dst] = v
                labels[index] = label
        return QueryPattern(
            QueryEdge(e.src, e.dst, labels[i])
            for i, e in enumerate(template.edges)
        )

    def random_walk_closure(
        self,
        first_label: str,
        last_label: str,
        closing_label: str,
        directions: tuple[bool, ...],
        closing_forward: bool,
        samples: int,
    ) -> tuple[int, int]:
        """Sample open paths and count how many close into a cycle.

        The open path has ``len(directions)`` steps; step ``i`` goes
        forward (along edge direction) iff ``directions[i]``.  The first
        step must use ``first_label`` and the last step ``last_label``;
        intermediate steps use any label (the paper samples "paths that
        start from E_{i-1} and end with E_{i+1}" via random walks).  A
        path closes if a ``closing_label`` edge connects its last vertex
        back to its first (orientation per ``closing_forward``: True
        means last->first).

        Returns ``(closed, completed)`` — completed counts walks that
        reached the final vertex.
        """
        if first_label not in self.graph or last_label not in self.graph:
            return (0, 0)
        closing_relation = (
            self.graph.relation(closing_label)
            if closing_label in self.graph
            else None
        )
        first_relation = self.graph.relation(first_label)
        completed = 0
        closed = 0
        steps = len(directions)
        for _ in range(samples):
            pick = self.rng.randrange(first_relation.size)
            u = int(first_relation.src_by_src[pick])
            v = int(first_relation.dst_by_src[pick])
            start, current = (u, v) if directions[0] else (v, u)
            ok = True
            for step in range(1, steps):
                forward = directions[step]
                want_label = last_label if step == steps - 1 else None
                if want_label is None:
                    if forward:
                        nbrs, _ = self.adjacency.out_slice(current)
                    else:
                        nbrs, _ = self.adjacency.in_slice(current)
                else:
                    relation = self.graph.relation(want_label)
                    if forward:
                        nbrs = relation.out_neighbors(current)
                    else:
                        nbrs = relation.in_neighbors(current)
                if nbrs.size == 0:
                    ok = False
                    break
                current = int(nbrs[self.rng.randrange(nbrs.size)])
            if not ok:
                continue
            completed += 1
            if closing_relation is None:
                continue
            if closing_forward:
                hit = closing_relation.has_edge(
                    current, start, self.graph.num_vertices
                )
            else:
                hit = closing_relation.has_edge(
                    start, current, self.graph.num_vertices
                )
            if hit:
                closed += 1
        return (closed, completed)
