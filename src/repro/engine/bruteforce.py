"""Brute-force homomorphism counting (test oracle only).

Enumerates every assignment of query variables to data vertices and
checks all atoms.  Exponential — use only on graphs with a handful of
vertices.  The production counters in :mod:`repro.engine.counter` are
property-tested against this module.
"""

from __future__ import annotations

from itertools import product

from repro.graph.digraph import LabeledDiGraph
from repro.query.pattern import QueryPattern

__all__ = ["count_bruteforce"]


def count_bruteforce(graph: LabeledDiGraph, pattern: QueryPattern) -> int:
    """Exact homomorphism (join) count by exhaustive enumeration."""
    variables = pattern.variables
    total = 0
    domain = range(graph.num_vertices)
    for assignment in product(domain, repeat=len(variables)):
        binding = dict(zip(variables, assignment))
        ok = True
        for edge in pattern.edges:
            relation = (
                graph.relation(edge.label) if edge.label in graph else None
            )
            if relation is None or not relation.has_edge(
                binding[edge.src], binding[edge.dst], graph.num_vertices
            ):
                ok = False
                break
        if ok:
            total += 1
    return total
