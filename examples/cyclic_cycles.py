"""Large cyclic queries: why CEG_O overestimates and how CEG_OCR fixes it.

Reproduces §4.3's insight on one dataset: a 4-cycle query estimated
through ``CEG_O`` is really estimated as a broken-open 4-*path* (paths
vastly outnumber cycles, so the estimate balloons); ``CEG_OCR`` swaps
the final hop's weight for a sampled cycle-closing probability and the
estimate lands near the truth.

Run with: ``python examples/cyclic_cycles.py [dataset] [scale]``
"""

import sys

from repro.catalog import CycleClosingRates, MarkovTable
from repro.core import build_ceg_o, build_ceg_ocr, estimate_from_ceg
from repro.datasets import load_dataset
from repro.engine import PatternSampler, count_pattern
from repro.query import templates


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "hetionet"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1
    graph = load_dataset(dataset, scale)
    print(f"dataset {dataset} (scale {scale}): {graph}\n")

    sampler = PatternSampler(graph, seed=5)
    markov = MarkovTable(graph, h=3)
    rates = CycleClosingRates(graph, seed=5, samples=1500)

    header = (
        f"{'template':12s} {'true':>12s} {'CEG_O max':>14s} "
        f"{'CEG_OCR max':>14s} {'CEG_O q':>9s} {'OCR q':>9s}"
    )
    print(header)
    shown = 0
    for template_name, template in (
        ("4-cycle", templates.cycle(4)),
        ("5-diamond", templates.diamond_with_chord()),
        ("6-cycle", templates.cycle(6)),
    ):
        for attempt in range(5):
            instance = sampler.sample_instance(template, max_tries=100)
            if instance is None:
                continue
            truth = count_pattern(graph, instance, budget=3_000_000)
            if truth <= 0:
                continue
            plain = estimate_from_ceg(
                build_ceg_o(instance, markov), "max", "max"
            )
            closed = estimate_from_ceg(
                build_ceg_ocr(instance, markov, rates), "max", "max"
            )

            def q(value: float) -> float:
                if value <= 0:
                    return float("inf")
                return max(value / truth, truth / value)

            print(
                f"{template_name:12s} {truth:12.0f} {plain:14.1f} "
                f"{closed:14.1f} {q(plain):9.2f} {q(closed):9.2f}"
            )
            shown += 1
            break
    if shown == 0:
        print("(no cyclic instances found at this scale; try a larger one)")
    else:
        print(
            "\nCEG_O estimates the broken-open path (overestimates);"
            "\nCEG_OCR's sampled closing rates pull it back toward the truth."
        )


if __name__ == "__main__":
    main()
