"""Plan quality: better cardinality estimates make better join orders.

Reproduces the Figure-15 mechanism on one dataset: inject each
estimator's cardinalities into a Selinger-style DP optimizer, execute
the chosen left-deep plans for real on the vectorised join engine, and
compare the work done (intermediate tuples) against the plan chosen by
the RDF-3X-style magic-constant estimator.

Run with: ``python examples/plan_quality.py [dataset] [scale]``
"""

import math
import sys

from repro.baselines import Rdf3xDefaultEstimator
from repro.catalog import MarkovTable
from repro.core import all_nine_estimators
from repro.datasets import acyclic_workload, load_dataset
from repro.planner import execute_plan, optimize_left_deep


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "dblp"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.08
    graph = load_dataset(dataset, scale)
    workload = acyclic_workload(graph, per_template=2, seed=21, sizes=(6,))
    print(f"dataset {dataset}: {graph}, {len(workload)} queries\n")

    markov = MarkovTable(graph, h=2)
    estimators = all_nine_estimators(markov)
    baseline = Rdf3xDefaultEstimator(graph)

    totals: dict[str, float] = {name: 0.0 for name in estimators}
    baseline_total = 0.0
    for query in workload:
        base_plan = optimize_left_deep(query.pattern, baseline.estimate)
        base_run = execute_plan(graph, query.pattern, base_plan.order)
        baseline_total += base_run.cost
        for name, estimator in estimators.items():
            plan = optimize_left_deep(query.pattern, estimator.estimate)
            run = execute_plan(graph, query.pattern, plan.order)
            totals[name] += run.cost

    print(f"{'estimator':14s} {'total tuples':>14s} {'speedup vs rdf3x':>18s}")
    print(f"{'rdf3x-default':14s} {baseline_total:14.0f} {'1.00x':>18s}")
    for name, cost in sorted(totals.items(), key=lambda kv: kv[1]):
        speedup = baseline_total / max(cost, 1.0)
        print(f"{name:14s} {cost:14.0f} {speedup:17.2f}x")
    best = min(totals, key=lambda n: totals[n])
    print(
        f"\nbest plans come from {best!r} "
        f"({math.log10(baseline_total / max(totals[best], 1.0)):.2f} "
        "orders of magnitude less work than the magic-constant baseline)"
    )


if __name__ == "__main__":
    main()
