"""Acyclic-workload study: which heuristic should your optimizer use?

Reproduces the Figure-9 methodology end to end on one dataset: generate
the JOB-style workload, run the full §4.2 estimator space plus the P*
oracle, and print the signed-log-q-error distribution with ASCII
gauges.  The expected conclusion (the paper's headline): pick
``max-hop-max`` for acyclic queries.

Run with: ``python examples/acyclic_study.py [dataset] [scale]``
"""

import sys

from repro.catalog import MarkovTable
from repro.core import build_ceg_o, distinct_estimates, estimate_from_ceg
from repro.datasets import job_like_workload, load_dataset
from repro.experiments import signed_log_bar, summarize
from repro.experiments.metrics import q_error


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "imdb"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.08
    graph = load_dataset(dataset, scale)
    print(f"dataset {dataset} (scale {scale}): {graph}")

    workload = job_like_workload(graph, per_template=3, seed=11)
    print(f"JOB-style workload: {len(workload)} queries\n")

    markov = MarkovTable(graph, h=3)
    names = [
        f"{hop}-{aggr}"
        for hop in ("max-hop", "min-hop", "all-hops")
        for aggr in ("max", "min", "avg")
    ]
    choices = [
        (hop, aggr)
        for hop in ("max", "min", "all")
        for aggr in ("max", "min", "avg")
    ]
    pairs = {name: [] for name in names + ["P*"]}
    for query in workload:
        ceg = build_ceg_o(query.pattern, markov)
        for name, (hop, aggr) in zip(names, choices):
            pairs[name].append(
                (estimate_from_ceg(ceg, hop, aggr), query.true_cardinality)
            )
        best = min(
            distinct_estimates(ceg),
            key=lambda e: q_error(e, query.true_cardinality),
        )
        pairs["P*"].append((best, query.true_cardinality))

    print(f"{'estimator':14s} {'under':>6s} {'exact':>6s} {'over':>5s}  "
          f"median signed log10 q")
    for name in names + ["P*"]:
        summary = summarize(pairs[name])
        print(
            f"{name:14s} "
            f"{100 * summary.underestimated_fraction:5.0f}% "
            f"{'':6s}{'':5s}  "
            f"{signed_log_bar(summary.median)}  {summary.median:+.2f}"
        )
    print("\n(negative = underestimation; the paper's conclusion is that")
    print(" max-hop-max offsets underestimation best on acyclic queries)")


if __name__ == "__main__":
    main()
