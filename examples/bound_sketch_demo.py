"""Bound sketch (§5.2.1/5.2.2): partitioning tightens both estimator families.

For one dataset and a handful of acyclic queries, sweeps the
partitioning budget K and prints how the MOLP bound and the
max-hop-max estimate move toward the truth — the Figure-12 experiment
in miniature.

Run with: ``python examples/bound_sketch_demo.py [dataset] [scale]``
"""

import sys

from repro.core import molp_sketch_bound, optimistic_sketch_estimate
from repro.datasets import job_like_workload, load_dataset
from repro.experiments.metrics import q_error


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "hetionet"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.06
    graph = load_dataset(dataset, scale)
    workload = job_like_workload(graph, per_template=1, seed=41)[:5]
    budgets = (1, 4, 16)
    print(f"dataset {dataset}: {graph}, {len(workload)} queries\n")

    for query in workload:
        truth = query.true_cardinality
        print(f"{query.name}  (true = {truth:.0f})")
        print(f"  {'K':>4s} {'MOLP bound':>14s} {'q':>8s} "
              f"{'max-hop-max':>14s} {'q':>8s}")
        for budget in budgets:
            bound = molp_sketch_bound(graph, query.pattern, budget, h=2)
            estimate = optimistic_sketch_estimate(
                graph, query.pattern, budget, h=2
            )
            print(
                f"  {budget:4d} {bound:14.1f} {q_error(bound, truth):8.2f} "
                f"{estimate:14.1f} {q_error(estimate, truth):8.2f}"
            )
        print()
    print("The MOLP bound shrinks monotonically with K (it is provably")
    print("never worse); the optimistic estimate usually tightens too —")
    print("tuples hashing to different buckets can never join (§5.2.2).")


if __name__ == "__main__":
    main()
