"""Pessimistic estimators through the CEG lens (§5).

Demonstrates, on live data:

* MOLP solved three ways — the scipy LP, the ``CEG_M`` shortest path
  (Theorem 5.1), and CBS's brute-force bounding formulas (Appendix B) —
  all agreeing on acyclic queries over binary relations;
* the bound hierarchy true-count <= MOLP <= DBPLP and MOLP <= AGM;
* Appendix C's warning: CBS's formulas are *not* safe on cyclic
  queries (the identity-relations triangle drives it below the truth).

Run with: ``python examples/pessimistic_bounds.py``
"""

from repro import LabeledDiGraph, count_pattern, generate_graph, parse_pattern
from repro.catalog import DegreeCatalog
from repro.core import agm_bound, cbs_bound, dbplp_bound, molp_bound
from repro.core.molp import molp_lp_bound


def main() -> None:
    graph = generate_graph(
        num_vertices=800, num_edges=5000, num_labels=5, seed=9, closure=0.25
    )
    print(f"data graph: {graph}\n")
    catalog = DegreeCatalog(graph, h=2)

    queries = {
        "3-path": parse_pattern("a -[L0]-> b -[L1]-> c -[L2]-> d"),
        "fork": parse_pattern("a -[L0]-> b -[L1]-> c, b -[L2]-> d"),
        "star": parse_pattern("a -[L0]-> b, a -[L1]-> c, a -[L2]-> d"),
    }
    header = (
        f"{'query':8s} {'true':>10s} {'MOLP(path)':>12s} {'MOLP(LP)':>12s} "
        f"{'CBS':>12s} {'DBPLP':>14s} {'AGM':>14s}"
    )
    print(header)
    catalog_h1 = DegreeCatalog(graph, h=1)
    for name, query in queries.items():
        truth = count_pattern(graph, query)
        path_bound = molp_bound(query, catalog_h1)
        lp_bound = molp_lp_bound(query, catalog_h1)
        cbs = cbs_bound(query, catalog_h1)
        dbplp = dbplp_bound(query, catalog_h1)
        agm = agm_bound(query, graph)
        print(
            f"{name:8s} {truth:10.0f} {path_bound:12.0f} {lp_bound:12.0f} "
            f"{cbs:12.0f} {dbplp:14.0f} {agm:14.0f}"
        )
    print("\nTheorem 5.1: MOLP(path) == MOLP(LP); Appendix B: == CBS on")
    print("acyclic binary queries; Cor D.1: MOLP <= DBPLP; and MOLP <= AGM.")

    # §5.1.1: feeding 2-join degree statistics tightens the bound.
    query = queries["3-path"]
    print(
        f"\nMOLP with base-relation stats only : "
        f"{molp_bound(query, catalog_h1):14.0f}"
    )
    print(
        f"MOLP with 2-join degree statistics : "
        f"{molp_bound(query, catalog):14.0f}"
    )

    # Appendix C: the CBS counterexample.
    n = 30
    identity = LabeledDiGraph.from_triples(
        [(i, i, label) for i in range(n) for label in ("R", "S", "T")],
        num_vertices=n,
    )
    triangle = parse_pattern("a -[R]-> b -[S]-> c -[T]-> a")
    id_catalog = DegreeCatalog(identity, h=1)
    print(
        f"\nAppendix C triangle: true={count_pattern(identity, triangle):.0f}, "
        f"MOLP={molp_bound(triangle, id_catalog):.0f} (safe), "
        f"CBS={cbs_bound(triangle, id_catalog):.0f} (UNSAFE underestimate)"
    )


if __name__ == "__main__":
    main()
