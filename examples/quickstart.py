"""Quickstart: build a CEG, inspect its paths, estimate a query.

Walks through the paper's core ideas on a small synthetic graph:

1. load a dataset and write a subgraph query in arrow syntax;
2. build the Markov table (the summary statistics) and ``CEG_O``;
3. enumerate the distinct path estimates (the "space of formulas");
4. compare the nine §4.2 heuristics against the exact answer;
5. compute the pessimistic MOLP bound two ways (Theorem 5.1 live).

Run with: ``python examples/quickstart.py``
"""

from repro import (
    DegreeCatalog,
    MarkovTable,
    all_nine_estimators,
    build_ceg_o,
    count_pattern,
    generate_graph,
    molp_bound,
    parse_pattern,
)
from repro.core import distinct_estimates
from repro.core.molp import molp_lp_bound


def main() -> None:
    # A small synthetic labeled graph (seeded: runs are reproducible).
    graph = generate_graph(
        num_vertices=2000,
        num_edges=12000,
        num_labels=8,
        seed=42,
        closure=0.2,
    )
    print(f"data graph: {graph}")

    # The running-example shape: a path feeding a fork (like Q5f).
    query = parse_pattern(
        "a1 -[L0]-> a2 -[L1]-> a3, a3 -[L2]-> a4, a3 -[L3]-> a5"
    )
    truth = count_pattern(graph, query)
    print(f"query: {query}")
    print(f"true cardinality: {truth:.0f}\n")

    # Summary statistics: a Markov table of size h=2 (lazy, like the
    # paper's workload-specific tables).
    markov = MarkovTable(graph, h=2)

    # CEG_O: sub-queries as vertices, average-degree extension rates.
    ceg = build_ceg_o(query, markov)
    print(f"CEG_O: {len(ceg.nodes)} vertices, {ceg.num_edges} edges")
    estimates = distinct_estimates(ceg)
    print(f"distinct path estimates ({len(estimates)}):")
    for value in estimates:
        marker = " <- closest" if value == min(
            estimates, key=lambda e: max(e / truth, truth / e)
        ) else ""
        print(f"  {value:14.1f}{marker}")
    print()

    # The nine heuristics of §4.2.
    print(f"{'estimator':14s} {'estimate':>14s} {'q-error':>10s}")
    for name, estimator in all_nine_estimators(markov).items():
        value = estimator.estimate(query)
        q = max(value / truth, truth / value) if truth and value else float("inf")
        print(f"{name:14s} {value:14.1f} {q:10.2f}")
    print()

    # The pessimistic MOLP bound: shortest path in CEG_M == the LP.
    catalog = DegreeCatalog(graph, h=2)
    combinatorial = molp_bound(query, catalog)
    numeric = molp_lp_bound(query, catalog)
    print(f"MOLP bound via CEG_M min path : {combinatorial:14.1f}")
    print(f"MOLP bound via scipy linprog  : {numeric:14.1f}")
    print(f"(both upper-bound the truth {truth:.0f} — Theorem 5.1 live)")


if __name__ == "__main__":
    main()
