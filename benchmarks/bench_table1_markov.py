"""Table 1: an example Markov table (h=2)."""

from _common import run_once, save_result

from repro.experiments import table1_markov_example


def test_table1_markov_example(benchmark):
    rows, rendered = run_once(benchmark, table1_markov_example)
    save_result("table1_markov", rendered)
    assert len(rows) == 3
    assert all(row["|Path|"] > 0 for row in rows)
