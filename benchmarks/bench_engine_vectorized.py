"""Vectorized vs legacy cyclic counting on fig10/11-style patterns.

Times exact homomorphism counting of triangles through 6-cycles (the
Figure 10/11 cyclic shapes) on the synthetic Table-2 presets, comparing
the match-frame join counter (``impl="vectorized"``, the serving
default) against the per-candidate Python backtracker it replaced
(``impl="python"``).  Counts must agree exactly; the acceptance bar is a
>= 5x geometric-mean speedup (>= 1x in ``--quick`` CI-smoke mode, which
only guards against the vectorized path regressing below the legacy
one).

Runs standalone (no pytest): ``python benchmarks/bench_engine_vectorized.py
[--quick] [--json PATH]``.  Exit code 0 iff every scenario matched
exactly and the speedup bar held.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import load_dataset  # noqa: E402
from repro.engine import count_pattern  # noqa: E402
from repro.query import templates  # noqa: E402


def _cycle_scenarios(graph, dataset: str):
    """Triangle..6-cycle patterns labeled by the preset's top relations."""
    labels = sorted(
        graph.labels, key=lambda lab: (-graph.cardinality(lab), lab)
    )
    for k in (3, 4, 5, 6):
        pattern = templates.cycle(k).with_labels(
            [labels[i % 3] for i in range(k)]
        )
        yield f"{dataset}/cycle{k}", pattern


def _time_count(graph, pattern, impl: str, repeats: int) -> tuple[float, float]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = count_pattern(graph, pattern, impl=impl)
        best = min(best, time.perf_counter() - started)
    return value, best


def run(quick: bool = False) -> dict:
    """Run every scenario; returns the machine-readable report."""
    scale = 0.06 if quick else 0.12
    repeats = 1 if quick else 2
    datasets = ("hetionet",) if quick else ("hetionet", "epinions")
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, scale)
        for name, pattern in _cycle_scenarios(graph, dataset):
            legacy_count, legacy_s = _time_count(
                graph, pattern, "python", repeats
            )
            vector_count, vector_s = _time_count(
                graph, pattern, "vectorized", repeats
            )
            assert vector_count == legacy_count, (
                f"{name}: vectorized {vector_count} != legacy {legacy_count}"
            )
            rows.append(
                {
                    "scenario": name,
                    "count": legacy_count,
                    "legacy_seconds": legacy_s,
                    "vectorized_seconds": vector_s,
                    "speedup": legacy_s / vector_s,
                }
            )
    geomean = math.exp(
        sum(math.log(row["speedup"]) for row in rows) / len(rows)
    )
    bar = 1.0 if quick else 5.0
    return {
        "benchmark": "engine_vectorized",
        "mode": "quick" if quick else "full",
        "scale": scale,
        "speedup_bar": bar,
        "geomean_speedup": geomean,
        "ok": geomean >= bar,
        "scenarios": rows,
    }


def render(report: dict) -> str:
    lines = [
        "Vectorized cyclic counting vs legacy backtracking "
        f"(mode={report['mode']}, scale={report['scale']})",
    ]
    for row in report["scenarios"]:
        lines.append(
            f"  {row['scenario']:<22} count={row['count']:>12g}  "
            f"legacy={row['legacy_seconds'] * 1000:9.1f}ms  "
            f"vectorized={row['vectorized_seconds'] * 1000:8.1f}ms  "
            f"speedup={row['speedup']:7.1f}x"
        )
    lines.append(
        f"  geomean speedup      : {report['geomean_speedup']:.1f}x "
        f"(bar: >= {report['speedup_bar']:.0f}x)"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller scale, bar is only 'not slower'",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the report as JSON"
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    print(render(report))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    if not report["ok"]:
        print(
            f"FAIL: geomean speedup {report['geomean_speedup']:.2f}x "
            f"below the {report['speedup_bar']:.0f}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
