"""Ablation: the combinatorial MOLP solution vs the numeric LP.

Observation 2 of §5.1 says CEG_M lets MOLP be solved with a shortest
path instead of an LP solver; this bench demonstrates both agreement
and the speed advantage of the combinatorial route, plus the CBS
brute-force equivalence (Appendix B).
"""

import pytest
from _common import run_once, save_result

from repro.catalog import DegreeCatalog
from repro.core import cbs_bound, molp_bound, molp_lp_bound
from repro.datasets import job_like_workload, load_dataset
from repro.experiments.report import format_table


def _setup():
    graph = load_dataset("dblp", 0.05)
    workload = job_like_workload(graph, per_template=1, seed=3)
    catalog = DegreeCatalog(graph, h=1)
    return graph, workload, catalog


def test_molp_dijkstra_vs_lp(benchmark):
    graph, workload, catalog = _setup()

    def run():
        rows = []
        for query in workload:
            combinatorial = molp_bound(query.pattern, catalog)
            numeric = molp_lp_bound(query.pattern, catalog)
            cbs = cbs_bound(query.pattern, catalog)
            rows.append(
                {
                    "query": query.name,
                    "CEG_M min path": combinatorial,
                    "MOLP LP": numeric,
                    "CBS": cbs,
                    "true": query.true_cardinality,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "theory_ablation",
        format_table(rows, title="Theorem 5.1 / Appendix B: three routes to MOLP"),
    )
    for row in rows:
        assert row["MOLP LP"] == pytest.approx(
            row["CEG_M min path"], rel=1e-6, abs=1e-9
        )
        assert row["CBS"] == pytest.approx(row["CEG_M min path"], rel=1e-9)
        assert row["CEG_M min path"] >= row["true"] - 1e-6


def test_molp_dijkstra_speed(benchmark):
    """Time just the combinatorial solution (the production path)."""
    graph, workload, catalog = _setup()
    patterns = [q.pattern for q in workload]

    def run():
        return [molp_bound(p, catalog) for p in patterns]

    bounds = benchmark(run)
    assert all(b >= 0 for b in bounds)
