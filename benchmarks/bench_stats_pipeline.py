"""Offline statistics pipeline: cold-start lazy building vs bulk + load.

The deployment claim (§6 / ISSUE 2): statistics construction must not
sit on the request path.  The bench serves the fig9/10-style workloads
(acyclic + cyclic template instances, with the cycle-closing-rate
statistics the cyclic queries' ``+ocr`` estimators need) through

* a **lazy cold start** — a fresh session whose Markov table, degree
  catalog and cycle-rate table count patterns / materialise match
  tables / sample random walks through the base graph on first
  request, and
* a **bulk cold start** — loading a prebuilt artifact directory and
  serving graph-free (the offline build itself is reported separately;
  it is not on the serving path).

Both paths produce bit-identical estimates (asserted).  The acceptance
bar is bulk (load + serve) >= 2x faster than lazy; the artifact sizes
per catalog are reported against the paper's sub-MB tables.
"""

import json
import time

from _common import run_once, save_result

from repro.catalog.cycle_rates import CycleClosingRates
from repro.datasets import acyclic_workload, cyclic_workload, load_dataset
from repro.service import EstimationSession
from repro.stats import (
    StatisticsStore,
    StatsBuildConfig,
    build_statistics,
    inspect_artifact,
)

NINE = (
    "max-hop-max", "max-hop-min", "max-hop-avg",
    "min-hop-max", "min-hop-min", "min-hop-avg",
    "all-hops-max", "all-hops-min", "all-hops-avg",
)
SPECS = NINE + ("MOLP",) + tuple(f"{name}+ocr" for name in NINE[:3])
CYCLE_SEED = 21


def _workload(graph):
    base = acyclic_workload(graph, per_template=2, seed=13, sizes=(6, 7))
    base += cyclic_workload(graph, per_template=2, seed=13)
    return [query.pattern for query in base]


def test_stats_pipeline_cold_start(benchmark, tmp_path):
    graph = load_dataset("hetionet", 0.1)
    patterns = _workload(graph)
    assert len(patterns) >= 12
    directory = tmp_path / "artifact"

    def run():
        # Offline build plane (not on the serving path).
        build_started = time.perf_counter()
        store = build_statistics(
            graph,
            StatsBuildConfig(
                h=3, molp_h=2, cycle_rates=True, cycle_seed=CYCLE_SEED
            ),
            workload=patterns,
        )
        store.save(directory)
        build_seconds = time.perf_counter() - build_started

        # Lazy cold start: statistics are built on the request path.
        lazy_started = time.perf_counter()
        lazy = EstimationSession(
            graph, h=3, molp_h=2,
            cycle_rates=CycleClosingRates(graph, seed=CYCLE_SEED),
        )
        lazy_batch = lazy.estimate_batch(patterns, specs=SPECS, max_workers=1)
        lazy_seconds = time.perf_counter() - lazy_started

        # Bulk cold start: load the artifact, serve graph-free.
        bulk_started = time.perf_counter()
        loaded = StatisticsStore.load(directory)
        bulk_batch = loaded.session().estimate_batch(
            patterns, specs=SPECS, max_workers=1
        )
        bulk_seconds = time.perf_counter() - bulk_started
        return lazy_batch, lazy_seconds, bulk_batch, bulk_seconds, build_seconds

    lazy_batch, lazy_seconds, bulk_batch, bulk_seconds, build_seconds = (
        run_once(benchmark, run)
    )

    report = inspect_artifact(directory)
    speedup = lazy_seconds / bulk_seconds
    lines = [
        "Stats pipeline cold start (fig9/10-style workload, hetionet 0.1)",
        f"  queries x estimators    : {len(patterns) * len(SPECS)}",
        f"  offline bulk build      : {build_seconds:8.3f} s  (off the serving path)",
        f"  lazy cold start         : {lazy_seconds:8.3f} s",
        f"  bulk load + serve       : {bulk_seconds:8.3f} s",
        f"  cold-start speedup      : {speedup:8.1f} x",
        f"  artifact total          : {report['total_bytes'] / 1e6:8.3f} MB",
        "  per-catalog sizes:",
    ]
    for name, info in sorted(report["files"].items()):
        size = info.get("bytes", 0)
        entries = info.get("entries")
        suffix = f"  ({entries} entries)" if entries is not None else ""
        lines.append(f"    {name:<26} {size / 1e3:10.1f} kB{suffix}")
    save_result("stats_pipeline", "\n".join(lines))
    print(json.dumps({"speedup": speedup}, indent=2))

    # Served estimates are bit-identical to the lazy path — including
    # the +ocr ones: build-time priming consumes the walk sampler's RNG
    # in the same canonical-query order a serial lazy serve does.
    assert lazy_batch.ok and bulk_batch.ok
    for lazy_item, bulk_item in zip(lazy_batch.items, bulk_batch.items):
        assert lazy_item.estimate == bulk_item.estimate

    # The paper's tables are sub-MB; ours must be too on this workload.
    assert report["total_bytes"] < 1_000_000

    # Acceptance bar: bulk build + load cold start >= 2x faster.
    assert speedup >= 2.0, f"cold-start speedup only {speedup:.2f}x"
