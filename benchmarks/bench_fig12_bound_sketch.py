"""Figure 12: bound-sketch partitioning budgets on max-hop-max and MOLP.

Paper shape: partitioning improves MOLP's accuracy monotonically-ish
with the budget (15-89% mean-accuracy gains), also helps the optimistic
estimator on Hetionet/Epinions, and the pessimistic estimates remain
orders of magnitude less accurate than the optimistic ones.
"""

from _common import metric, run_once, save_result

from repro.experiments import ExperimentConfig, figure12_bound_sketch

CONFIG = ExperimentConfig(
    scale=0.06,
    per_template=1,
    acyclic_sizes=(6,),
    sketch_budgets=(1, 4, 16),
    datasets=("imdb", "hetionet", "epinions"),
)


def test_fig12_bound_sketch(benchmark):
    rows, rendered = run_once(benchmark, lambda: figure12_bound_sketch(CONFIG))
    save_result("fig12_bound_sketch", rendered)
    datasets = sorted({row["dataset"] for row in rows})
    assert datasets
    budgets = sorted({row["K"] for row in rows})
    low, high = budgets[0], budgets[-1]
    improvements = 0
    for dataset in datasets:
        direct = metric(rows, "mean q", dataset=dataset, estimator="MOLP", K=low)
        sketched = metric(
            rows, "mean q", dataset=dataset, estimator="MOLP", K=high
        )
        # The sketch bound is clamped to never exceed the direct bound.
        assert sketched <= direct * 1.001
        if sketched < direct * 0.999:
            improvements += 1
    assert improvements >= 1, "bound sketch improved MOLP nowhere"
    # MOLP never underestimates, with or without the sketch.
    for dataset in datasets:
        for budget in budgets:
            assert metric(
                rows, "under%", dataset=dataset, estimator="MOLP", K=budget
            ) == 0.0
    # The sketch helps the optimistic estimator too, on at least one
    # dataset (§6.3: gains are data dependent — IMDb barely moves).
    optimistic_gains = sum(
        1
        for dataset in datasets
        if min(
            metric(rows, "mean q", dataset=dataset,
                   estimator="max-hop-max", K=budget)
            for budget in budgets[1:]
        )
        < metric(rows, "mean q", dataset=dataset,
                 estimator="max-hop-max", K=low)
    )
    assert optimistic_gains >= 1
