"""Figure 11: CEG_O vs CEG_OCR on queries with cycles of >= 4 atoms.

Paper shape: on CEG_O these queries are generally over-estimated and the
min aggregator becomes the best choice; CEG_OCR's closing rates remove
the overestimation so the max aggregator wins again, and CEG_OCR's
max-hop-max beats CEG_O's min-hop-min overall.
"""

from _common import by_key, metric, run_once, save_result

from repro.experiments import ExperimentConfig, figure11_large_cycles

CONFIG = ExperimentConfig(scale=0.08, per_template=3)


def test_fig11_large_cycles(benchmark):
    rows, rendered = run_once(benchmark, lambda: figure11_large_cycles(CONFIG))
    save_result("fig11_large_cycles", rendered)
    datasets = sorted({row["dataset"] for row in rows})
    assert datasets, "no dataset produced large-cycle queries"
    key = "mean(log q, -top10%)"

    # On CEG_O the estimates skew to overestimation: the under% of the
    # max aggregator is low on average.
    over_under = [
        metric(rows, "under%", dataset=d, ceg="CEG_O", estimator="max-hop-max")
        for d in datasets
        if by_key(rows, dataset=d, ceg="CEG_O", estimator="max-hop-max")
    ]
    assert sum(over_under) / len(over_under) < 50.0

    # CEG_OCR max-hop-max vs CEG_O min-hop-min: OCR at least as accurate
    # on average (the paper's headline for this figure).
    ocr_scores = []
    plain_scores = []
    for dataset in datasets:
        if not by_key(rows, dataset=dataset, ceg="CEG_OCR"):
            continue
        ocr_scores.append(
            metric(rows, key, dataset=dataset, ceg="CEG_OCR",
                   estimator="max-hop-max")
        )
        plain_scores.append(
            metric(rows, key, dataset=dataset, ceg="CEG_O",
                   estimator="min-hop-min")
        )
    assert ocr_scores
    mean_ocr = sum(ocr_scores) / len(ocr_scores)
    mean_plain = sum(plain_scores) / len(plain_scores)
    assert mean_ocr <= mean_plain * 1.2 + 0.1
