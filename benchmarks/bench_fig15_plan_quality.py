"""Figure 15: plan quality under injected cardinality estimates.

Paper shape: every one of the nine optimistic estimators produces plans
at least as good as the RDF-3X default estimator (median log-speedup
>= 0), and the max-aggregator estimators generally beat the min/avg
ones, mirroring their estimation accuracy.
"""

from _common import by_key, metric, run_once, save_result

from repro.experiments import ExperimentConfig, figure15_plan_quality

CONFIG = ExperimentConfig(
    scale=0.07,
    per_template=2,
    acyclic_sizes=(6, 7),
    datasets=("dblp", "watdiv"),
)


def test_fig15_plan_quality(benchmark):
    rows, rendered = run_once(benchmark, lambda: figure15_plan_quality(CONFIG))
    save_result("fig15_plan_quality", rendered)
    datasets = sorted({row["dataset"] for row in rows})
    assert datasets

    def mean_over(estimator: str, column: str) -> float:
        values = [
            metric(rows, column, dataset=d, estimator=estimator)
            for d in datasets
            if by_key(rows, dataset=d, estimator=estimator)
        ]
        return sum(values) / len(values)

    # Better estimates never hurt: the accurate estimators' plans are at
    # least as good as the magic-constant baseline's in the median.
    assert mean_over("max-hop-max", "median log10 speedup") >= -0.05
    # And max-hop-max plans are no worse than min-hop-min plans on mean.
    assert (
        mean_over("max-hop-max", "mean log10 speedup")
        >= mean_over("min-hop-min", "mean log10 speedup") - 0.1
    )
