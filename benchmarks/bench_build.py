"""Parallel, resumable statistics build on a million-edge graph.

The paper builds its summaries offline on graphs up to 65M edges; the
build plane must therefore saturate the hardware, not one core.  This
benchmark takes the ``synth1m`` preset (1.2M edges, 24 labels), runs
the full h=2 enumeration serially and with a worker pool, and checks
three things before reporting throughput:

* **byte-identity** — the parallel artifact's catalog files are
  byte-for-byte the serial ones;
* **resumability** — a build killed after level 1 (via
  ``stop_after_level``, the deterministic stand-in for ``kill -9``)
  resumes from its checkpoint without recounting the completed level
  and still lands on identical bytes;
* **speedup** — parallel vs serial wall-clock, gated only when the
  machine actually has the cores: the bar (>= 3x at ``--jobs 8``;
  >= 1.5x at ``--jobs 2`` in ``--quick``) is recorded as *skipped*,
  not passed, on boxes with fewer cores than the job count.

Runs standalone: ``python benchmarks/bench_build.py [--quick]
[--json PATH]``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import load_dataset  # noqa: E402
from repro.errors import BuildInterrupted  # noqa: E402
from repro.stats import StatsBuildConfig, build_statistics  # noqa: E402

#: Catalog files whose bytes must not depend on jobs/resume.  The
#: manifest is excluded (it records timings and resume provenance);
#: the flat layout packs every catalog into one deterministic NPZ plus
#: its metadata sidecar, so these two cover markov/degrees/sumrdf.
COMPARED_FILES = ["catalogs.npz", "catalogs.meta.json"]


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _catalog_bytes(store, directory: Path) -> dict[str, bytes]:
    directory.mkdir(parents=True, exist_ok=True)
    store.save(directory)
    return {
        name: (directory / name).read_bytes() for name in COMPARED_FILES
    }


def run(quick: bool = False) -> dict:
    import tempfile

    scale = 0.02 if quick else 1.0
    jobs = 2 if quick else 8
    graph = load_dataset("synth1m", scale)
    config = StatsBuildConfig(h=2, molp_h=2, baselines=False)
    cores = _available_cores()

    started = time.perf_counter()
    serial = build_statistics(graph, config, dataset_name="synth1m")
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = build_statistics(
        graph, config, dataset_name="synth1m", jobs=jobs
    )
    parallel_seconds = time.perf_counter() - started

    work = Path(tempfile.mkdtemp(prefix="bench_build_"))
    serial_bytes = _catalog_bytes(serial, work / "serial")
    assert _catalog_bytes(parallel, work / "parallel") == serial_bytes, (
        f"--jobs {jobs} artifact diverged from the serial build"
    )

    # Kill after level 1, resume, and verify nothing was recounted.
    resume_dir = work / "resumable"
    try:
        build_statistics(
            graph, config, dataset_name="synth1m",
            jobs=jobs, checkpoint_dir=resume_dir, stop_after_level=1,
        )
        raise AssertionError("stop_after_level did not interrupt the build")
    except BuildInterrupted:
        pass
    resumed = build_statistics(
        graph, config, dataset_name="synth1m",
        jobs=jobs, checkpoint_dir=resume_dir, resume=True,
    )
    levels = resumed.manifest.build_config["levels"]
    resumed_flags = {entry["level"]: entry["resumed"] for entry in levels}
    assert resumed_flags[1] is True, (
        "level 1 was recounted instead of loaded from the checkpoint"
    )
    assert _catalog_bytes(resumed, resume_dir) == serial_bytes, (
        "resumed artifact diverged from the serial build"
    )

    speedup = serial_seconds / parallel_seconds
    bar = 1.5 if quick else 3.0
    # The speedup bar only means something when the machine can actually
    # run the workers concurrently; on smaller boxes the bar is recorded
    # as skipped (correctness above is always enforced).
    gate_applicable = cores >= jobs
    gate_ok = (not gate_applicable) or speedup >= bar
    return {
        "benchmark": "build",
        "mode": "quick" if quick else "full",
        "dataset": "synth1m",
        "scale": scale,
        "graph_vertices": graph.num_vertices,
        "graph_edges": graph.num_edges,
        "graph_labels": len(graph.labels),
        "h": config.h,
        "jobs": jobs,
        "cpu_cores": cores,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "edges_per_second_serial": graph.num_edges / serial_seconds,
        "edges_per_second_parallel": graph.num_edges / parallel_seconds,
        "markov_entries": serial.markov.num_entries,
        "degree_relations": serial.degrees.num_entries,
        "levels": serial.manifest.build_config["levels"],
        "peak_level_width": serial.manifest.build_config["peak_level_width"],
        "byte_identical": True,
        "resume_no_recount": True,
        "speedup": speedup,
        "speedup_bar": bar,
        "speedup_gate": "enforced" if gate_applicable else (
            f"skipped ({cores} core(s) < {jobs} jobs)"
        ),
        "ok": gate_ok,
    }


def render(report: dict) -> str:
    return "\n".join(
        [
            f"Parallel statistics build (synth1m@{report['scale']}, "
            f"h={report['h']}, mode={report['mode']})",
            f"  graph                : {report['graph_edges']} edges / "
            f"{report['graph_vertices']} vertices / "
            f"{report['graph_labels']} labels",
            f"  serial build         : {report['serial_seconds']:10.1f} s "
            f"({report['edges_per_second_serial']:,.0f} edges/s)",
            f"  --jobs {report['jobs']} build       : "
            f"{report['parallel_seconds']:10.1f} s "
            f"({report['edges_per_second_parallel']:,.0f} edges/s)",
            f"  speedup              : {report['speedup']:10.2f}x "
            f"(bar: >= {report['speedup_bar']:.1f}x, "
            f"{report['speedup_gate']}; {report['cpu_cores']} core(s))",
            f"  stored statistics    : {report['markov_entries']} counts / "
            f"{report['degree_relations']} degree relations "
            f"(peak level width {report['peak_level_width']})",
            "  parallel + resumed artifacts byte-identical to serial; "
            "resume skipped completed levels",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--json", type=Path, default=None)
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    print(render(report))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    if not report["ok"]:
        print(
            f"FAIL: build speedup {report['speedup']:.2f}x below the "
            f"{report['speedup_bar']:.1f}x bar at --jobs {report['jobs']}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
