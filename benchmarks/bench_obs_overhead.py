"""Telemetry overhead benchmark: tracing + metrics on vs off.

PR 9's acceptance gate: the observability plane (request tracing, the
NDJSON trace sink, stage histograms, the sampled audit probe) must be
cheap enough that **p99 with telemetry on stays ≤ 1.10× the disabled
baseline** under the committed open-loop load (800 req/s, Zipf shape
mix, every response verified bit-identical against the in-process
session — telemetry must never perturb a served float).

Two legs over identical fresh servers on the same artifact:

* **off** — ``ServerConfig(telemetry=False)``: no traces, no sink, no
  slow-query capture, no audit probe.  The metrics registry itself
  stays on (it replaces the server's always-on request accounting), so
  this is the honest "PR 8 server" baseline, not a lobotomised one.
* **on** — tracing enabled, a real ``--trace-log`` sink on disk, the
  default 500 ms slow-query threshold, and the audit probe sampling 5%
  of served estimates against WanderJoin ground truth.

The open-loop p99 on a shared machine is dominated by scheduler noise
(identical back-to-back baseline legs bounce between 2 ms and 30 ms),
so a single-pair comparison is a coin flip.  Each config therefore
runs N interleaved repeats and the gate compares **min-of-N p99**:
noise is strictly additive, so the minimum approximates the noise-free
tail of each config, and every repeat's p99 is reported alongside for
transparency.  The audit histogram must come back non-empty, the
metrics verb must parse as Prometheus text exposition with monotonic
counters across two scrapes, and the trace log must be well-formed
NDJSON.

Runs standalone: ``python benchmarks/bench_obs_overhead.py [--quick]
[--json PATH]``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_server_load import (  # noqa: E402
    build_artifacts,
    expected_estimates,
    identity_sweep,
    open_loop_load,
)

from repro.obs import parse_exposition  # noqa: E402
from repro.server import (  # noqa: E402
    EstimationClient,
    ServerConfig,
    StoreRegistry,
    ThreadedServer,
)

#: p99(on) / p99(off) must stay under this in full mode.
P99_RATIO_GATE = 1.10
#: Quick mode is for smoke only: tiny samples make tails meaningless.
P99_RATIO_GATE_QUICK = 2.0
AUDIT_RATE = 0.05


def run_leg(
    artifact: Path,
    expected: dict,
    requests: int,
    rate: float,
    workers: int,
    telemetry: bool,
    trace_log: str | None,
    seed: int,
    collect: bool = False,
) -> tuple[dict, dict]:
    """One (telemetry on|off) leg on a fresh server; (load, extras)."""
    registry = StoreRegistry()
    registry.load("example", artifact)
    config = ServerConfig(
        port=0,
        max_inflight=8,
        queue_limit=max(requests, 128),
        telemetry=telemetry,
        trace_log=trace_log if telemetry else None,
        audit_rate=AUDIT_RATE if telemetry else 0.0,
    )
    with ThreadedServer(registry, config) as threaded:
        host, port = threaded.host, threaded.port
        if telemetry:
            # Pay the probe's one-time reference-graph load at setup:
            # mid-traffic it is a long GIL-holding stretch that would
            # pollute the steady-state tail this benchmark measures.
            assert threaded.server.telemetry.audit.prewarm("example")
        identity_sweep(host, port, expected)  # warm both legs equally
        load = open_loop_load(
            host, port, expected, requests, rate, workers, seed=seed
        )
        extras: dict = {}
        if not collect:
            return load, extras
        with EstimationClient(host, port) as client:
            first = client.metrics()
            exposition = parse_exposition(first["exposition"])
            assert (
                exposition.value("repro_requests_total", verb="estimate")
                >= requests
            ), "metrics lost requests"
            second = parse_exposition(client.metrics()["exposition"])
            assert second.value("repro_requests_total", verb="metrics") > (
                exposition.value("repro_requests_total", verb="metrics")
            ), "request counter must be monotonic across scrapes"
        if telemetry:
            audit = threaded.server.telemetry.audit
            audit.drain(timeout=60.0)
            audited = parse_exposition(
                threaded.server.metrics_result()["exposition"]
            )
            samples = audited.family("repro_audit_samples_total")
            q_error_counts = {
                dict(labels)["estimator"]: value
                for labels, value in audited.family(
                    "repro_audit_q_error_count"
                ).items()
            }
            assert samples, "audit probe produced no samples"
            assert q_error_counts, "audit probe published no q-error buckets"
            extras["audit"] = {
                "rate": AUDIT_RATE,
                "samples": {
                    dict(labels)["estimator"]: value
                    for labels, value in samples.items()
                },
                "q_error_observations": q_error_counts,
                "dropped": audited.value("repro_audit_dropped_total"),
            }
            extras["trace_records"] = audited.value(
                "repro_trace_records_total"
            )
    return load, extras


def verify_trace_log(path: Path, minimum: int) -> int:
    """Every line parses as a well-formed NDJSON telemetry record.

    Trace and slow-query records carry a trace id and a span list; the
    audit probe's ``type: "audit"`` samples (PR 10) share the log and
    carry the query, ground truth, and per-estimator q-errors instead.
    """
    records = 0
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record["type"] == "audit":
            assert record["query"] and record["shape_class"]
            assert record["truth"] >= 0.0
            assert record["q_errors"], record
            continue
        assert record["trace_id"] and record["type"] in (
            "trace", "slow_query",
        )
        assert isinstance(record["spans"], list)
        records += 1
    assert records >= minimum, (
        f"trace log holds {records} records, expected >= {minimum}"
    )
    return records


def run(quick: bool = False) -> dict:
    requests = 400 if quick else 4000
    rate = 400.0 if quick else 800.0
    workers = 8 if quick else 16
    gate = P99_RATIO_GATE_QUICK if quick else P99_RATIO_GATE
    repeats = 2 if quick else 5
    with tempfile.TemporaryDirectory(prefix="bench-obs-") as tmp:
        artifact, _v2 = build_artifacts(Path(tmp))
        expected = expected_estimates(artifact)
        trace_log = Path(tmp) / "trace.ndjson"
        # Interleave off/on repeats so both configs sample the same
        # machine weather, then compare min-of-N p99 per config (see
        # module docstring).  Scrape/audit assertions run once, on the
        # final telemetry leg.
        legs: dict[str, list[dict]] = {"off": [], "on": []}
        extras: dict = {}
        for repeat in range(repeats):
            seed = 7 + repeat
            last = repeat == repeats - 1
            off_load, _ = run_leg(
                artifact, expected, requests, rate, workers,
                telemetry=False, trace_log=None, seed=seed,
            )
            on_load, on_extras = run_leg(
                artifact, expected, requests, rate, workers,
                telemetry=True, trace_log=str(trace_log), seed=seed,
                collect=last,
            )
            legs["off"].append(off_load)
            legs["on"].append(on_load)
            if last:
                extras = on_extras
        best = {
            name: min(loads, key=lambda load: load["latency_ms"]["p99"])
            for name, loads in legs.items()
        }
        ratio = (
            best["on"]["latency_ms"]["p99"]
            / best["off"]["latency_ms"]["p99"]
        )
        trace_records = verify_trace_log(
            trace_log, minimum=requests // 2
        )
    result = {
        "benchmark": "obs_overhead",
        "mode": "quick" if quick else "full",
        "requests_per_leg": requests,
        "target_rate_rps": rate,
        "repeats_per_config": repeats,
        "all_bit_identical": True,  # asserted inside open_loop_load
        "telemetry_off": best["off"],
        "telemetry_on": best["on"],
        "p99_samples_ms": {
            name: [load["latency_ms"]["p99"] for load in loads]
            for name, loads in legs.items()
        },
        "p99_ratio_on_vs_off": ratio,
        "p99_ratio_gate": gate,
        "p50_ratio_on_vs_off": (
            best["on"]["latency_ms"]["p50"]
            / best["off"]["latency_ms"]["p50"]
        ),
        "trace_log_records": trace_records,
        **extras,
        "ok": ratio <= gate,
    }
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (lenient tail gate)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the result JSON to this path")
    args = parser.parse_args()
    result = run(quick=args.quick)
    text = json.dumps(result, indent=2)
    print(text)
    if args.json is not None:
        args.json.write_text(text + "\n", encoding="utf-8")
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
