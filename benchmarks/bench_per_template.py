"""Per-template analysis (§6.2's template-specific verification).

Paper claim: the heuristic conclusions "generally hold for each acyclic
and cyclic query template" — max-hop-max beats min-hop-min on most
individual templates, not just on the aggregate distribution.
"""

from _common import run_once, save_result

from repro.datasets import acyclic_workload, load_dataset
from repro.experiments.per_template import per_template_breakdown


def test_per_template_breakdown(benchmark):
    graph = load_dataset("hetionet", 0.08)
    workload = acyclic_workload(graph, per_template=3, seed=37, sizes=(6, 7))

    rows, rendered = run_once(
        benchmark,
        lambda: per_template_breakdown(
            graph, workload, h=3,
            estimators=("max-hop-max", "min-hop-min"),
        ),
    )
    save_result("per_template", rendered)
    templates = sorted({row["template"] for row in rows})
    assert len(templates) >= 6
    key = "mean(log q, -top10%)"
    wins = 0
    comparisons = 0
    for template in templates:
        best = [r for r in rows
                if r["template"] == template and r["estimator"] == "max-hop-max"]
        worst = [r for r in rows
                 if r["template"] == template and r["estimator"] == "min-hop-min"]
        if not best or not worst:
            continue
        comparisons += 1
        if float(best[0][key]) <= float(worst[0][key]) * 1.05 + 0.05:
            wins += 1
    assert comparisons >= 6
    # "Generally holds": max-hop-max wins on a clear majority of templates.
    assert wins >= 0.7 * comparisons
