"""Figure 13: max-hop-max vs MOLP vs CS vs SumRDF.

Paper shape: MOLP never underestimates but is loose; CS (and usually
SumRDF) underestimate nearly always; max-hop-max is unequivocally the
most accurate summary-based estimator, often by orders of magnitude.
"""

from _common import metric, run_once, save_result

from repro.experiments import ExperimentConfig, figure13_summary_comparison

CONFIG = ExperimentConfig(
    scale=0.1,
    per_template=2,
    acyclic_sizes=(6, 7),
    gcare_sizes=(3, 6),
    datasets=("imdb", "hetionet", "watdiv", "epinions", "yago"),
)


def test_fig13_summary_comparison(benchmark):
    rows, rendered = run_once(
        benchmark, lambda: figure13_summary_comparison(CONFIG)
    )
    save_result("fig13_summary_comparison", rendered)
    datasets = sorted({row["dataset"] for row in rows})
    assert len(datasets) >= 4

    def mean_over(estimator: str, column: str) -> float:
        return sum(
            metric(rows, column, dataset=d, estimator=estimator)
            for d in datasets
        ) / len(datasets)

    # MOLP never underestimates.
    assert mean_over("MOLP", "under%") == 0.0
    # CS underestimates virtually all queries (§6.4).
    assert mean_over("CS", "under%") > 75.0
    # max-hop-max is the most accurate overall.
    key = "mean(log q, -top10%)"
    best = mean_over("max-hop-max", key)
    for other in ("MOLP", "CS", "SumRDF"):
        assert best <= mean_over(other, key) + 1e-9, other
