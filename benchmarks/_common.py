"""Shared helpers for the per-figure benchmark suite.

Each bench runs one experiment driver once (these are minutes-scale
experiments, not microbenchmarks), prints the regenerated table, saves
it under ``benchmarks/results/`` and asserts the paper's qualitative
shape (who wins, in which direction the errors go).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, rendered: str) -> None:
    """Persist a rendered table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered, encoding="utf-8")
    print()
    print(rendered)


def by_key(rows: list[dict], **filters) -> list[dict]:
    """Rows matching all the given column=value filters."""
    result = []
    for row in rows:
        if all(row.get(column) == value for column, value in filters.items()):
            result.append(row)
    return result


def metric(rows: list[dict], column: str, **filters) -> float:
    """The single metric value selected by the filters."""
    matched = by_key(rows, **filters)
    assert matched, f"no row matches {filters}"
    values = [float(row[column]) for row in matched]
    return sum(values) / len(values)


def run_once(benchmark, fn):
    """Run a driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
