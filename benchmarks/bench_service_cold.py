"""Cold-shape estimation throughput: optimized stack vs the pre-PR one.

Every query in the fig9 template set (the Acyclic workload, sizes 6-8)
is a distinct canonical shape, so the canonical-shape caches never hit —
this measures the cold path the execution-engine rewrite targets: CEG
construction (bitmask successor generation), the path DP (compiled CSR
DP vs dict DP), MOLP (bitmask Dijkstra + shared degree caches vs
frozenset Dijkstra + per-view recomputation) and lazy Markov counting
(vectorized frames vs Python backtracking).

The baseline is the faithful pre-PR replica in ``_legacy_reference``;
all estimates must match bit for bit.  Acceptance bar: >= 2x cold
throughput (>= 1x in ``--quick`` mode).

Runs standalone: ``python benchmarks/bench_service_cold.py [--quick]
[--json PATH]``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _legacy_reference import legacy_serving  # noqa: E402

from repro.datasets import acyclic_workload, load_dataset  # noqa: E402
from repro.service import EstimationSession  # noqa: E402

SPECS = tuple(
    f"{'all-hops' if hop == 'all' else hop + '-hop'}-{aggr}"
    for hop in ("max", "min", "all")
    for aggr in ("max", "min", "avg")
) + ("MOLP",)


def _fig9_patterns(graph, per_template: int, seed: int = 7):
    workload = acyclic_workload(
        graph, per_template=per_template, seed=seed, sizes=(6, 7, 8)
    )
    return [query.pattern for query in workload]


def run(quick: bool = False) -> dict:
    scale = 0.06 if quick else 0.12
    per_template = 1 if quick else 3
    graph = load_dataset("hetionet", scale)
    patterns = _fig9_patterns(graph, per_template)
    cells = len(patterns) * len(SPECS)

    with legacy_serving():
        baseline = EstimationSession(
            graph, h=3, molp_h=2, max_workers=1, count_impl="python"
        )
        started = time.perf_counter()
        legacy_batch = baseline.estimate_batch(patterns, specs=SPECS)
        legacy_seconds = time.perf_counter() - started
    assert legacy_batch.ok, [item.error for item in legacy_batch.failures]

    session = EstimationSession(graph, h=3, molp_h=2, max_workers=1)
    started = time.perf_counter()
    batch = session.estimate_batch(patterns, specs=SPECS)
    new_seconds = time.perf_counter() - started
    assert batch.ok, [item.error for item in batch.failures]

    for old_item, new_item in zip(legacy_batch.items, batch.items):
        assert old_item.estimator == new_item.estimator
        assert new_item.estimate == old_item.estimate, (
            f"query {new_item.index} {new_item.estimator}: optimized "
            f"{new_item.estimate!r} != legacy {old_item.estimate!r} — "
            "the stacks diverged"
        )

    speedup = legacy_seconds / new_seconds
    bar = 1.0 if quick else 2.0
    return {
        "benchmark": "service_cold",
        "mode": "quick" if quick else "full",
        "scale": scale,
        "queries": len(patterns),
        "cells": cells,
        "legacy_seconds": legacy_seconds,
        "optimized_seconds": new_seconds,
        "legacy_cells_per_second": cells / legacy_seconds,
        "optimized_cells_per_second": cells / new_seconds,
        "speedup": speedup,
        "speedup_bar": bar,
        "ok": speedup >= bar,
    }


def render(report: dict) -> str:
    return "\n".join(
        [
            "Cold-shape estimate_batch throughput (fig9 template set, "
            f"mode={report['mode']})",
            f"  queries x estimators : {report['cells']}",
            f"  legacy (pre-PR)      : "
            f"{report['legacy_cells_per_second']:10.1f} estimates/sec",
            f"  optimized            : "
            f"{report['optimized_cells_per_second']:10.1f} estimates/sec",
            f"  cold speedup         : {report['speedup']:10.2f}x "
            f"(bar: >= {report['speedup_bar']:.0f}x)",
            "  all estimates bit-identical between the two stacks",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--json", type=Path, default=None)
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    print(render(report))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    if not report["ok"]:
        print(
            f"FAIL: cold speedup {report['speedup']:.2f}x below the "
            f"{report['speedup_bar']:.0f}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
