"""Figure 14: max-hop-max vs WanderJoin across sampling ratios.

Paper shape: WJ's accuracy improves with the sampling ratio and can
overtake max-hop-max at some ratio, but its estimation time is one to
two orders of magnitude larger and grows with the dataset, whereas the
summary-based estimator's time is stable and sub-millisecond-scale.
"""

from _common import metric, run_once, save_result

from repro.experiments import ExperimentConfig, figure14_wanderjoin

# The paper's sub-percent ratios assume 16M-65M-edge graphs; at our
# scaled-down sizes the equivalent walk counts need percent-level
# ratios (the ratio-vs-accuracy-vs-time tradeoff is what matters).
CONFIG = ExperimentConfig(
    scale=0.12,
    per_template=2,
    acyclic_sizes=(6, 7),
    gcare_sizes=(3, 6),
    datasets=("imdb", "dblp", "hetionet", "epinions"),
    wj_ratios=(0.02, 0.1, 0.3),
)


def test_fig14_wanderjoin(benchmark):
    rows, rendered = run_once(benchmark, lambda: figure14_wanderjoin(CONFIG))
    save_result("fig14_wanderjoin", rendered)
    datasets = sorted({row["dataset"] for row in rows})
    assert len(datasets) >= 3
    ratios = sorted(
        {row["ratio"] for row in rows if row["estimator"] == "WJ"},
        key=lambda r: float(str(r).rstrip("%")),
    )
    low_ratio, high_ratio = ratios[0], ratios[-1]
    key = "mean(log q, -top10%)"
    better_with_more_samples = 0
    time_grows = 0
    for dataset in datasets:
        coarse = metric(
            rows, key, dataset=dataset, estimator="WJ", ratio=low_ratio
        )
        fine = metric(
            rows, key, dataset=dataset, estimator="WJ", ratio=high_ratio
        )
        if fine <= coarse * 1.05 + 0.05:
            better_with_more_samples += 1
        # WJ pays for accuracy with time: latency grows with the ratio
        # (and hence with data size), the paper's central tradeoff.
        slow = metric(
            rows, "ms", dataset=dataset, estimator="WJ", ratio=high_ratio
        )
        fast = metric(
            rows, "ms", dataset=dataset, estimator="WJ", ratio=low_ratio
        )
        if slow > fast:
            time_grows += 1
    assert better_with_more_samples >= len(datasets) - 1
    assert time_grows >= len(datasets) - 1
    # The summary-based estimator's time is stable (it never touches the
    # data at estimation time) and stays in the few-ms range.
    for dataset in datasets:
        assert metric(
            rows, "ms", dataset=dataset, estimator="max-hop-max"
        ) < 50.0
